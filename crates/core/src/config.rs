//! Engine configuration: every optimization axis of the paper, toggleable for
//! the ablation benchmarks.

use rasql_exec::FaultSpec;

/// Naive vs. semi-naive fixpoint evaluation (§6, Algorithms 2 vs 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// Delta-driven semi-naive evaluation (the default).
    SemiNaive,
    /// Naive evaluation: every iteration re-derives from the full relations
    /// (the Spark-SQL-Naive baseline of Fig 10).
    Naive,
}

/// Distributed join strategy for the recursive join (Appendix D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Build a cached hash table on the base side, probe with the delta.
    ShuffleHash,
    /// Keep the base side as a cached sorted run; sort the delta and merge.
    SortMerge,
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Simulated worker (thread) count.
    pub workers: usize,
    /// Partition count (defaults to `workers`).
    pub partitions: usize,
    /// Fixpoint evaluation mode.
    pub eval_mode: EvalMode,
    /// Fuse Reduce(i) with Map(i+1) into one ShuffleMap stage (§7.1).
    pub stage_combination: bool,
    /// Partition-aware task scheduling (§6.1).
    pub partition_aware: bool,
    /// Fused operator pipelines — the whole-stage-codegen analog (§7.3).
    pub fused_codegen: bool,
    /// Join strategy for the recursive join (Appendix D).
    pub join: JoinStrategy,
    /// Evaluate decomposable plans with broadcast bases and per-partition
    /// local fixpoints (§7.2).
    pub decomposed_plans: bool,
    /// Broadcast the compressed relation and rebuild hash tables on workers,
    /// instead of shipping the (2-3x larger) prebuilt hash table (§7.2).
    pub broadcast_compression: bool,
    /// Select monomorphized fixpoint kernels (CSR broadcast graph + dense
    /// vertex state) when the plan shape and the verifier's Proven-PreM
    /// verdict allow it — the whole-stage-codegen fast path for the inner
    /// loop (§7.3). Any unprovable shape falls back to the interpreter.
    pub specialized_kernels: bool,
    /// Iteration cap; exceeded ⇒ [`crate::EngineError::NonTermination`].
    pub max_iterations: u32,
    /// Simulated per-stage scheduler latency in microseconds (see
    /// `rasql_exec::cluster::ClusterConfig::stage_latency`). A property of
    /// the simulated cluster, identical across engine presets.
    pub stage_latency_us: u64,
    /// Collect a [`rasql_exec::QueryTrace`] for every query: per-iteration
    /// fixpoint counters, stage spans, and operator rows/bytes. Off by
    /// default; `EXPLAIN ANALYZE` forces it on for that statement.
    pub tracing: bool,
    /// Deterministic fault injection for the simulated cluster; `None` (the
    /// default) disables all failure paths.
    pub fault_spec: Option<FaultSpec>,
    /// Retry budget for injected task failures (attempts = 1 + retries).
    pub max_task_retries: u32,
    /// Checkpoint the fixpoint's per-partition state every K rounds (plus an
    /// initial round-0 capture); 0 disables checkpointing, so an
    /// unrecoverable stage failure fails the query.
    pub checkpoint_interval: u32,
    /// Per-query memory budget in bytes; 0 (the default) is unlimited. Over
    /// budget, shuffle gather buffers and fixpoint state spill to disk; an
    /// allocation that cannot fit even after spilling fails the query with
    /// `MemoryExceeded`.
    pub memory_budget: u64,
    /// Per-query deadline in milliseconds; 0 (the default) is no deadline.
    /// Checked cooperatively at stage and fixpoint-round boundaries; a
    /// missed deadline fails the query with `DeadlineExceeded`.
    pub query_timeout_ms: u64,
    /// Maximum queries executing concurrently on one context; 0 (the
    /// default) is unlimited. Excess queries wait in a bounded queue.
    pub max_concurrent_queries: usize,
    /// Wait-queue capacity of the admission controller (only meaningful with
    /// `max_concurrent_queries > 0`); queries beyond it are rejected
    /// immediately with `AdmissionRejected`.
    pub admission_queue: usize,
    /// Capacity (entries) of the version-keyed result cache for ad-hoc
    /// queries; 0 (the default) disables caching. A repeated identical query
    /// against unchanged base relations is served from cache (FIFO eviction);
    /// any base-table mutation invalidates the affected entries.
    pub result_cache_entries: usize,
    /// Durability directory: when set, the context recovers catalog and
    /// materialized-view state from `snapshot.bin` + `wal.log` on startup
    /// and journals every mutation. `None` (the default) keeps everything
    /// in memory, exactly as before.
    pub data_dir: Option<std::path::PathBuf>,
    /// Publish a compacting snapshot (and truncate the log) every N journal
    /// records; 0 disables automatic compaction (snapshots still happen at
    /// startup and via explicit flush).
    pub snapshot_every: u64,
    /// Deterministic crashpoint injection for the durability layer
    /// (`storage::crashpoint`); `None` disables it. Test-only knob driven by
    /// the `reproduce crash-soak` gate.
    pub crash_spec: Option<rasql_storage::CrashSpec>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::rasql()
    }
}

impl EngineConfig {
    /// The fully-optimized RaSQL configuration used in the paper's
    /// experiments (§8: shuffle-hash join, optimized DSN with stage
    /// combination and code generation).
    pub fn rasql() -> Self {
        EngineConfig {
            workers: default_workers(),
            partitions: default_workers(),
            eval_mode: EvalMode::SemiNaive,
            stage_combination: true,
            partition_aware: true,
            fused_codegen: true,
            join: JoinStrategy::ShuffleHash,
            decomposed_plans: true,
            broadcast_compression: true,
            specialized_kernels: true,
            max_iterations: 100_000,
            stage_latency_us: 2_000,
            tracing: false,
            fault_spec: None,
            max_task_retries: 3,
            checkpoint_interval: 0,
            memory_budget: 0,
            query_timeout_ms: 0,
            max_concurrent_queries: 0,
            admission_queue: 16,
            result_cache_entries: 0,
            data_dir: None,
            snapshot_every: 256,
            crash_spec: None,
        }
    }

    /// The BigDatalog stand-in: SetRDD-style cached state (always on here)
    /// but none of RaSQL's new optimizations — no stage combination, no fused
    /// code generation, no broadcast compression. See DESIGN.md.
    pub fn bigdatalog_like() -> Self {
        EngineConfig {
            stage_combination: false,
            fused_codegen: false,
            broadcast_compression: false,
            specialized_kernels: false,
            ..EngineConfig::rasql()
        }
    }

    /// The Spark-SQL-SN baseline of Fig 10: semi-naive behavior *simulated*
    /// as a loop of SQL statements — no partition-aware scheduling, no stage
    /// combination, no mutable state reuse benefits modeled by locality.
    pub fn spark_sql_sn() -> Self {
        EngineConfig {
            stage_combination: false,
            partition_aware: false,
            fused_codegen: false,
            decomposed_plans: false,
            broadcast_compression: false,
            specialized_kernels: false,
            ..EngineConfig::rasql()
        }
    }

    /// The Spark-SQL-Naive baseline of Fig 10.
    pub fn spark_sql_naive() -> Self {
        EngineConfig {
            eval_mode: EvalMode::Naive,
            ..EngineConfig::spark_sql_sn()
        }
    }

    /// Set worker (and partition) count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self.partitions = self.workers;
        self
    }

    /// Toggle stage combination.
    pub fn with_stage_combination(mut self, on: bool) -> Self {
        self.stage_combination = on;
        self
    }

    /// Toggle fused code generation.
    pub fn with_fused_codegen(mut self, on: bool) -> Self {
        self.fused_codegen = on;
        self
    }

    /// Select the join strategy.
    pub fn with_join(mut self, join: JoinStrategy) -> Self {
        self.join = join;
        self
    }

    /// Toggle decomposed-plan evaluation.
    pub fn with_decomposed(mut self, on: bool) -> Self {
        self.decomposed_plans = on;
        self
    }

    /// Toggle broadcast compression.
    pub fn with_broadcast_compression(mut self, on: bool) -> Self {
        self.broadcast_compression = on;
        self
    }

    /// Toggle specialized fixpoint kernels.
    pub fn with_specialized_kernels(mut self, on: bool) -> Self {
        self.specialized_kernels = on;
        self
    }

    /// Set the iteration cap.
    pub fn with_max_iterations(mut self, n: u32) -> Self {
        self.max_iterations = n;
        self
    }

    /// Set the simulated per-stage scheduler latency (µs); 0 disables it.
    pub fn with_stage_latency_us(mut self, us: u64) -> Self {
        self.stage_latency_us = us;
        self
    }

    /// Toggle query tracing (see [`EngineConfig::tracing`]).
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Enable deterministic fault injection (`None` disables it).
    pub fn with_faults(mut self, spec: Option<FaultSpec>) -> Self {
        self.fault_spec = spec;
        self
    }

    /// Set the retry budget for injected task failures.
    pub fn with_max_task_retries(mut self, retries: u32) -> Self {
        self.max_task_retries = retries;
        self
    }

    /// Checkpoint fixpoint state every `k` rounds (0 disables).
    pub fn with_checkpoint_interval(mut self, k: u32) -> Self {
        self.checkpoint_interval = k;
        self
    }

    /// Set the per-query memory budget in bytes (0 = unlimited).
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Set the per-query deadline in milliseconds (0 = none).
    pub fn with_query_timeout_ms(mut self, ms: u64) -> Self {
        self.query_timeout_ms = ms;
        self
    }

    /// Cap concurrent queries on the context (0 = unlimited).
    pub fn with_max_concurrent_queries(mut self, n: usize) -> Self {
        self.max_concurrent_queries = n;
        self
    }

    /// Set the admission wait-queue capacity.
    pub fn with_admission_queue(mut self, n: usize) -> Self {
        self.admission_queue = n;
        self
    }

    /// Set the result-cache capacity in entries (0 disables caching).
    pub fn with_result_cache(mut self, entries: usize) -> Self {
        self.result_cache_entries = entries;
        self
    }

    /// Persist catalog and view state under `dir` (WAL + snapshots) and
    /// recover from it on startup.
    pub fn with_data_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// Snapshot/compact the journal every `n` records (0 disables).
    pub fn with_snapshot_every(mut self, n: u64) -> Self {
        self.snapshot_every = n;
        self
    }

    /// Arm deterministic crashpoint injection in the durability layer.
    pub fn with_crash_spec(mut self, spec: Option<rasql_storage::CrashSpec>) -> Self {
        self.crash_spec = spec;
        self
    }
}

fn default_workers() -> usize {
    // At least 2 simulated workers even on a single-core host: the engine's
    // stage/shuffle/locality behavior (what the paper's ablations measure)
    // needs multiple partitions to be meaningful.
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_on_the_right_axes() {
        let rasql = EngineConfig::rasql();
        let bd = EngineConfig::bigdatalog_like();
        assert!(rasql.stage_combination && !bd.stage_combination);
        assert!(rasql.fused_codegen && !bd.fused_codegen);
        assert!(rasql.specialized_kernels && !bd.specialized_kernels);
        assert_eq!(rasql.eval_mode, bd.eval_mode);
        let naive = EngineConfig::spark_sql_naive();
        assert_eq!(naive.eval_mode, EvalMode::Naive);
        assert!(!naive.partition_aware);
    }

    #[test]
    fn builder_methods() {
        let c = EngineConfig::rasql()
            .with_workers(3)
            .with_stage_combination(false)
            .with_join(JoinStrategy::SortMerge)
            .with_max_iterations(7);
        assert_eq!(c.workers, 3);
        assert_eq!(c.partitions, 3);
        assert!(!c.stage_combination);
        assert_eq!(c.join, JoinStrategy::SortMerge);
        assert_eq!(c.max_iterations, 7);
    }
}
