#![deny(missing_docs)]

//! # rasql-core
//!
//! The RaSQL engine (the paper's primary contribution): recursive-aggregate
//! SQL compiled to a **fixpoint operator** executed with **distributed
//! semi-naive evaluation** over the [`rasql_exec`] cluster runtime.
//!
//! Entry point: [`RaSqlContext`].
//!
//! ```
//! use rasql_core::RaSqlContext;
//! use rasql_storage::Relation;
//!
//! let ctx = RaSqlContext::in_memory();
//! ctx.register("edge", Relation::edges(&[(1, 2), (2, 3), (3, 4)])).unwrap();
//! let tc = ctx.query(
//!     "WITH recursive tc (Src, Dst) AS \
//!        (SELECT Src, Dst FROM edge) UNION \
//!        (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src) \
//!      SELECT Src, Dst FROM tc",
//! ).unwrap();
//! assert_eq!(tc.relation.len(), 6);
//! assert_eq!(tc.stats.iterations.len(), 1);
//! ```

pub mod cache;
pub mod check;
pub mod config;
pub mod context;
pub mod error;
pub mod eval;
pub mod fixpoint;
pub mod kernel;
pub mod library;
pub mod matview;
pub mod prem;
pub mod session;
pub mod wire;

pub use cache::{CachedQuery, CsrCache, ResultCache};
pub use check::{CheckReport, PremColumnEvidence, PremEvidence};
pub use config::{EngineConfig, EvalMode, JoinStrategy};
pub use context::{ContextBuilder, QueryResult, QueryStats, RaSqlContext};
pub use error::EngineError;
pub use kernel::{select_kernel, KernelEdgeFn, KernelOp, KernelPlan, KernelScalar};
pub use matview::{DepRecord, MatView};
pub use prem::{PremCheckOutcome, PremChecker};
pub use rasql_exec::{
    CliqueTrace, IterationTrace, JsonValue, OperatorTrace, QueryTrace, StageKind, StageSpan,
};
pub use rasql_plan::{
    DiagCode, Diagnostic, PremObligation, Severity, StaticVerdict, VerifyReport, ViewVerification,
};
pub use session::Session;
pub use wire::{error_to_wire, result_to_wire, stats_to_wire};
