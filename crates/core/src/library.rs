//! The RaSQL query library: every example query of the paper (§2, §4,
//! Appendix C), ready to run against the conventional base-table schemas.
//!
//! Expected base tables:
//!
//! | query | tables |
//! |---|---|
//! | BOM (Q1/Q2) | `assbl(Part, SPart)`, `basic(Part, Days)` |
//! | SSSP / APSP / Count Paths / REACH / TC / CC | `edge(Src, Dst[, Cost])` |
//! | Management | `report(Emp, Mgr)` |
//! | MLM Bonus | `sales(M, P)`, `sponsor(M1, M2)` |
//! | Interval Coalesce | `inter(S, E)` |
//! | Party Attendance | `organizer(OrgName)`, `friend(Pname, Fname)` |
//! | Company Control | `shares(By, Of, Percent)` |
//! | Same Generation | `rel(Parent, Child)` |

/// BOM Q2 (§2): days-till-delivery with `max` in recursion (endo-max).
pub fn bom_delivery() -> String {
    "WITH recursive waitfor(Part, max() AS Days) AS \
       (SELECT Part, Days FROM basic) UNION \
       (SELECT assbl.Part, waitfor.Days FROM assbl, waitfor \
        WHERE assbl.SPart = waitfor.Part) \
     SELECT Part, Days FROM waitfor"
        .to_string()
}

/// BOM Q1 (§2): the stratified version (aggregate applied after recursion).
pub fn bom_delivery_stratified() -> String {
    "WITH recursive waitfor(Part, Days) AS \
       (SELECT Part, Days FROM basic) UNION \
       (SELECT assbl.Part, waitfor.Days FROM assbl, waitfor \
        WHERE assbl.SPart = waitfor.Part) \
     SELECT Part, max(Days) FROM waitfor GROUP BY Part"
        .to_string()
}

/// Example 1: single-source shortest paths from `source`.
pub fn sssp(source: i64) -> String {
    format!(
        "WITH recursive path (Dst, min() AS Cost) AS \
           (SELECT {source}, 0.0) UNION \
           (SELECT edge.Dst, path.Cost + edge.Cost FROM path, edge \
            WHERE path.Dst = edge.Src) \
         SELECT Dst, Cost FROM path"
    )
}

/// Stratified SSSP (Fig 1 baseline) — diverges on cyclic graphs.
pub fn sssp_stratified(source: i64) -> String {
    format!(
        "WITH recursive path (Dst, Cost) AS \
           (SELECT {source}, 0.0) UNION \
           (SELECT edge.Dst, path.Cost + edge.Cost FROM path, edge \
            WHERE path.Dst = edge.Src) \
         SELECT Dst, min(Cost) FROM path GROUP BY Dst"
    )
}

/// Example 2: connected components — per-node component ids.
pub fn cc() -> String {
    "WITH recursive cc (Src, min() AS CmpId) AS \
       (SELECT Src, Src FROM edge) UNION \
       (SELECT edge.Dst, cc.CmpId FROM cc, edge WHERE cc.Src = edge.Src) \
     SELECT Src, CmpId FROM cc"
        .to_string()
}

/// Example 2's final form: the number of connected components.
pub fn cc_count() -> String {
    "WITH recursive cc (Src, min() AS CmpId) AS \
       (SELECT Src, Src FROM edge) UNION \
       (SELECT edge.Dst, cc.CmpId FROM cc, edge WHERE cc.Src = edge.Src) \
     SELECT count(distinct cc.CmpId) FROM cc"
        .to_string()
}

/// Stratified CC (Fig 1 baseline).
pub fn cc_stratified() -> String {
    "WITH recursive cc (Src, CmpId) AS \
       (SELECT Src, Src FROM edge) UNION \
       (SELECT edge.Dst, cc.CmpId FROM cc, edge WHERE cc.Src = edge.Src) \
     SELECT Src, min(CmpId) FROM cc GROUP BY Src"
        .to_string()
}

/// Example 3: number of paths from `source` to every node (DAGs).
pub fn count_paths(source: i64) -> String {
    format!(
        "WITH recursive cpaths (Dst, sum() AS Cnt) AS \
           (SELECT {source}, 1) UNION \
           (SELECT edge.Dst, cpaths.Cnt FROM cpaths, edge WHERE cpaths.Dst = edge.Src) \
         SELECT Dst, Cnt FROM cpaths"
    )
}

/// Example 4: employees under each manager.
pub fn management() -> String {
    "WITH recursive empCount (Mgr, count() AS Cnt) AS \
       (SELECT report.Emp, 1 FROM report) UNION \
       (SELECT report.Mgr, empCount.Cnt FROM empCount, report \
        WHERE empCount.Mgr = report.Emp) \
     SELECT Mgr, Cnt FROM empCount"
        .to_string()
}

/// Example 5: multi-level-marketing bonuses.
pub fn mlm_bonus() -> String {
    "WITH recursive bonus(M, sum() AS B) AS \
       (SELECT M, P * 0.1 FROM sales) UNION \
       (SELECT sponsor.M1, bonus.B * 0.5 FROM bonus, sponsor \
        WHERE bonus.M = sponsor.M2) \
     SELECT M, B FROM bonus"
        .to_string()
}

/// Example 6: interval coalescing — a two-statement script (CREATE VIEW +
/// recursive query); run with `query_script`.
pub fn interval_coalesce() -> String {
    "CREATE VIEW lstart(T) AS \
       (SELECT a.S FROM inter a, inter b WHERE a.S <= b.E \
        GROUP BY a.S HAVING a.S = min(b.S)); \
     WITH recursive coal (S, max() AS E) AS \
       (SELECT lstart.T, inter.E FROM lstart, inter WHERE lstart.T = inter.S) UNION \
       (SELECT coal.S, inter.E FROM coal, inter \
        WHERE coal.S <= inter.S AND inter.S <= coal.E) \
     SELECT S, E FROM coal"
        .to_string()
}

/// Example 7: party attendance (mutual recursion with a count threshold).
/// The paper's text types the recursive branch of `attend` with two columns;
/// the intended single-column projection is used here.
pub fn party_attendance() -> String {
    "WITH recursive attend(Person) AS \
       (SELECT OrgName FROM organizer) UNION \
       (SELECT Name FROM cntfriends WHERE Ncount >= 3), \
     recursive cntfriends(Name, count() AS Ncount) AS \
       (SELECT friend.FName, friend.Pname FROM attend, friend \
        WHERE attend.Person = friend.Pname) \
     SELECT Person FROM attend"
        .to_string()
}

/// Example 8: company control (mutual recursion with sum() in recursion;
/// the recursive rule extends control with *direct* holdings from `shares`,
/// per Mumick-Pirahesh-Ramakrishnan, so nothing is double-counted).
pub fn company_control() -> String {
    "WITH recursive cshares(ByCom, OfCom, sum() AS Tot) AS \
       (SELECT By, Of, Percent FROM shares) UNION \
       (SELECT control.Com1, shares.Of, shares.Percent FROM control, shares \
        WHERE control.Com2 = shares.By), \
     recursive control(Com1, Com2) AS \
       (SELECT ByCom, OfCom FROM cshares WHERE Tot > 50) \
     SELECT ByCom, OfCom, Tot FROM cshares"
        .to_string()
}

/// Example 9 (Appendix C): same generation.
pub fn same_generation() -> String {
    "WITH recursive sg (X, Y) AS \
       (SELECT a.Child, b.Child FROM rel a, rel b \
        WHERE a.Parent = b.Parent AND a.Child <> b.Child) UNION \
       (SELECT a.Child, b.Child FROM rel a, sg, rel b \
        WHERE a.Parent = sg.X AND b.Parent = sg.Y) \
     SELECT X, Y FROM sg"
        .to_string()
}

/// Example 10 (Appendix C): reachability (BFS) from `source`.
pub fn reach(source: i64) -> String {
    format!(
        "WITH recursive reach (Dst) AS \
           (SELECT {source}) UNION \
           (SELECT edge.Dst FROM reach, edge WHERE reach.Dst = edge.Src) \
         SELECT Dst FROM reach"
    )
}

/// Example 11 (Appendix C): all-pairs shortest paths.
pub fn apsp() -> String {
    "WITH recursive path (Src, Dst, min() AS Cost) AS \
       (SELECT Src, Dst, Cost FROM edge) UNION \
       (SELECT path.Src, edge.Dst, path.Cost + edge.Cost FROM path, edge \
        WHERE path.Dst = edge.Src) \
     SELECT Src, Dst, Cost FROM path"
        .to_string()
}

/// Transitive closure (§6) — the decomposable-plan workhorse.
pub fn transitive_closure() -> String {
    "WITH recursive tc (Src, Dst) AS \
       (SELECT Src, Dst FROM edge) UNION \
       (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src) \
     SELECT Src, Dst FROM tc"
        .to_string()
}

/// Widest path (maximum bottleneck capacity) from `source`: `max()` in the
/// head with `least()` along the path — max-of-min is PreM (the max of the
/// minimum capacities distributes over path extension). Uses the scalar
/// function support beyond the paper's §4 examples.
pub fn widest_path(source: i64) -> String {
    format!(
        "WITH recursive wide (Dst, max() AS Cap) AS \
           (SELECT {source}, 1000000000.0) UNION \
           (SELECT edge.Dst, least(wide.Cap, edge.Cost) FROM wide, edge \
            WHERE wide.Dst = edge.Src) \
         SELECT Dst, Cap FROM wide"
    )
}

/// The unweighted-edge variant of [`sssp`] where `edge(Src, Dst)` has no cost
/// column: hop counts (BFS levels).
pub fn sssp_hops(source: i64) -> String {
    format!(
        "WITH recursive path (Dst, min() AS Cost) AS \
           (SELECT {source}, 0) UNION \
           (SELECT edge.Dst, path.Cost + 1 FROM path, edge \
            WHERE path.Dst = edge.Src) \
         SELECT Dst, Cost FROM path"
    )
}

#[cfg(test)]
mod tests {
    use rasql_parser::parse_statements;

    #[test]
    fn every_library_query_parses() {
        let queries = [
            super::bom_delivery(),
            super::bom_delivery_stratified(),
            super::sssp(1),
            super::sssp_stratified(1),
            super::cc(),
            super::cc_count(),
            super::cc_stratified(),
            super::count_paths(1),
            super::management(),
            super::mlm_bonus(),
            super::interval_coalesce(),
            super::party_attendance(),
            super::company_control(),
            super::same_generation(),
            super::reach(1),
            super::apsp(),
            super::transitive_closure(),
            super::sssp_hops(1),
            super::widest_path(1),
        ];
        for q in &queries {
            parse_statements(q).unwrap_or_else(|e| panic!("{e}\n{q}"));
        }
    }
}
