//! Specialized fixpoint-kernel selection (paper §7.3).
//!
//! The dominant recursive-query shape — a single view keyed by one `Int`
//! vertex column, driven by one linear join against a static edge relation
//! (SSSP, CC, reachability, path counting) — admits a far faster execution
//! strategy than the generic interpreter: broadcast the edges once as a
//! [`rasql_storage::CsrGraph`], keep the aggregate state in dense
//! vertex-indexed slabs, and run a monomorphized merge-scan loop per round
//! (see [`rasql_exec::kernel`]). This module is the *selection pass* that
//! decides, purely from the compiled [`FixpointSpec`] and the engine
//! configuration, whether that strategy is sound for a query — and if so,
//! which monomorphized variant to instantiate.
//!
//! Selection is deliberately conservative. A kernel is chosen only when
//! every condition below holds; anything else falls back to the generic
//! interpreter, so an unprovable or unusual shape costs nothing but speed:
//!
//! - `specialized_kernels` is on and evaluation is semi-naive;
//! - stage combination (§7.1) and fused code generation (§7.3) are both on —
//!   the kernel runs one fused ShuffleMap stage per round, so ablating
//!   either axis must bypass it or the ablation would measure nothing;
//! - the clique would *not* run decomposed (the §7.2 local-fixpoint path is
//!   already the fast plan when the partition certificate holds);
//! - one view, one `Int` key column, at most one aggregate column;
//! - one linear recursive branch driving from the view's delta through a
//!   single hash join against a non-recursive build side, keyed
//!   `δ.key = build.src`, emitting `build.dst` as the new key;
//! - the per-edge contribution expression is one of the four recognized
//!   forms (identity, `+ weight`, `+ constant`, `least(value, weight)`);
//! - for aggregate views, the verifier *statically proved* the PreM
//!   property for the column ([`StaticVerdict::Proven`] — see
//!   [`rasql_plan::ViewSpec::prem`]); `Unknown` shapes run the interpreter
//!   even when the runtime PreM checker would accept them.
//!
//! The selected [`KernelPlan`] is still only a *candidate*: the runtime
//! re-checks every value it touches (vertex ids must be `Int`, aggregate
//! inputs must match the slab type) and bails out to the interpreter on the
//! first violation, preserving bit-identical semantics.

use crate::config::{EngineConfig, EvalMode};
use rasql_parser::ast::{AggFunc, BinaryOp};
use rasql_plan::{
    BranchStep, CountMode, DeltaValueMode, FixpointSpec, JoinBuild, LogicalPlan, PExpr, ScalarFunc,
    StaticVerdict,
};
use rasql_storage::{CsrWeight, DataType, Value};

/// The monotone operator a kernel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelOp {
    /// `min` aggregate (SSSP, CC).
    Min,
    /// `max` aggregate.
    Max,
    /// `sum`/`count` aggregate (path counting).
    Sum,
    /// Set semantics — membership only (reachability).
    Set,
}

/// The scalar slab type a kernel is monomorphized over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelScalar {
    /// `i64` slabs (`Int` aggregate column).
    I64,
    /// `f64` slabs (`Double` aggregate column).
    F64,
}

/// The per-edge contribution transform, matched from the branch program's
/// aggregate expression over the combined `stream ++ build` row.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelEdgeFn {
    /// Propagate the delta value unchanged (CC, reachability).
    Identity,
    /// Add the edge weight ([`KernelPlan::weight`] names the column) — SSSP.
    AddWeight,
    /// Add a constant literal (hop counting).
    AddConst(Value),
    /// `least(value, weight)` — bottleneck/widest-path style combiners.
    MinWeight,
}

/// A fully-resolved specialized kernel: everything the runtime needs to
/// build the CSR graph, size the dense state, and run the monomorphized
/// loop.
#[derive(Debug, Clone)]
pub struct KernelPlan {
    /// Kernel label recorded in the query trace (e.g. `csr_min_i64`).
    pub name: &'static str,
    /// Monotone operator.
    pub op: KernelOp,
    /// Slab scalar type.
    pub scalar: KernelScalar,
    /// Per-edge contribution transform.
    pub edge_fn: KernelEdgeFn,
    /// Vertex-key column in the view schema.
    pub key_col: usize,
    /// Aggregate column in the view schema (`None` for set kernels).
    pub agg_col: Option<usize>,
    /// Source-vertex column of the edge relation.
    pub src_col: usize,
    /// Destination-vertex column of the edge relation.
    pub dst_col: usize,
    /// How edge weights are extracted while building the CSR graph.
    pub weight: CsrWeight,
    /// True when the delta carries current totals (min/max driver mode);
    /// false for per-round increments (`sum` increment flow).
    pub totals_delta: bool,
    /// The edge relation's plan, evaluated once before the fixpoint.
    pub build: LogicalPlan,
}

/// Decide whether `spec` can run on a specialized fixpoint kernel under
/// `config`. Returns the resolved plan, or `None` to use the interpreter.
pub fn select_kernel(spec: &FixpointSpec, config: &EngineConfig) -> Option<KernelPlan> {
    if !config.specialized_kernels || config.eval_mode != EvalMode::SemiNaive {
        return None;
    }
    // The kernel executes one fused combined stage per round — it *is* the
    // §7.1 + §7.3 fast path — so it only stands in when both axes are on.
    if !config.stage_combination || !config.fused_codegen {
        return None;
    }
    if spec.views.len() != 1 {
        return None;
    }
    let v = &spec.views[0];
    // A decomposable view already has a faster plan (§7.2); selecting the
    // kernel there would also change the round accounting the trace reports.
    if config.decomposed_plans && v.certificate.preserved_key().is_some() {
        return None;
    }
    if v.key_cols.len() != 1 || v.aggs.len() > 1 || v.schema.arity() != 1 + v.aggs.len() {
        return None;
    }
    let key_col = v.key_cols[0];
    if v.schema.field(key_col).data_type != DataType::Int {
        return None;
    }
    if v.recursive.len() != 1 {
        return None;
    }
    let prog = &v.recursive[0];
    if prog.driver != 0 || prog.target != 0 {
        return None;
    }
    if prog.count_modes.iter().any(|m| *m != CountMode::SumValues) {
        return None;
    }
    // Exactly one step: a hash join against a non-recursive build side,
    // probing with the delta's vertex key.
    let [BranchStep::HashJoin {
        build: JoinBuild::Base(build),
        stream_keys,
        build_keys,
        build_arity,
    }] = prog.steps.as_slice()
    else {
        return None;
    };
    if stream_keys.len() != 1 || stream_keys[0] != PExpr::Col(key_col) {
        return None;
    }
    let &[src_col] = build_keys.as_slice() else {
        return None;
    };
    let arity = v.schema.arity();
    if prog.combined_arity != arity + build_arity {
        return None;
    }
    // The emitted key must be a build-side column (the edge destination).
    let [PExpr::Col(dst_abs)] = prog.key_exprs.as_slice() else {
        return None;
    };
    let dst_col = dst_abs.checked_sub(arity)?;
    if dst_col >= *build_arity {
        return None;
    }
    let totals_delta = prog.driver_value_mode == DeltaValueMode::Total;

    if v.aggs.is_empty() {
        if !prog.agg_exprs.is_empty() {
            return None;
        }
        return Some(KernelPlan {
            name: "csr_set",
            op: KernelOp::Set,
            scalar: KernelScalar::I64,
            edge_fn: KernelEdgeFn::Identity,
            key_col,
            agg_col: None,
            src_col,
            dst_col,
            weight: CsrWeight::None,
            totals_delta,
            build: build.clone(),
        });
    }

    // Aggregate kernels additionally require a static PreM proof: only the
    // verifier's `Proven` verdict certifies that merging aggregates *inside*
    // the recursion (which the dense slabs do unconditionally) is equivalent
    // to aggregating after the fixpoint.
    let (agg_col, func) = v.aggs[0];
    if v.prem.first() != Some(&StaticVerdict::Proven) {
        return None;
    }
    let (op, scalar) = match (func, v.schema.field(agg_col).data_type) {
        (AggFunc::Min, DataType::Int) => (KernelOp::Min, KernelScalar::I64),
        (AggFunc::Min, DataType::Double) => (KernelOp::Min, KernelScalar::F64),
        (AggFunc::Max, DataType::Int) => (KernelOp::Max, KernelScalar::I64),
        (AggFunc::Max, DataType::Double) => (KernelOp::Max, KernelScalar::F64),
        // Sums stay on i64 slabs: the generic path promotes an overflowing
        // Int sum to Double, which a fixed-width slab cannot mirror, and a
        // Double sum's result depends on addition order.
        (AggFunc::Sum | AggFunc::Count, DataType::Int) => (KernelOp::Sum, KernelScalar::I64),
        _ => return None,
    };
    let [agg_expr] = prog.agg_exprs.as_slice() else {
        return None;
    };
    let matched = match_edge_fn(agg_expr, agg_col, arity, *build_arity)?;
    let (edge_fn, weight) = match (matched, scalar) {
        (Matched::Identity, _) => (KernelEdgeFn::Identity, CsrWeight::None),
        (Matched::AddConst(lit @ Value::Int(_)), KernelScalar::I64) => {
            (KernelEdgeFn::AddConst(lit), CsrWeight::None)
        }
        // Value::add widens Int addends, so an Int literal is exact for f64.
        (Matched::AddConst(lit @ (Value::Int(_) | Value::Double(_))), KernelScalar::F64) => {
            (KernelEdgeFn::AddConst(lit), CsrWeight::None)
        }
        (Matched::AddConst(_), _) => return None,
        (Matched::AddWeight(col), KernelScalar::I64) => {
            (KernelEdgeFn::AddWeight, CsrWeight::Int { col })
        }
        (Matched::AddWeight(col), KernelScalar::F64) => (
            KernelEdgeFn::AddWeight,
            CsrWeight::Float {
                col,
                promote_int: true,
            },
        ),
        (Matched::MinWeight(col), KernelScalar::I64) => {
            (KernelEdgeFn::MinWeight, CsrWeight::Int { col })
        }
        // least() compares the raw values: an Int weight would win or lose
        // against a Double by Value ordering, which f64 slabs can't mirror —
        // so demand genuine Double weights.
        (Matched::MinWeight(col), KernelScalar::F64) => (
            KernelEdgeFn::MinWeight,
            CsrWeight::Float {
                col,
                promote_int: false,
            },
        ),
    };
    let name = match (op, scalar) {
        (KernelOp::Min, KernelScalar::I64) => "csr_min_i64",
        (KernelOp::Min, KernelScalar::F64) => "csr_min_f64",
        (KernelOp::Max, KernelScalar::I64) => "csr_max_i64",
        (KernelOp::Max, KernelScalar::F64) => "csr_max_f64",
        (KernelOp::Sum, _) => "csr_sum_i64",
        (KernelOp::Set, _) => unreachable!("set handled above"),
    };
    Some(KernelPlan {
        name,
        op,
        scalar,
        edge_fn,
        key_col,
        agg_col: Some(agg_col),
        src_col,
        dst_col,
        weight,
        totals_delta,
        build: build.clone(),
    })
}

/// The syntactic form matched from the aggregate expression, carrying the
/// build-side weight column where one appears.
enum Matched {
    Identity,
    AddWeight(usize),
    AddConst(Value),
    MinWeight(usize),
}

/// Match the per-edge contribution expression over the combined
/// `stream(arity) ++ build(build_arity)` row: `Col(agg)` (identity),
/// `Col(agg) + Col(build.j)` / `Col(build.j) + Col(agg)` (weighted),
/// `Col(agg) + Lit` / `Lit + Col(agg)` (constant), or
/// `least(Col(agg), Col(build.j))` in either argument order.
fn match_edge_fn(
    e: &PExpr,
    agg_col: usize,
    stream_arity: usize,
    build_arity: usize,
) -> Option<Matched> {
    let is_agg = |x: &PExpr| *x == PExpr::Col(agg_col);
    let build_col = |x: &PExpr| match x {
        PExpr::Col(c) if *c >= stream_arity && *c - stream_arity < build_arity => {
            Some(*c - stream_arity)
        }
        _ => None,
    };
    if is_agg(e) {
        return Some(Matched::Identity);
    }
    match e {
        PExpr::Binary {
            left,
            op: BinaryOp::Add,
            right,
        } => {
            let (agg_side, other) = if is_agg(left) {
                (left, right)
            } else if is_agg(right) {
                (right, left)
            } else {
                return None;
            };
            debug_assert!(is_agg(agg_side));
            if let Some(j) = build_col(other) {
                return Some(Matched::AddWeight(j));
            }
            if let PExpr::Lit(v) = &**other {
                return Some(Matched::AddConst(v.clone()));
            }
            None
        }
        PExpr::Func {
            func: ScalarFunc::Least,
            args,
        } => match args.as_slice() {
            [a, b] if is_agg(a) => build_col(b).map(Matched::MinWeight),
            [a, b] if is_agg(b) => build_col(a).map(Matched::MinWeight),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use rasql_parser::parse_statements;
    use rasql_plan::{analyze_statement, optimize_spec, AnalyzedStatement, ViewCatalog};
    use rasql_storage::Schema;

    /// Compile one query against a weighted `edge` table, exactly as the
    /// engine would (analyze, then spec-level optimize).
    fn spec_for(sql: &str) -> FixpointSpec {
        let mut cat = ViewCatalog::new();
        cat.add_table(
            "edge",
            Schema::new(vec![
                ("Src", DataType::Int),
                ("Dst", DataType::Int),
                ("Cost", DataType::Double),
            ]),
        );
        let stmts = parse_statements(sql).unwrap();
        let AnalyzedStatement::Query(q) = analyze_statement(&stmts[0], &cat).unwrap() else {
            panic!("not a query: {sql}");
        };
        optimize_spec(q.cliques.into_iter().next().expect("one clique"))
    }

    #[test]
    fn sssp_selects_min_f64_with_edge_weight() {
        let kp = select_kernel(&spec_for(&library::sssp(0)), &EngineConfig::rasql()).unwrap();
        assert_eq!(kp.name, "csr_min_f64");
        assert_eq!(kp.op, KernelOp::Min);
        assert_eq!(kp.scalar, KernelScalar::F64);
        assert_eq!(kp.edge_fn, KernelEdgeFn::AddWeight);
        assert_eq!(
            kp.weight,
            CsrWeight::Float {
                col: 2,
                promote_int: true
            }
        );
        assert_eq!((kp.src_col, kp.dst_col), (0, 1));
    }

    #[test]
    fn reach_selects_set_kernel() {
        let kp = select_kernel(&spec_for(&library::reach(0)), &EngineConfig::rasql()).unwrap();
        assert_eq!(kp.name, "csr_set");
        assert_eq!(kp.op, KernelOp::Set);
        assert_eq!(kp.agg_col, None);
        assert_eq!(kp.weight, CsrWeight::None);
    }

    #[test]
    fn widest_path_selects_max_with_least_combiner() {
        let kp =
            select_kernel(&spec_for(&library::widest_path(0)), &EngineConfig::rasql()).unwrap();
        assert_eq!(kp.name, "csr_max_f64");
        assert_eq!(kp.edge_fn, KernelEdgeFn::MinWeight);
        // least() compares raw values, so Int weights must NOT be promoted.
        assert_eq!(
            kp.weight,
            CsrWeight::Float {
                col: 2,
                promote_int: false
            }
        );
    }

    #[test]
    fn ablated_configs_bypass_the_kernel() {
        let spec = spec_for(&library::sssp(0));
        for (why, cfg) in [
            (
                "kernels off",
                EngineConfig::rasql().with_specialized_kernels(false),
            ),
            (
                "stage combination off",
                EngineConfig::rasql().with_stage_combination(false),
            ),
            (
                "fused codegen off",
                EngineConfig::rasql().with_fused_codegen(false),
            ),
            ("naive evaluation", EngineConfig::spark_sql_naive()),
        ] {
            assert!(select_kernel(&spec, &cfg).is_none(), "{why}");
        }
    }

    #[test]
    fn multi_key_and_unproven_shapes_fall_back() {
        // APSP: two key columns.
        assert!(select_kernel(&spec_for(&library::apsp()), &EngineConfig::rasql()).is_none());
        // Non-monotone contribution: PreM is statically refuted, so the
        // aggregate may not be merged inside the recursion.
        let refuted = "WITH recursive path (Dst, min() AS Cost) AS \
                         (SELECT 0, 0.0) UNION \
                         (SELECT edge.Dst, 100 - path.Cost FROM path, edge \
                          WHERE path.Dst = edge.Src) \
                       SELECT Dst, Cost FROM path";
        assert!(select_kernel(&spec_for(refuted), &EngineConfig::rasql()).is_none());
    }
}
