//! Generic (non-recursive) plan evaluation over the cluster runtime.
//!
//! Used for base-case branches, the build sides of recursive joins, and the
//! final SELECT over materialized fixpoint results. Joins/aggregates shuffle
//! to co-partitioned datasets and run partition-wise, so base-case evaluation
//! is parallel like everything else.

use crate::error::EngineError;
use rasql_exec::{
    run_fused, run_unfused, Cluster, Dataset, HashTable, Pipeline, PipelineStep, QueryGovernor,
    RowCombiner, TraceSink,
};
use rasql_parser::ast::AggFunc;
use rasql_plan::{AggExpr, LogicalPlan, PExpr};
use rasql_storage::{Catalog, DataType, FxHashMap, FxHashSet, Relation, Row, Schema, Value};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Everything a plan evaluation needs.
pub struct EvalContext<'a> {
    /// The cluster to run stages on.
    pub cluster: &'a Cluster,
    /// Base tables.
    pub catalog: &'a Catalog,
    /// Materialized recursive views (by lower-case name).
    pub views: &'a HashMap<String, Arc<Relation>>,
    /// Partition count for shuffles.
    pub partitions: usize,
    /// Fused (codegen-analog) pipelines vs. per-operator passes.
    pub fused: bool,
    /// Per-query trace recorder; `None` disables all recording.
    pub trace: Option<&'a TraceSink>,
    /// Per-query resource governor (memory budget, deadline, cancellation);
    /// `None` runs ungoverned.
    pub governor: Option<&'a QueryGovernor>,
    /// Version-keyed cache of built CSR kernel graphs; `None` builds fresh.
    pub csr_cache: Option<&'a crate::cache::CsrCache>,
}

impl<'a> EvalContext<'a> {
    /// Evaluate a plan to a materialized relation.
    pub fn evaluate(&self, plan: &LogicalPlan) -> Result<Relation, EngineError> {
        let ds = self.eval_ds(plan)?;
        Ok(ds.into_relation(plan.schema().clone()))
    }

    /// Evaluate to a dataset.
    pub fn eval_ds(&self, plan: &LogicalPlan) -> Result<Dataset, EngineError> {
        self.eval_node(plan, "0")
    }

    /// Evaluate one node, recording its output cardinality/bytes/time under
    /// its pre-order `path` (matching
    /// [`LogicalPlan::display_annotated`][rasql_plan::LogicalPlan::display_annotated])
    /// when operator tracing is on. Counters are inclusive of children.
    fn eval_node(&self, plan: &LogicalPlan, path: &str) -> Result<Dataset, EngineError> {
        if let Some(g) = self.governor {
            g.check()?;
        }
        let recording = self.trace.is_some_and(TraceSink::operators_enabled);
        let t0 = Instant::now();
        let ds = self.eval_inner(plan, path)?;
        if recording {
            if let Some(sink) = self.trace {
                let rows = ds.len() as u64;
                let bytes: usize = ds
                    .partitions
                    .iter()
                    .flat_map(|p| p.iter())
                    .map(Row::size_bytes)
                    .sum();
                sink.record_operator(
                    path.to_string(),
                    plan.node_label(),
                    rows,
                    bytes as u64,
                    t0.elapsed(),
                );
            }
        }
        Ok(ds)
    }

    fn eval_inner(&self, plan: &LogicalPlan, path: &str) -> Result<Dataset, EngineError> {
        match plan {
            LogicalPlan::TableScan { table, .. } => {
                let rel = self.catalog.get(table)?;
                Ok(Dataset::round_robin(rel.rows().to_vec(), self.partitions))
            }
            LogicalPlan::ViewScan { view, .. } => {
                let rel = self
                    .views
                    .get(&view.to_ascii_lowercase())
                    .ok_or_else(|| EngineError::Other(format!("view '{view}' not materialized")))?;
                Ok(Dataset::round_robin(rel.rows().to_vec(), self.partitions))
            }
            LogicalPlan::Values { rows, .. } => Ok(Dataset::single(rows.clone())),
            LogicalPlan::Projection { input, exprs, .. } => {
                let input = self.eval_node(input, &format!("{path}.0"))?;
                let exprs = exprs.clone();
                let project: rasql_exec::pipeline::MapFn =
                    Arc::new(move |r: &Row| Row::new(exprs.iter().map(|e| e.eval(r)).collect()));
                self.run_pipeline(&input, Pipeline::with_project(vec![], project), "project")
            }
            LogicalPlan::Filter { input, predicate } => {
                let input = self.eval_node(input, &format!("{path}.0"))?;
                let pred = predicate.clone();
                let steps = vec![PipelineStep::Filter(Arc::new(move |r: &Row| {
                    pred.eval(r).is_truthy()
                }))];
                self.run_pipeline(&input, Pipeline::new(steps), "filter")
            }
            LogicalPlan::Join {
                left,
                right,
                left_keys,
                right_keys,
                residual,
                ..
            } => self.eval_join(left, right, left_keys, right_keys, residual.as_ref(), path),
            LogicalPlan::Aggregate {
                input,
                group_cols,
                aggs,
                ..
            } => self.eval_aggregate(input, *group_cols, aggs, path),
            LogicalPlan::Union { inputs, .. } => {
                let mut rows = Vec::new();
                for (i, input) in inputs.iter().enumerate() {
                    rows.extend(self.eval_node(input, &format!("{path}.{i}"))?.collect());
                }
                Ok(Dataset::round_robin(rows, self.partitions))
            }
            LogicalPlan::Distinct { input } => {
                let child = self.eval_node(input, &format!("{path}.0"))?;
                let arity = input.schema().arity();
                let all_cols: Vec<usize> = (0..arity).collect();
                let shuffled = child.shuffle_if_needed_traced(
                    self.cluster,
                    self.trace,
                    "distinct shuffle",
                    &all_cols,
                    self.partitions,
                )?;
                Ok(shuffled.map_partitions_traced(
                    self.cluster,
                    self.trace,
                    "distinct",
                    |_p, rows| {
                        let mut seen: FxHashSet<&Row> = FxHashSet::default();
                        let mut out = Vec::with_capacity(rows.len());
                        for r in rows {
                            if seen.insert(r) {
                                out.push(r.clone());
                            }
                        }
                        out
                    },
                )?)
            }
            LogicalPlan::Sort { input, keys } => {
                let mut rows = self.eval_node(input, &format!("{path}.0"))?.collect();
                let keys = keys.clone();
                rows.sort_by(|a, b| {
                    for &(c, asc) in &keys {
                        let o = a[c].cmp(&b[c]);
                        if o != std::cmp::Ordering::Equal {
                            return if asc { o } else { o.reverse() };
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(Dataset::single(rows))
            }
            LogicalPlan::Limit { input, n } => {
                let mut rows = self.eval_node(input, &format!("{path}.0"))?.collect();
                rows.truncate(*n as usize);
                Ok(Dataset::single(rows))
            }
        }
    }

    fn run_pipeline(
        &self,
        input: &Dataset,
        pipeline: Pipeline,
        label: &str,
    ) -> Result<Dataset, EngineError> {
        let fused = self.fused;
        Ok(
            input.map_partitions_traced(self.cluster, self.trace, label, move |_p, rows| {
                if fused {
                    run_fused(rows, &pipeline)
                } else {
                    run_unfused(rows, &pipeline)
                }
            })?,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_join(
        &self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        left_keys: &[usize],
        right_keys: &[usize],
        residual: Option<&PExpr>,
        path: &str,
    ) -> Result<Dataset, EngineError> {
        let l = self.eval_node(left, &format!("{path}.0"))?;
        let r = self.eval_node(right, &format!("{path}.1"))?;
        let residual = residual.cloned();

        if left_keys.is_empty() {
            // Cross join (possibly with a residual inequality predicate):
            // replicate the right side and nested-loop per left partition.
            let right_rows = Arc::new(r.collect());
            return Ok(l.map_partitions_traced(
                self.cluster,
                self.trace,
                "cross join",
                move |_p, rows| {
                    let mut out = Vec::new();
                    for a in rows {
                        for b in right_rows.iter() {
                            let joined = a.concat(b);
                            if residual
                                .as_ref()
                                .map(|p| p.eval(&joined).is_truthy())
                                .unwrap_or(true)
                            {
                                out.push(joined);
                            }
                        }
                    }
                    out
                },
            )?);
        }

        // Equi join: co-partition both sides, hash-join partition-wise.
        let l = l.shuffle_if_needed_traced(
            self.cluster,
            self.trace,
            "join probe shuffle",
            left_keys,
            self.partitions,
        )?;
        let r = r.shuffle_if_needed_traced(
            self.cluster,
            self.trace,
            "join build shuffle",
            right_keys,
            self.partitions,
        )?;
        let right_parts = r.partitions;
        let left_keys: Vec<usize> = left_keys.to_vec();
        let right_keys: Vec<usize> = right_keys.to_vec();
        let cluster_metrics = Arc::clone(&self.cluster.metrics);
        Ok(
            l.map_partitions_traced(self.cluster, self.trace, "hash join", move |p, rows| {
                let table = HashTable::build(&right_parts[p], &right_keys);
                let mut out = Vec::new();
                for a in rows {
                    let key: Vec<Value> = left_keys.iter().map(|&c| a[c].clone()).collect();
                    for b in table.probe(&key) {
                        let joined = a.concat(b);
                        if residual
                            .as_ref()
                            .map(|pr| pr.eval(&joined).is_truthy())
                            .unwrap_or(true)
                        {
                            out.push(joined);
                        }
                    }
                }
                rasql_exec::Metrics::add(&cluster_metrics.join_output_rows, out.len() as u64);
                out
            })?,
        )
    }

    fn eval_aggregate(
        &self,
        input: &LogicalPlan,
        group_cols: usize,
        aggs: &[AggExpr],
        path: &str,
    ) -> Result<Dataset, EngineError> {
        let child = self.eval_node(input, &format!("{path}.0"))?;
        let key: Vec<usize> = (0..group_cols).collect();
        let child = if group_cols == 0 {
            // Global aggregate: everything to one partition.
            Dataset::single(child.collect())
        } else {
            child.shuffle_if_needed_combined_traced(
                self.cluster,
                self.trace,
                "aggregate shuffle",
                &key,
                self.partitions,
                map_side_combiner(group_cols, aggs, input.schema()).as_ref(),
                self.governor,
            )?
        };
        let aggs: Vec<AggExpr> = aggs.to_vec();
        Ok(child.map_partitions_traced(
            self.cluster,
            self.trace,
            "aggregate",
            move |_p, rows| {
                let mut groups: FxHashMap<Box<[Value]>, Vec<Accumulator>> = FxHashMap::default();
                if group_cols == 0 && rows.is_empty() {
                    // SQL: a global aggregate over zero rows still yields one row.
                    let accs: Vec<Accumulator> = aggs.iter().map(Accumulator::new).collect();
                    return vec![finish_row(&[], &accs)];
                }
                for row in rows {
                    let k: Box<[Value]> = (0..group_cols).map(|c| row[c].clone()).collect();
                    let accs = groups
                        .entry(k)
                        .or_insert_with(|| aggs.iter().map(Accumulator::new).collect());
                    for acc in accs.iter_mut() {
                        acc.update(row);
                    }
                }
                groups.iter().map(|(k, accs)| finish_row(k, accs)).collect()
            },
        )?)
    }
}

/// Map-side combiner for the aggregate shuffle (paper §7.1, map side of
/// stage combination): pre-merge rows that share a group key on the write
/// side, so the exchange ships one partial row per (source partition, group)
/// instead of one per input row.
///
/// Only built when the pre-merge is provably invisible downstream: every
/// aggregate is a non-`DISTINCT` `min`/`max`/`sum`, every `sum` argument is
/// an integer column (float addition is order-dependent and the combine
/// reorders it), and no column is consumed by two aggregates with different
/// functions (one cell cannot hold both partials). `count`/`avg` never
/// qualify — they need the uncombined row multiplicity.
fn map_side_combiner(group_cols: usize, aggs: &[AggExpr], input: &Schema) -> Option<RowCombiner> {
    let mut ops: Vec<(usize, AggFunc)> = Vec::new();
    for a in aggs {
        let c = a.arg?; // count(*) has no argument
        if a.distinct {
            return None;
        }
        match a.func {
            AggFunc::Min | AggFunc::Max => {}
            AggFunc::Sum if input.field(c).data_type == DataType::Int => {}
            _ => return None,
        }
        if ops.iter().any(|&(col, f)| col == c && f != a.func) {
            return None;
        }
        if !ops.contains(&(c, a.func)) {
            ops.push((c, a.func));
        }
    }
    Some(Arc::new(move |rows: Vec<Row>| {
        // First-seen order keeps the combined bucket deterministic.
        let mut index: FxHashMap<Box<[Value]>, usize> = FxHashMap::default();
        let mut acc: Vec<Vec<Value>> = Vec::new();
        for row in rows {
            let key: Box<[Value]> = row.values()[..group_cols].to_vec().into();
            if let Some(&slot) = index.get(&key) {
                let cur = &mut acc[slot];
                for &(c, func) in &ops {
                    let v = &row[c];
                    if v.is_null() {
                        continue; // SQL aggregates skip NULLs
                    }
                    let m = &mut cur[c];
                    match func {
                        _ if m.is_null() => *m = v.clone(),
                        AggFunc::Min => {
                            if *v < *m {
                                *m = v.clone();
                            }
                        }
                        AggFunc::Max => {
                            if *v > *m {
                                *m = v.clone();
                            }
                        }
                        AggFunc::Sum => *m = m.add(v),
                        AggFunc::Count | AggFunc::Avg => unreachable!("filtered above"),
                    }
                }
            } else {
                index.insert(key, acc.len());
                acc.push(row.into_values());
            }
        }
        acc.into_iter().map(Row::new).collect()
    }))
}

fn finish_row(key: &[Value], accs: &[Accumulator]) -> Row {
    let mut v: Vec<Value> = key.to_vec();
    v.extend(accs.iter().map(Accumulator::finish));
    Row::new(v)
}

/// Aggregate accumulator for final (stratified) aggregation.
struct Accumulator {
    func: AggFunc,
    arg: Option<usize>,
    distinct: Option<FxHashSet<Value>>,
    extremum: Option<Value>,
    sum: Value,
    count: i64,
}

impl Accumulator {
    fn new(spec: &AggExpr) -> Self {
        Accumulator {
            func: spec.func,
            arg: spec.arg,
            distinct: spec.distinct.then(FxHashSet::default),
            extremum: None,
            sum: Value::Int(0),
            count: 0,
        }
    }

    fn update(&mut self, row: &Row) {
        let v = match self.arg {
            Some(c) => row[c].clone(),
            None => Value::Int(1), // count(*)
        };
        if self.arg.is_some() && v.is_null() {
            return; // SQL aggregates skip NULLs
        }
        if let Some(seen) = &mut self.distinct {
            if !seen.insert(v.clone()) {
                return;
            }
        }
        match self.func {
            AggFunc::Min => {
                if self.extremum.as_ref().map(|m| v < *m).unwrap_or(true) {
                    self.extremum = Some(v);
                }
            }
            AggFunc::Max => {
                if self.extremum.as_ref().map(|m| v > *m).unwrap_or(true) {
                    self.extremum = Some(v);
                }
            }
            AggFunc::Sum | AggFunc::Avg => {
                self.sum = self.sum.add(&v);
                self.count += 1;
            }
            AggFunc::Count => self.count += 1,
        }
    }

    fn finish(&self) -> Value {
        match self.func {
            AggFunc::Min | AggFunc::Max => self.extremum.clone().unwrap_or(Value::Null),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else {
                    self.sum.clone()
                }
            }
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Avg => {
                // Always a double, even over integer inputs.
                match (self.sum.as_f64(), self.count) {
                    (_, 0) => Value::Null,
                    (Some(s), n) => Value::Double(s / n as f64),
                    (None, _) => Value::Null,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasql_exec::ClusterConfig;
    use rasql_parser::parse;
    use rasql_plan::{analyze_statement, optimize, AnalyzedStatement, ViewCatalog};
    use rasql_storage::{DataType, Schema};

    fn run_sql(sql: &str, tables: &[(&str, Relation)]) -> Relation {
        let catalog = Catalog::new();
        let mut vc = ViewCatalog::new();
        for (name, rel) in tables {
            vc.add_table(name, rel.schema().clone());
            catalog.register(name, rel.clone()).unwrap();
        }
        let stmt = parse(sql).unwrap();
        let analyzed = match analyze_statement(&stmt, &vc).unwrap() {
            AnalyzedStatement::Query(q) => q,
            other => panic!("{other:?}"),
        };
        assert!(analyzed.cliques.is_empty(), "non-recursive tests only");
        let plan = optimize(analyzed.final_plan);
        let cluster = Cluster::new(ClusterConfig::with_workers(2));
        let views = HashMap::new();
        let ctx = EvalContext {
            cluster: &cluster,
            catalog: &catalog,
            views: &views,
            partitions: 4,
            fused: true,
            trace: None,
            governor: None,
            csr_cache: None,
        };
        ctx.evaluate(&plan).unwrap().sorted()
    }

    fn edges() -> Relation {
        Relation::edges(&[(1, 2), (1, 3), (2, 3), (3, 4)])
    }

    #[test]
    fn scan_project_filter() {
        let r = run_sql("SELECT Dst FROM edge WHERE Src = 1", &[("edge", edges())]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows()[0][0], Value::Int(2));
        assert_eq!(r.rows()[1][0], Value::Int(3));
    }

    #[test]
    fn equi_join() {
        let r = run_sql(
            "SELECT a.Src, b.Dst FROM edge a, edge b WHERE a.Dst = b.Src",
            &[("edge", edges())],
        );
        // (1,2)-(2,3); (1,3)-(3,4); (2,3)-(3,4)
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn cross_join_with_inequality() {
        let r = run_sql(
            "SELECT a.Src, b.Src FROM edge a, edge b WHERE a.Src < b.Src",
            &[("edge", edges())],
        );
        // srcs: 1,1,2,3 → pairs with a<b: (1,2)x2, (1,3)x2, (2,3) → 5
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn group_by_aggregates() {
        let r = run_sql(
            "SELECT Src, count(*), max(Dst) FROM edge GROUP BY Src",
            &[("edge", edges())],
        );
        assert_eq!(r.len(), 3);
        // Src=1: count 2, max 3
        let row = r.rows().iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(row[1], Value::Int(2));
        assert_eq!(row[2], Value::Int(3));
    }

    #[test]
    fn global_aggregate_and_distinct() {
        let r = run_sql(
            "SELECT count(distinct Dst), min(Src), avg(Src) FROM edge",
            &[("edge", edges())],
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0][0], Value::Int(3)); // {2,3,4}
        assert_eq!(r.rows()[0][1], Value::Int(1));
        assert_eq!(r.rows()[0][2], Value::Double(1.75));
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let r = run_sql(
            "SELECT count(*) FROM edge WHERE Src = 99",
            &[("edge", edges())],
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0][0], Value::Int(0));
    }

    #[test]
    fn having_filters_groups() {
        let r = run_sql(
            "SELECT Src FROM edge GROUP BY Src HAVING count(*) > 1",
            &[("edge", edges())],
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0][0], Value::Int(1));
    }

    #[test]
    fn union_dedups() {
        let r = run_sql(
            "(SELECT Src FROM edge) UNION (SELECT Dst FROM edge)",
            &[("edge", edges())],
        );
        // distinct values {1,2,3,4}
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn order_by_and_limit() {
        let r = run_sql(
            "SELECT Src FROM edge ORDER BY Src DESC LIMIT 2",
            &[("edge", edges())],
        );
        assert_eq!(r.len(), 2);
        let vals: Vec<i64> = r.rows().iter().map(|x| x[0].as_int().unwrap()).collect();
        assert_eq!(vals, vec![2, 3]); // top-2 of (1,1,2,3), re-sorted asc by harness
    }

    #[test]
    fn distinct_select() {
        let r = run_sql("SELECT DISTINCT Src FROM edge", &[("edge", edges())]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn interval_coalesce_lstart_shape() {
        // The non-recursive part of Example 6.
        let inter = Relation::try_new(
            Schema::new(vec![("s", DataType::Int), ("e", DataType::Int)]),
            vec![
                rasql_storage::row::int_row(&[1, 3]),
                rasql_storage::row::int_row(&[2, 5]),
                rasql_storage::row::int_row(&[7, 9]),
            ],
        )
        .unwrap();
        let r = run_sql(
            "SELECT a.S FROM inter a, inter b WHERE a.S <= b.E \
             GROUP BY a.S HAVING a.S = min(b.S)",
            &[("inter", inter)],
        );
        // Left-most uncovered starts: 1 and ... every a.S pairs with all b
        // having a.S <= b.E; min(b.S)=1 ⇒ only a.S=1 qualifies... and 7 pairs
        // with b=(7,9) and b=(2,5)? 7<=5 no; 7<=3 no; 7<=9 yes ⇒ min(b.S)=7 ⇒ 7.
        let vals: Vec<i64> = r.rows().iter().map(|x| x[0].as_int().unwrap()).collect();
        assert_eq!(vals, vec![1, 7]);
    }
}
