//! `CHECK query` — the unified static + dynamic verification entry point.
//!
//! [`RaSqlContext::check`] runs the static verifier
//! ([`rasql_plan::verify_query`]) over a query and, for every PreM obligation
//! the syntactic conditions leave [`StaticVerdict::Unknown`], falls back to
//! the dynamic lock-step [`PremChecker`](crate::PremChecker) on the session's
//! registered data. Both kinds of evidence travel in one [`CheckReport`], so
//! callers (the `CHECK` statement, the shell's `\lint`, `reproduce lint`)
//! never have to stitch the two systems together.

use crate::context::{QueryResult, QueryStats, RaSqlContext};
use crate::error::EngineError;
use crate::prem::{PremCheckOutcome, PremChecker};
use rasql_parser::ast::{AggFunc, Query, Statement};
use rasql_parser::parse;
use rasql_plan::{AnalyzedStatement, Severity, StaticVerdict, VerifyReport};
use rasql_storage::Relation;

/// How a PreM obligation was discharged.
#[derive(Debug, Clone)]
pub enum PremEvidence {
    /// The syntactic sufficient conditions settled it.
    Static {
        /// The static outcome (`Proven` or `Refuted`).
        verdict: StaticVerdict,
        /// Why.
        reason: String,
    },
    /// Statically unknown; the lock-step checker ran on the registered data.
    Dynamic {
        /// The dynamic outcome.
        outcome: PremCheckOutcome,
    },
}

impl PremEvidence {
    /// True when the evidence does not contradict PreM: a static proof, or a
    /// dynamic run that found no violation.
    pub fn supports_prem(&self) -> bool {
        match self {
            PremEvidence::Static { verdict, .. } => *verdict == StaticVerdict::Proven,
            PremEvidence::Dynamic { outcome } => {
                !matches!(outcome, PremCheckOutcome::Violated { .. })
            }
        }
    }
}

/// Evidence for one aggregate head column.
#[derive(Debug, Clone)]
pub struct PremColumnEvidence {
    /// View the column belongs to.
    pub view: String,
    /// Head column name.
    pub column: String,
    /// The aggregate applied in recursion.
    pub func: AggFunc,
    /// The unified evidence.
    pub evidence: PremEvidence,
}

/// The result of `CHECK query`: static diagnostics, per-column PreM evidence
/// (with dynamic fallback), and the rendered report.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// The static verifier's findings (diagnostics, PreM verdicts,
    /// certificates).
    pub verification: VerifyReport,
    /// Unified PreM evidence, one entry per aggregate head column.
    pub prem: Vec<PremColumnEvidence>,
    /// The full report rendered against the original SQL.
    pub rendered: String,
}

impl CheckReport {
    /// True when no error-severity diagnostic was emitted and no dynamic
    /// check observed a PreM violation.
    pub fn passed(&self) -> bool {
        self.verification.is_clean() && self.prem.iter().all(|p| p.evidence.supports_prem())
    }
}

impl RaSqlContext {
    /// Verify a query without executing it: stratification and safety
    /// diagnostics, static PreM proofs with dynamic fallback, and the
    /// decomposed-plan partition certificate. Accepts either a plain query
    /// or one already prefixed with `CHECK`.
    pub fn check(&self, sql: &str) -> Result<CheckReport, EngineError> {
        let stmt = parse(sql)?;
        let q = match stmt {
            Statement::Check(q) | Statement::Query(q) => q,
            // A materialized view's maintenance certificate lives on its
            // defining query — CHECK reaches through to it.
            Statement::CreateMaterializedView { query, .. } => query,
            Statement::CreateView { .. }
            | Statement::Explain { .. }
            | Statement::Insert { .. }
            | Statement::Delete { .. }
            | Statement::RefreshMaterializedView { .. }
            | Statement::DropMaterializedView { .. } => {
                return Err(EngineError::Other(
                    "CHECK applies to queries (not DDL or DML statements)".into(),
                ))
            }
        };
        Ok(self.run_check(&q, sql))
    }

    /// Verify every query statement of a `;`-separated script, *executing*
    /// `CREATE VIEW` statements so later queries see their schemas (queries
    /// themselves are never executed). Returns one report per query
    /// statement — the engine behind the shell's `\lint` and
    /// `reproduce lint`.
    pub fn lint_script(&self, sql: &str) -> Result<Vec<CheckReport>, EngineError> {
        let statements = rasql_parser::parse_statements(sql)?;
        let mut reports = Vec::new();
        for stmt in &statements {
            match stmt {
                Statement::Query(q) | Statement::Check(q) => reports.push(self.run_check(q, sql)),
                Statement::CreateView { .. } => {
                    self.execute_statement(stmt, sql)?;
                }
                // Lint never executes queries, so a materialized view is
                // checked (its defining query) and its *schema* registered so
                // later statements resolve — without materializing anything.
                Statement::CreateMaterializedView { name, query, .. } => {
                    reports.push(self.run_check(query, sql));
                    if let Ok(AnalyzedStatement::CreateMaterializedView { query: aq, .. }) =
                        self.analyze(stmt)
                    {
                        self.add_planner_table(name, aq.final_plan.schema());
                    }
                }
                Statement::Explain { .. }
                | Statement::Insert { .. }
                | Statement::Delete { .. }
                | Statement::RefreshMaterializedView { .. }
                | Statement::DropMaterializedView { .. } => {}
            }
        }
        Ok(reports)
    }

    /// The shared `CHECK` implementation: `source` is the text the query's
    /// spans index into.
    pub(crate) fn run_check(&self, q: &Query, source: &str) -> CheckReport {
        let verification = self.verify_ast(q);

        // Dynamic fallback: run the lock-step checker once if any obligation
        // is statically unknown, and share the outcome across those columns.
        let any_unknown = verification
            .views
            .iter()
            .flat_map(|v| &v.prem)
            .any(|o| o.verdict == StaticVerdict::Unknown);
        let dynamic_outcome = if any_unknown {
            Some(
                PremChecker::new(self)
                    .check_statement(&Statement::Query(q.clone()))
                    .unwrap_or_else(|e| PremCheckOutcome::Inconclusive(e.to_string())),
            )
        } else {
            None
        };

        let mut prem = Vec::new();
        for view in &verification.views {
            for o in &view.prem {
                let evidence = match o.verdict {
                    StaticVerdict::Unknown => PremEvidence::Dynamic {
                        outcome: dynamic_outcome
                            .clone()
                            .unwrap_or_else(|| PremCheckOutcome::Inconclusive("not run".into())),
                    },
                    verdict => PremEvidence::Static {
                        verdict,
                        reason: o.reason.clone(),
                    },
                };
                prem.push(PremColumnEvidence {
                    view: o.view.clone(),
                    column: o.column.clone(),
                    func: o.func,
                    evidence,
                });
            }
        }

        let rendered = render_report(&verification, &prem, source);
        CheckReport {
            verification,
            prem,
            rendered,
        }
    }
}

fn render_report(verification: &VerifyReport, prem: &[PremColumnEvidence], source: &str) -> String {
    let mut out = String::new();
    for d in &verification.diagnostics {
        out.push_str(&d.render(source));
    }
    if !prem.is_empty() {
        out.push_str("PreM evidence:\n");
        for p in prem {
            out.push_str(&format!(
                "  {}.{} ({}): {}\n",
                p.view,
                p.column,
                p.func,
                describe_evidence(&p.evidence)
            ));
        }
    }
    for v in &verification.views {
        if let Some(c) = &v.certificate {
            out.push_str(&format!("Certificate {}: {}\n", v.name, c));
        }
    }
    if !verification.maintenance.is_empty() {
        out.push_str("Maintenance:\n");
        for d in &verification.maintenance {
            out.push_str(&d.render(source));
        }
    }
    let errors = verification.error_count();
    let warnings = verification
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    let violated = prem.iter().any(|p| !p.evidence.supports_prem());
    let pass = errors == 0 && !violated;
    out.push_str(&format!(
        "CHECK: {} ({errors} error(s), {warnings} warning(s)) \
         [RA#### = query diagnostics; engine-source lint is RL####, see `reproduce lint-src`]\n",
        if pass { "pass" } else { "FAIL" }
    ));
    out
}

fn describe_evidence(e: &PremEvidence) -> String {
    match e {
        PremEvidence::Static { verdict, reason } => {
            format!("statically {verdict} — {reason}")
        }
        PremEvidence::Dynamic { outcome } => format!(
            "statically Unknown → dynamic: {}",
            describe_outcome(outcome)
        ),
    }
}

fn describe_outcome(o: &PremCheckOutcome) -> String {
    match o {
        PremCheckOutcome::Holds { iterations } => {
            format!("holds on the registered data ({iterations} iterations)")
        }
        PremCheckOutcome::HeldWithinBound { iterations } => {
            format!("held within bound ({iterations} iterations compared)")
        }
        PremCheckOutcome::Violated { iteration, detail } => {
            format!("VIOLATED at iteration {iteration}: {detail}")
        }
        PremCheckOutcome::Inconclusive(msg) => format!("inconclusive — {msg}"),
    }
}

/// Pack a check report into the single-column relation shape statement
/// results travel in.
pub(crate) fn check_result(report: &CheckReport) -> QueryResult {
    QueryResult {
        relation: text_lines(&report.rendered),
        stats: QueryStats::default(),
        trace: None,
    }
}

fn text_lines(text: &str) -> Relation {
    use rasql_storage::{DataType, Row, Schema, Value};
    let schema = Schema::new(vec![("check", DataType::Str)]);
    let rows = text
        .lines()
        .map(|l| Row::new(vec![Value::str(l)]))
        .collect();
    Relation::new_unchecked(schema, rows)
}
