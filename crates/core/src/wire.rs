//! Conversions from engine-internal results and errors to the wire-facing
//! [`rasql_api`] types.
//!
//! The engine and the wire deliberately share their data vocabulary —
//! `Value`, `Row`, and `Schema` are defined in `rasql-api` and re-exported
//! through `rasql-storage` — so converting a result is a flattening, not a
//! translation: rows move wholesale, statistics collapse into the fixed
//! [`rasql_api::QueryStats`] scalar set, and the typed [`EngineError`] tree
//! maps onto the stable `RA####` code space.

use crate::context::{QueryResult, QueryStats};
use crate::error::EngineError;
use rasql_api::{ApiError, ErrorCode};
use rasql_exec::ExecError;

/// Flatten an engine result into its wire form: schema, rows, and the
/// scalar statistics subset (the trace, if any, stays server-side).
pub fn result_to_wire(result: &QueryResult) -> rasql_api::QueryResult {
    rasql_api::QueryResult {
        schema: result.relation.schema().clone(),
        rows: result.relation.rows().to_vec(),
        stats: stats_to_wire(&result.stats),
    }
}

/// Collapse engine statistics into the wire scalar set (per-clique iteration
/// counts sum into one total; wall time becomes microseconds).
pub fn stats_to_wire(stats: &QueryStats) -> rasql_api::QueryStats {
    rasql_api::QueryStats {
        query_id: stats.query_id,
        elapsed_us: u64::try_from(stats.elapsed.as_micros()).unwrap_or(u64::MAX),
        iterations: stats.iterations.iter().map(|&i| u64::from(i)).sum(),
        stages: stats.metrics.stages,
        tasks: stats.metrics.tasks,
        shuffle_rows: stats.metrics.shuffle_rows,
        shuffle_bytes: stats.metrics.shuffle_bytes,
        peak_memory: stats.metrics.peak_memory,
        spilled_bytes: stats.metrics.spilled_bytes,
        spill_files: stats.metrics.spill_files,
    }
}

/// Map an engine error onto its stable wire code. The message is the
/// engine's full rendering (spans and all); the code is what clients branch
/// on.
pub fn error_to_wire(err: &EngineError) -> ApiError {
    let code = match err {
        EngineError::Parse(_) => ErrorCode::Parse,
        EngineError::Plan(_) => ErrorCode::Plan,
        EngineError::Storage(_) => ErrorCode::Storage,
        EngineError::Exec(e) => match e {
            ExecError::Cancelled { .. } => ErrorCode::Cancelled,
            ExecError::DeadlineExceeded { .. } => ErrorCode::DeadlineExceeded,
            ExecError::MemoryExceeded { .. } => ErrorCode::MemoryExceeded,
            ExecError::SpillIo { .. } => ErrorCode::SpillIo,
            ExecError::AdmissionRejected { .. } => ErrorCode::AdmissionRejected,
            ExecError::TaskPanicked { .. }
            | ExecError::RetriesExhausted { .. }
            | ExecError::WorkerUnavailable { .. } => ErrorCode::ExecutionFailed,
        },
        EngineError::NonTermination { .. } => ErrorCode::NonTermination,
        EngineError::UnknownView(_) => ErrorCode::UnknownView,
        EngineError::Other(_) => ErrorCode::Internal,
    };
    ApiError::new(code, err.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RaSqlContext;
    use rasql_storage::{Relation, Value};

    #[test]
    fn result_flattens_rows_and_stats() {
        let ctx = RaSqlContext::builder().workers(2).build();
        ctx.register("edge", Relation::edges(&[(1, 2), (2, 3)]))
            .unwrap();
        let result = ctx
            .query(
                "WITH recursive tc (Src, Dst) AS \
                   (SELECT Src, Dst FROM edge) UNION \
                   (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src) \
                 SELECT Src, Dst FROM tc",
            )
            .unwrap();
        let wire = result_to_wire(&result);
        assert_eq!(wire.rows.len(), result.relation.len());
        assert_eq!(wire.schema.arity(), 2);
        assert!(wire.stats.iterations > 0);
        assert_eq!(wire.stats.query_id, result.stats.query_id);
        // Row order is not guaranteed; compare as a sorted set.
        let sorted = wire.sorted_rows();
        assert_eq!(sorted[0].values(), [Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn errors_map_to_stable_codes() {
        let ctx = RaSqlContext::in_memory();
        let parse = ctx.query("SELEKT 1").unwrap_err();
        assert_eq!(error_to_wire(&parse).code, ErrorCode::Parse);
        let plan = ctx.query("SELECT * FROM missing").unwrap_err();
        assert_eq!(error_to_wire(&plan).code, ErrorCode::Plan);
        let other = EngineError::Other("boom".into());
        assert_eq!(error_to_wire(&other).code, ErrorCode::Internal);
        assert_eq!(error_to_wire(&other).message, "boom");
    }
}
