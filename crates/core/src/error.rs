//! Engine errors.

use rasql_exec::ExecError;
use rasql_parser::ParseError;
use rasql_plan::PlanError;
use rasql_storage::StorageError;
use std::fmt;

/// Top-level error type of the RaSQL engine.
#[derive(Debug)]
pub enum EngineError {
    /// SQL parse failure.
    Parse(ParseError),
    /// Analysis/planning failure.
    Plan(PlanError),
    /// Storage/catalog failure.
    Storage(StorageError),
    /// Unrecoverable execution failure: a task panicked, or injected faults
    /// exhausted the retry budget and no checkpoint could absorb the loss.
    Exec(ExecError),
    /// The fixpoint did not converge within the configured iteration cap —
    /// the paper's stratified-SSSP-on-a-cyclic-graph situation (Fig 1's
    /// `360*` footnote).
    NonTermination {
        /// The view that was still producing deltas.
        view: String,
        /// The iteration cap that was hit.
        iterations: u32,
    },
    /// A statement named a materialized view that does not exist.
    UnknownView(String),
    /// Anything else.
    Other(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Plan(e) => write!(f, "{e}"),
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::Exec(e) => write!(f, "{e}"),
            EngineError::NonTermination { view, iterations } => write!(
                f,
                "fixpoint for view '{view}' did not converge after {iterations} iterations \
                 (cyclic data with a stratified/set-semantics recursion?)"
            ),
            EngineError::UnknownView(name) => {
                write!(f, "unknown materialized view '{name}'")
            }
            EngineError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Parse(e) => Some(e),
            EngineError::Plan(e) => Some(e),
            EngineError::Storage(e) => Some(e),
            EngineError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<ExecError> for EngineError {
    fn from(e: ExecError) -> Self {
        EngineError::Exec(e)
    }
}
