//! Fig 10: Delivery / Management / MLM on tree hierarchies vs the SQL-loop
//! baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use rasql_bench::run_sql_with;
use rasql_core::{library, EngineConfig};
use rasql_datagen::{tree_hierarchy, TreeConfig};

/// A named benchmark workload: display name, input tables, SQL text.
type Workload<'a> = (&'a str, Vec<(&'a str, &'a rasql_storage::Relation)>, String);

fn bench(c: &mut Criterion) {
    let tree = tree_hierarchy(
        TreeConfig {
            target_nodes: 10_000,
            ..Default::default()
        },
        5,
    );
    let mut g = c.benchmark_group("fig10_complex");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let workloads: Vec<Workload<'_>> = vec![
        (
            "Delivery",
            vec![("assbl", &tree.assbl), ("basic", &tree.basic)],
            library::bom_delivery(),
        ),
        (
            "Management",
            vec![("report", &tree.report)],
            library::management(),
        ),
        (
            "MLM",
            vec![("sales", &tree.sales), ("sponsor", &tree.sponsor)],
            library::mlm_bonus(),
        ),
    ];
    for (name, tables, sql) in &workloads {
        g.bench_function(format!("{name}_RaSQL"), |b| {
            b.iter(|| run_sql_with(EngineConfig::rasql(), tables, sql));
        });
        g.bench_function(format!("{name}_SQL-SN"), |b| {
            b.iter(|| run_sql_with(EngineConfig::spark_sql_sn(), tables, sql));
        });
        g.bench_function(format!("{name}_SQL-Naive"), |b| {
            b.iter(|| run_sql_with(EngineConfig::spark_sql_naive(), tables, sql));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
