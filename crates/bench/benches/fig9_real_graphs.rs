//! Fig 9 / Table 3: real-graph stand-ins, all systems incl. GAP-serial.

use criterion::{criterion_group, criterion_main, Criterion};
use rasql_bench::{run_graph_query, GraphQuery, System};
use rasql_datagen::{real_graph_standin, RealGraph};

fn bench(c: &mut Criterion) {
    let workers = rasql_bench::default_workers();
    let mut g = c.benchmark_group("fig9_real_graphs");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let edges = real_graph_standin(RealGraph::LiveJournal, 0.05, false, 23);
    for sys in System::all() {
        g.bench_function(format!("CC_livejournal-s_{}", sys.name()), |b| {
            b.iter(|| run_graph_query(sys, GraphQuery::Cc, &edges, 1, workers));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
