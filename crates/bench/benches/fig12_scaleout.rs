//! Fig 12 / Appendix F: scaling over worker count (TC).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rasql_bench::run_sql_with;
use rasql_core::{library, EngineConfig};
use rasql_datagen::erdos_renyi;

fn bench(c: &mut Criterion) {
    let edges = erdos_renyi(1200, 1e-3, 2);
    let max = rasql_bench::default_workers();
    let mut g = c.benchmark_group("fig12_scaleout");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for &w in &[1usize, 2, 4, 8] {
        if w > max.max(2) {
            continue;
        }
        g.bench_with_input(BenchmarkId::new("TC", w), &w, |b, &w| {
            b.iter(|| {
                run_sql_with(
                    EngineConfig::rasql().with_workers(w),
                    &[("edge", &edges)],
                    &library::transitive_closure(),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
