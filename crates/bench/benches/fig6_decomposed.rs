//! Fig 6: decomposed plan evaluation and broadcast compression on TC.

use criterion::{criterion_group, criterion_main, Criterion};
use rasql_bench::run_sql_with;
use rasql_core::{library, EngineConfig};
use rasql_datagen::grid;

fn bench(c: &mut Criterion) {
    let edges = grid(25, false, 1);
    let mut g = c.benchmark_group("fig6_decomposed_tc");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("decompose_and_compress", |b| {
        b.iter(|| {
            run_sql_with(
                EngineConfig::rasql(),
                &[("edge", &edges)],
                &library::transitive_closure(),
            )
        });
    });
    g.bench_function("decompose_only", |b| {
        b.iter(|| {
            run_sql_with(
                EngineConfig::rasql().with_broadcast_compression(false),
                &[("edge", &edges)],
                &library::transitive_closure(),
            )
        });
    });
    g.bench_function("no_optimizations", |b| {
        b.iter(|| {
            run_sql_with(
                EngineConfig::rasql()
                    .with_decomposed(false)
                    .with_broadcast_compression(false),
                &[("edge", &edges)],
                &library::transitive_closure(),
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
