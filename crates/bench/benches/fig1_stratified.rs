//! Fig 1: stratified query vs RaSQL endo-aggregate query (CC).

use criterion::{criterion_group, criterion_main, Criterion};
use rasql_bench::rmat_graph;
use rasql_core::{library, EngineConfig, RaSqlContext};

fn bench(c: &mut Criterion) {
    let edges = rmat_graph(400, true, 42);
    let mut g = c.benchmark_group("fig1_stratified_vs_rasql");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("rasql_cc", |b| {
        b.iter(|| {
            let ctx = RaSqlContext::with_config(EngineConfig::rasql());
            ctx.register("edge", edges.clone()).unwrap();
            ctx.query(&library::cc()).unwrap()
        });
    });
    g.bench_function("stratified_cc", |b| {
        b.iter(|| {
            let ctx = RaSqlContext::with_config(EngineConfig::rasql());
            ctx.register("edge", edges.clone()).unwrap();
            ctx.query(&library::cc_stratified()).unwrap()
        });
    });
    g.bench_function("rasql_sssp", |b| {
        b.iter(|| {
            let ctx = RaSqlContext::with_config(EngineConfig::rasql());
            ctx.register("edge", edges.clone()).unwrap();
            ctx.query(&library::sssp(1)).unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
