//! Fig 11 / Appendix D: shuffle-hash vs sort-merge join in the fixpoint.

use criterion::{criterion_group, criterion_main, Criterion};
use rasql_bench::{rmat_graph, run_rasql, GraphQuery};
use rasql_core::{EngineConfig, JoinStrategy};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_join_strategies");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for q in [GraphQuery::Cc, GraphQuery::Sssp] {
        let edges = rmat_graph(4000, q.weighted(), 7);
        g.bench_function(format!("{}_shuffle_hash", q.name()), |b| {
            b.iter(|| run_rasql(EngineConfig::rasql().with_decomposed(false), q, &edges, 1));
        });
        g.bench_function(format!("{}_sort_merge", q.name()), |b| {
            b.iter(|| {
                run_rasql(
                    EngineConfig::rasql()
                        .with_decomposed(false)
                        .with_join(JoinStrategy::SortMerge),
                    q,
                    &edges,
                    1,
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
