//! Fig 8: system comparison (RaSQL, BigDatalog, GraphX, Giraph, Myria) on
//! RMAT graphs of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rasql_bench::{rmat_graph, run_graph_query, GraphQuery, System};

fn bench(c: &mut Criterion) {
    let workers = rasql_bench::default_workers();
    let mut g = c.benchmark_group("fig8_rmat_scaling");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[1000usize, 4000] {
        for q in [GraphQuery::Reach, GraphQuery::Cc, GraphQuery::Sssp] {
            let edges = rmat_graph(n, q.weighted(), 11);
            for sys in [
                System::RaSql,
                System::BigDatalog,
                System::GraphX,
                System::Giraph,
                System::Myria,
            ] {
                g.bench_with_input(
                    BenchmarkId::new(format!("{}_{}", q.name(), sys.name()), n),
                    &n,
                    |b, _| b.iter(|| run_graph_query(sys, q, &edges, 1, workers)),
                );
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
