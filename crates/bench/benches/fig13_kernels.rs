//! Fig 13 (beyond the paper): monomorphized CSR fixpoint kernels vs the
//! generic interpreter.

use criterion::{criterion_group, criterion_main, Criterion};
use rasql_bench::{rmat_graph, run_rasql, GraphQuery};
use rasql_core::EngineConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_kernels");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for q in [GraphQuery::Cc, GraphQuery::Reach, GraphQuery::Sssp] {
        let edges = rmat_graph(4096, q.weighted(), 7);
        let cfg = || EngineConfig::rasql().with_stage_latency_us(0);
        g.bench_function(format!("{}_specialized", q.name()), |b| {
            b.iter(|| run_rasql(cfg(), q, &edges, 1));
        });
        g.bench_function(format!("{}_generic", q.name()), |b| {
            b.iter(|| run_rasql(cfg().with_specialized_kernels(false), q, &edges, 1));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
