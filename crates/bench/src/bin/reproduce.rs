//! `reproduce` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce [all|fig1|fig2|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|
//!            table1|table2|table3|premcheck|traces|faults|lint|lint-src|
//!            modelcheck|bench-kernels|ivm|soak|serve-soak|crash-soak]
//!           [--scale X]
//!           [--faults SPEC] [--retries N] [--checkpoint-every K]
//! ```
//!
//! `--scale` multiplies dataset sizes (default 0.25 for a quick run; use 1.0
//! for the full laptop-scale reproduction recorded in EXPERIMENTS.md).
//!
//! The `traces` target runs CC/SSSP/decomposed-TC with tracing enabled and
//! writes one `QueryTrace` JSON file per query under `target/traces/`.
//!
//! The `lint` target runs the compile-time verifier (`CHECK`) over every
//! shipped example query and exits non-zero on any error-severity
//! diagnostic or refuted PreM obligation.
//!
//! The `lint-src` target runs the *source* linter (`rasql-lint`) over the
//! workspace's own `crates/*/src` tree, enforcing the concurrency and
//! hot-path disciplines with `RL####` diagnostics (`RL` codes are about
//! the engine's Rust; `RA` codes are about the user's SQL). Exits non-zero
//! on any unsuppressed finding.
//!
//! The `modelcheck` target runs the interleaving model checker over the
//! engine's shared-state protocols: each model of HEAD must verify clean
//! under exhaustive schedule enumeration, and each mechanically reverted
//! variant must yield a counterexample. Exits non-zero either way a
//! protocol fails.
//!
//! The `bench-kernels` target compares the specialized CSR fixpoint kernels
//! against the generic interpreter, writes `BENCH_kernels.json` in the
//! working directory, and exits non-zero if SSSP or CC falls under a 2×
//! speedup on any ≥4096-vertex R-MAT graph.
//!
//! The `faults` target runs the seeded fault-injection soak: every example
//! query under deterministic fault injection must match its fault-free
//! result, plus a zero-retry checkpoint/restore leg. `--faults` overrides the
//! default spec (e.g. `--faults kill=0.1,loss=0.05,seed=7`), `--retries` the
//! retry budget, and `--checkpoint-every` the checkpoint interval.
//!
//! The `ivm` target runs the incremental-view-maintenance gate: every
//! single-statement example query is materialized as a view, a withheld
//! delta is inserted back, and the refresh must be bit-identical to a full
//! recompute (delta-seeded when the verifier certifies the shape, full
//! fallback with an RA0301 finding otherwise). It writes `BENCH_ivm.json`
//! and exits non-zero if the small-delta R-MAT refresh is less than 5x
//! faster than recomputing.
//!
//! The `soak` target runs the resource-governance soak: concurrent queries on
//! one context under a tight memory budget with fault injection, plus one
//! forced `kill` — asserting correct surviving results, actual spilling, a
//! typed cancellation, and no leaked temp files or worker threads.
//!
//! The `serve-soak` target runs the same discipline over TCP: an in-process
//! `rasql-server` with concurrent clients running the complete example-query
//! library under a tight budget and fault injection, plus one remote
//! `Kill` — asserting surviving results bit-identical to local execution, a
//! clean drain on shutdown, and no leaked temp files or threads.
//!
//! The `crash-soak` target runs the kill-at-every-crashpoint recovery soak:
//! a counting pass enumerates every durability write boundary a scripted
//! DDL/DML/matview workload visits, then one leg per boundary kills exactly
//! there and asserts recovery lands on a bit-identical prefix-consistent
//! state with zero stray snapshot temp files.

use rasql_bench as bench;
use rasql_exec::FaultSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.25f64;
    let mut spec = FaultSpec {
        kill: 0.15,
        delay: 0.1,
        loss: 0.05,
        delay_us: 50,
        seed: 42,
    };
    let mut retries = 3u32;
    let mut checkpoint_every = 3u32;
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--faults" => {
                i += 1;
                let raw = args.get(i).unwrap_or_else(|| die("--faults needs a spec"));
                spec = FaultSpec::parse(raw).unwrap_or_else(|e| die(&e));
            }
            "--retries" => {
                i += 1;
                retries = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--retries needs an integer"));
            }
            "--checkpoint-every" => {
                i += 1;
                checkpoint_every = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--checkpoint-every needs an integer"));
            }
            "--help" | "-h" => {
                println!(
                    "reproduce [all|fig1|fig2|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|\n\
                     table1|table2|table3|premcheck|traces|faults|lint|lint-src|modelcheck|\n\
                     bench-kernels|ivm|soak|serve-soak|crash-soak]...\n\
                     [--scale X] [--faults SPEC] [--retries N] [--checkpoint-every K]"
                );
                return;
            }
            t => targets.push(t.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        targets.push("all".into());
    }

    let all = targets.iter().any(|t| t == "all");
    let want = |name: &str| all || targets.iter().any(|t| t == name);

    println!(
        "RaSQL reproduction harness — scale {scale} — {} workers",
        bench::default_workers()
    );

    if want("fig1") {
        println!("{}", bench::fig1(scale).render());
    }
    if want("fig2") {
        println!("{}", bench::fig2());
    }
    if want("fig5") {
        println!("{}", bench::fig5(scale).render());
    }
    if want("fig6") {
        println!("{}", bench::fig6(scale).render());
    }
    if want("fig7") {
        println!("{}", bench::fig7(scale).render());
    }
    if want("fig8") {
        println!("{}", bench::fig8(scale).render());
    }
    if want("fig9") || want("table3") {
        println!("{}", bench::fig9(scale).render());
    }
    if want("fig10") {
        println!("{}", bench::fig10(scale).render());
    }
    if want("fig11") {
        println!("{}", bench::fig11(scale).render());
    }
    if want("fig12") {
        println!("{}", bench::fig12(scale).render());
    }
    if want("table1") {
        println!("{}", bench::table1(scale).render());
    }
    if want("table2") {
        println!("{}", bench::table2(scale).render());
    }
    if want("premcheck") {
        println!("{}", bench::premcheck());
    }
    // Not part of `all`: a beyond-the-paper artifact with its own gate.
    if targets.iter().any(|t| t == "bench-kernels") {
        let (table, json) = bench::fig13(scale);
        println!("{}", table.render());
        let path = std::path::Path::new("BENCH_kernels.json");
        if let Err(e) = std::fs::write(path, json.render()) {
            die(&format!("cannot write {}: {e}", path.display()));
        }
        println!("wrote {}", path.display());
        if let Err(e) = bench::kernels_meet_target(&json, 2.0) {
            die(&e);
        }
    }
    // Not part of `all`: a subsystem gate with its own artifact.
    if targets.iter().any(|t| t == "ivm") {
        let (table, json) = bench::ivm(scale);
        println!("{}", table.render());
        let path = std::path::Path::new("BENCH_ivm.json");
        if let Err(e) = std::fs::write(path, json.render()) {
            die(&format!("cannot write {}: {e}", path.display()));
        }
        println!("wrote {}", path.display());
        if let Err(e) = bench::ivm_meets_target(&json, 5.0) {
            die(&e);
        }
    }
    // Not part of `all`: a subsystem check, not a paper artifact.
    if targets.iter().any(|t| t == "lint") {
        let (report, clean) = bench::lint();
        println!("{report}");
        if !clean {
            die("lint found error-severity diagnostics");
        }
    }
    // Not part of `all`: a subsystem check, not a paper artifact.
    if targets.iter().any(|t| t == "lint-src") {
        let (report, clean) = bench::lint_src();
        println!("{report}");
        if !clean {
            die("lint-src found unsuppressed RL#### findings");
        }
    }
    // Not part of `all`: a subsystem check, not a paper artifact.
    if targets.iter().any(|t| t == "modelcheck") {
        let (report, ok) = bench::modelcheck();
        println!("{report}");
        if !ok {
            die("modelcheck failed (violation on HEAD, or a reverted variant went undetected)");
        }
    }
    // Not part of `all`: a subsystem check, not a paper artifact.
    if targets.iter().any(|t| t == "soak") {
        println!("{}", bench::soak(scale).render());
    }
    // Not part of `all`: a subsystem check, not a paper artifact.
    if targets.iter().any(|t| t == "serve-soak") {
        println!("{}", bench::serve_soak(scale).render());
    }
    // Not part of `all`: a subsystem check, not a paper artifact.
    if targets.iter().any(|t| t == "crash-soak") {
        println!("{}", bench::crash_soak(scale).render());
    }
    // Not part of `all`: a subsystem check, not a paper artifact.
    if targets.iter().any(|t| t == "faults") {
        println!(
            "{}",
            bench::fault_soak(scale, spec, retries, checkpoint_every).render()
        );
    }
    if want("traces") {
        let dir = std::path::Path::new("target/traces");
        if let Err(e) = std::fs::create_dir_all(dir) {
            die(&format!("cannot create {}: {e}", dir.display()));
        }
        for (name, trace) in bench::trace_suite(scale) {
            let path = dir.join(format!("{name}.json"));
            if let Err(e) = std::fs::write(&path, trace.to_json()) {
                die(&format!("cannot write {}: {e}", path.display()));
            }
            println!(
                "wrote {} ({} fixpoint rounds, {} stages)",
                path.display(),
                trace
                    .cliques
                    .iter()
                    .map(|c| c.iterations.len())
                    .sum::<usize>(),
                trace.stages.len()
            );
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
