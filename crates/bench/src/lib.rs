//! Shared benchmark harness for the paper's evaluation (§8, Appendices D-F).
//!
//! Every figure/table has a `fig*`/`table*` function that produces the same
//! rows/series the paper reports, at laptop scale. The `reproduce` binary
//! prints them; the Criterion benches wrap the same runners at reduced sizes.

use rasql_core::{library, EngineConfig, EngineError, JoinStrategy, JsonValue, RaSqlContext};
use rasql_datagen::{
    erdos_renyi, grid, real_graph_standin, rmat, tree_hierarchy, RealGraph, RmatConfig, TreeConfig,
};
use rasql_exec::{Cluster, ClusterConfig, FaultSpec, RecoveryKind};
use rasql_gap::Csr;
use rasql_myria::{Algorithm as MyriaAlgo, MyriaEngine};
use rasql_storage::Relation;
use rasql_vertex::{BspEngine, Cc, DatasetPregelEngine, Reach, Sssp, VertexGraph};
use std::time::{Duration, Instant};

/// A named benchmark workload: display name, input tables, SQL text.
type Workload<'a> = (&'a str, Vec<(&'a str, &'a Relation)>, String);

/// The graph programs of §8.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphQuery {
    /// Breadth-first reachability.
    Reach,
    /// Connected components (min-label propagation).
    Cc,
    /// Single-source shortest paths.
    Sssp,
}

impl GraphQuery {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            GraphQuery::Reach => "REACH",
            GraphQuery::Cc => "CC",
            GraphQuery::Sssp => "SSSP",
        }
    }

    /// Whether the workload needs edge weights.
    pub fn weighted(&self) -> bool {
        matches!(self, GraphQuery::Sssp)
    }

    fn rasql_sql(&self, source: i64) -> String {
        match self {
            GraphQuery::Reach => library::reach(source),
            GraphQuery::Cc => library::cc(),
            GraphQuery::Sssp => library::sssp(source),
        }
    }
}

/// The systems compared in Fig 8/9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// This paper's engine, fully optimized.
    RaSql,
    /// The BigDatalog stand-in (no stage combination / codegen — DESIGN.md).
    BigDatalog,
    /// GraphX analog (dataset-backed Pregel, 4 stages per superstep).
    GraphX,
    /// Giraph analog (tuned BSP).
    Giraph,
    /// Myria analog (asynchronous semi-naive).
    Myria,
    /// GAP-style serial baseline.
    GapSerial,
}

impl System {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            System::RaSql => "RaSQL",
            System::BigDatalog => "BigDatalog",
            System::GraphX => "GraphX",
            System::Giraph => "Giraph",
            System::Myria => "Myria",
            System::GapSerial => "GAP-serial",
        }
    }

    /// All distributed systems plus the serial baseline.
    pub fn all() -> [System; 6] {
        [
            System::RaSql,
            System::BigDatalog,
            System::GraphX,
            System::Giraph,
            System::Myria,
            System::GapSerial,
        ]
    }
}

/// Default worker count for the harness.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

/// Time a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed(), r)
}

/// Run a graph query on a system; returns (elapsed, result cardinality).
pub fn run_graph_query(
    system: System,
    query: GraphQuery,
    edges: &Relation,
    source: i64,
    workers: usize,
) -> (Duration, usize) {
    match system {
        System::RaSql => run_rasql(
            EngineConfig::rasql().with_workers(workers),
            query,
            edges,
            source,
        ),
        System::BigDatalog => run_rasql(
            EngineConfig::bigdatalog_like().with_workers(workers),
            query,
            edges,
            source,
        ),
        System::GraphX => {
            let g = VertexGraph::from_relation(edges);
            let cluster = Cluster::new(ClusterConfig::with_workers(workers));
            let engine = DatasetPregelEngine::new(&cluster);
            let (d, vals) = match query {
                GraphQuery::Reach => time(|| {
                    engine
                        .run(
                            &g,
                            Reach {
                                source: source as u32,
                            },
                        )
                        .0
                }),
                GraphQuery::Cc => time(|| engine.run(&g, Cc).0),
                GraphQuery::Sssp => time(|| {
                    engine
                        .run(
                            &g,
                            Sssp {
                                source: source as u32,
                            },
                        )
                        .0
                }),
            };
            (d, vals.iter().filter(|v| v.is_finite()).count())
        }
        System::Giraph => {
            let g = VertexGraph::from_relation(edges);
            let cluster = Cluster::new(ClusterConfig::with_workers(workers));
            let engine = BspEngine::new(&cluster);
            let (d, vals) = match query {
                GraphQuery::Reach => time(|| {
                    engine
                        .run(
                            &g,
                            Reach {
                                source: source as u32,
                            },
                        )
                        .0
                }),
                GraphQuery::Cc => time(|| engine.run(&g, Cc).0),
                GraphQuery::Sssp => time(|| {
                    engine
                        .run(
                            &g,
                            Sssp {
                                source: source as u32,
                            },
                        )
                        .0
                }),
            };
            (d, vals.iter().filter(|v| v.is_finite()).count())
        }
        System::Myria => {
            let engine = MyriaEngine::new(workers);
            let algo = match query {
                GraphQuery::Reach => MyriaAlgo::Reach {
                    source: source as u32,
                },
                GraphQuery::Cc => MyriaAlgo::Cc,
                GraphQuery::Sssp => MyriaAlgo::Sssp {
                    source: source as u32,
                },
            };
            let (d, (vals, _)) = time(|| engine.run(edges, algo));
            (d, vals.iter().filter(|v| v.is_finite()).count())
        }
        System::GapSerial => {
            let csr = Csr::from_relation(edges);
            match query {
                GraphQuery::Reach => {
                    let (d, r) = time(|| rasql_gap::bfs_reach(&csr, source as usize));
                    (d, r.len())
                }
                GraphQuery::Cc => {
                    let (d, r) = time(|| rasql_gap::cc_label_propagation(edges));
                    (d, r.len())
                }
                GraphQuery::Sssp => {
                    let (d, r) = time(|| rasql_gap::sssp_dijkstra(&csr, source as usize));
                    (d, r.len())
                }
            }
        }
    }
}

/// Run a RaSQL config on a graph query.
pub fn run_rasql(
    config: EngineConfig,
    query: GraphQuery,
    edges: &Relation,
    source: i64,
) -> (Duration, usize) {
    let ctx = RaSqlContext::with_config(config);
    ctx.register("edge", edges.clone()).unwrap();
    let (d, result) = time(|| ctx.query(&query.rasql_sql(source)).unwrap());
    (d, result.relation.len())
}

/// Run an arbitrary SQL statement under a config with pre-registered tables.
pub fn run_sql_with(
    config: EngineConfig,
    tables: &[(&str, &Relation)],
    sql: &str,
) -> (Duration, usize, rasql_core::QueryStats) {
    let ctx = RaSqlContext::with_config(config);
    for (name, rel) in tables {
        ctx.register(name, (*rel).clone()).unwrap();
    }
    let (d, result) = time(|| ctx.query(sql).unwrap());
    (d, result.relation.len(), result.stats)
}

/// Run an arbitrary SQL statement with tracing on; returns the elapsed time,
/// result cardinality, and the full [`rasql_core::QueryTrace`] (e.g. for the
/// `reproduce` binary's JSON artifacts).
pub fn run_traced(
    config: EngineConfig,
    tables: &[(&str, &Relation)],
    sql: &str,
) -> (Duration, usize, rasql_core::QueryTrace) {
    let ctx = RaSqlContext::with_config(config.with_tracing(true));
    for (name, rel) in tables {
        ctx.register(name, (*rel).clone()).unwrap();
    }
    let (d, result) = time(|| ctx.query(sql).unwrap());
    let trace = result.trace.expect("tracing enabled");
    (d, result.relation.len(), trace)
}

/// RMAT graph per the paper's §8 parameters.
pub fn rmat_graph(n: usize, weighted: bool, seed: u64) -> Relation {
    rmat(
        n,
        RmatConfig {
            weighted,
            ..Default::default()
        },
        seed,
    )
}

/// A formatted output row.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: vec![],
            title: title.to_string(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render aligned.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                } else {
                    widths.push(c.len());
                }
            }
        }
        let mut out = format!("\n=== {} ===\n", self.title);
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a duration in milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1000.0)
}

// ====================================================================
// Figure/table reproductions
// ====================================================================

/// Fig 1: stratified query vs RaSQL on CC and SSSP. The stratified SSSP on a
/// cyclic graph is capped (the paper's `360*` footnote).
pub fn fig1(scale: f64) -> Table {
    let n = ((8_000.0 * scale) as usize).max(200);
    let edges = rmat_graph(n, true, 42);
    let workers = default_workers();
    let mut t = Table::new(
        "Fig 1 — Stratified vs RaSQL (times in ms)",
        &["query", "time_ms", "iterations", "note"],
    );
    for (name, sql, cap) in [
        ("RaSQL-CC", library::cc(), 100_000u32),
        ("RaSQL-SSSP", library::sssp(1), 100_000),
        ("Stratified-CC", library::cc_stratified(), 100_000),
        // The stratified SSSP enumerates every path cost and diverges on
        // cycles; only a few "meaningful iterations" are run, like the
        // paper's `360*` footnote.
        ("Stratified-SSSP", library::sssp_stratified(1), 8),
    ] {
        let ctx = RaSqlContext::with_config(
            EngineConfig::rasql()
                .with_workers(workers)
                .with_max_iterations(cap),
        );
        ctx.register("edge", edges.clone()).unwrap();
        let t0 = Instant::now();
        match ctx.query(&sql) {
            Ok(result) => {
                t.row(vec![
                    name.into(),
                    ms(t0.elapsed()),
                    format!("{:?}", result.stats.iterations),
                    String::new(),
                ]);
            }
            Err(_) => {
                t.row(vec![
                    name.into(),
                    ms(t0.elapsed()),
                    format!("{cap}*"),
                    "* capped: does not terminate (cycles)".into(),
                ]);
            }
        }
    }
    t
}

/// Fig 2: the compiled clique + physical plan for the BOM Q2 query.
pub fn fig2() -> String {
    let ctx = RaSqlContext::in_memory();
    ctx.register(
        "assbl",
        Relation::try_new(
            rasql_storage::Schema::new(vec![
                ("Part", rasql_storage::DataType::Int),
                ("SPart", rasql_storage::DataType::Int),
            ]),
            vec![],
        )
        .unwrap(),
    )
    .unwrap();
    ctx.register(
        "basic",
        Relation::try_new(
            rasql_storage::Schema::new(vec![
                ("Part", rasql_storage::DataType::Int),
                ("Days", rasql_storage::DataType::Int),
            ]),
            vec![],
        )
        .unwrap(),
    )
    .unwrap();
    format!(
        "\n=== Fig 2 — RaSQL query plan for BOM Q2 ===\n{}",
        ctx.explain(&library::bom_delivery()).unwrap()
    )
}

/// Fig 5: effect of stage combination on CC/REACH/SSSP over RMAT sizes.
pub fn fig5(scale: f64) -> Table {
    let workers = default_workers();
    let sizes: Vec<usize> = [16_000, 32_000, 64_000, 128_000]
        .iter()
        .map(|&n| ((n as f64) * scale) as usize)
        .collect();
    let mut t = Table::new(
        "Fig 5 — Effect of Stage Combination (times in ms)",
        &["graph", "query", "with_comb", "without_comb", "speedup"],
    );
    for &n in &sizes {
        for q in [GraphQuery::Cc, GraphQuery::Reach, GraphQuery::Sssp] {
            let edges = rmat_graph(n, q.weighted(), 7);
            let (on, _) = run_rasql(
                EngineConfig::rasql()
                    .with_workers(workers)
                    .with_decomposed(false),
                q,
                &edges,
                1,
            );
            let (off, _) = run_rasql(
                EngineConfig::rasql()
                    .with_workers(workers)
                    .with_decomposed(false)
                    .with_stage_combination(false),
                q,
                &edges,
                1,
            );
            t.row(vec![
                format!("RMAT-{}k", n / 1000),
                q.name().into(),
                ms(on),
                ms(off),
                format!("{:.2}x", off.as_secs_f64() / on.as_secs_f64()),
            ]);
        }
    }
    t
}

/// Fig 6: decomposed plan evaluation + broadcast compression on TC.
pub fn fig6(scale: f64) -> Table {
    let workers = default_workers();
    let mut t = Table::new(
        "Fig 6 — Decomposition and Broadcast Compression, TC (times in ms)",
        &[
            "graph",
            "decomp+compress",
            "decomp_only",
            "no_opts",
            "bytes_compress",
            "bytes_raw",
        ],
    );
    let gscale = |v: usize| ((v as f64) * scale.sqrt()).max(8.0) as usize;
    let datasets: Vec<(String, Relation)> = vec![
        (format!("Grid{}", gscale(60)), grid(gscale(60), false, 1)),
        (format!("Grid{}", gscale(100)), grid(gscale(100), false, 1)),
        (
            format!("G{}-3", gscale(1500)),
            erdos_renyi(gscale(1500), 1e-3, 2),
        ),
        (
            format!("G{}-2", gscale(600)),
            erdos_renyi(gscale(600), 1e-2, 3),
        ),
    ];
    for (name, edges) in datasets {
        let run = |decomposed: bool, compress: bool| {
            run_sql_with(
                EngineConfig::rasql()
                    .with_workers(workers)
                    .with_decomposed(decomposed)
                    .with_broadcast_compression(compress),
                &[("edge", &edges)],
                &library::transitive_closure(),
            )
        };
        let (t_dc, _, s_dc) = run(true, true);
        let (t_d, _, s_d) = run(true, false);
        let (t_n, _, _) = run(false, false);
        t.row(vec![
            name,
            ms(t_dc),
            ms(t_d),
            ms(t_n),
            format!("{}", s_dc.metrics.broadcast_bytes),
            format!("{}", s_d.metrics.broadcast_bytes),
        ]);
    }
    t
}

/// Fig 7: effect of (fused) code generation on CC/REACH/SSSP.
pub fn fig7(scale: f64) -> Table {
    let workers = default_workers();
    let sizes: Vec<usize> = [16_000, 32_000, 64_000, 128_000]
        .iter()
        .map(|&n| ((n as f64) * scale) as usize)
        .collect();
    let mut t = Table::new(
        "Fig 7 — Effect of Code Generation (fused pipelines, times in ms)",
        &[
            "graph",
            "query",
            "with_codegen",
            "without_codegen",
            "speedup",
        ],
    );
    for &n in &sizes {
        for q in [GraphQuery::Cc, GraphQuery::Reach, GraphQuery::Sssp] {
            let edges = rmat_graph(n, q.weighted(), 7);
            let (on, _) = run_rasql(
                EngineConfig::rasql()
                    .with_workers(workers)
                    .with_decomposed(false),
                q,
                &edges,
                1,
            );
            let (off, _) = run_rasql(
                EngineConfig::rasql()
                    .with_workers(workers)
                    .with_decomposed(false)
                    .with_fused_codegen(false),
                q,
                &edges,
                1,
            );
            t.row(vec![
                format!("RMAT-{}k", n / 1000),
                q.name().into(),
                ms(on),
                ms(off),
                format!("{:.2}x", off.as_secs_f64() / on.as_secs_f64()),
            ]);
        }
    }
    t
}

/// Fig 8: system comparison over RMAT sizes (1k..128k at scale 1).
pub fn fig8(scale: f64) -> Table {
    let workers = default_workers();
    let sizes: Vec<usize> = [1, 2, 4, 8, 16, 32, 64, 128]
        .iter()
        .map(|&k| ((k * 1000) as f64 * scale) as usize)
        .collect();
    let mut t = Table::new(
        "Fig 8 — System comparison on RMAT graphs (times in ms)",
        &[
            "query",
            "vertices",
            "RaSQL",
            "BigDatalog",
            "GraphX",
            "Giraph",
            "Myria",
        ],
    );
    for q in [GraphQuery::Reach, GraphQuery::Cc, GraphQuery::Sssp] {
        for &n in &sizes {
            let edges = rmat_graph(n, q.weighted(), 11);
            let mut cells = vec![q.name().to_string(), format!("{n}")];
            for sys in [
                System::RaSql,
                System::BigDatalog,
                System::GraphX,
                System::Giraph,
                System::Myria,
            ] {
                let (d, _) = run_graph_query(sys, q, &edges, 1, workers);
                cells.push(ms(d));
            }
            t.row(cells);
        }
    }
    t
}

/// Fig 9 + Table 3: real-graph stand-ins across all systems incl. GAP-serial.
pub fn fig9(scale: f64) -> Table {
    let workers = default_workers();
    let mut t = Table::new(
        "Fig 9 / Table 3 — Real-graph stand-ins (times in ms; see DESIGN.md substitutions)",
        &[
            "graph",
            "query",
            "RaSQL",
            "BigDatalog",
            "GraphX",
            "Giraph",
            "Myria",
            "GAP-serial",
        ],
    );
    for which in [
        RealGraph::LiveJournal,
        RealGraph::Orkut,
        RealGraph::Arabic,
        RealGraph::Twitter,
    ] {
        for q in [GraphQuery::Reach, GraphQuery::Cc, GraphQuery::Sssp] {
            let edges = real_graph_standin(which, scale, q.weighted(), 23);
            let mut cells = vec![which.name().to_string(), q.name().to_string()];
            for sys in System::all() {
                let (d, _) = run_graph_query(sys, q, &edges, 1, workers);
                cells.push(ms(d));
            }
            t.row(cells);
        }
    }
    t
}

/// Fig 10: Delivery / Management / MLM vs GraphX-style and SQL-loop baselines.
pub fn fig10(scale: f64) -> Table {
    let workers = default_workers();
    let sizes: Vec<usize> = [40_000, 80_000, 160_000, 300_000]
        .iter()
        .map(|&n| ((n as f64) * scale) as usize)
        .collect();
    let mut t = Table::new(
        "Fig 10 — Complex analytics on tree hierarchies (times in ms)",
        &["query", "nodes", "RaSQL", "SQL-SN", "SQL-Naive"],
    );
    for &n in &sizes {
        let tree = tree_hierarchy(
            TreeConfig {
                target_nodes: n,
                ..Default::default()
            },
            5,
        );
        let workloads: Vec<Workload<'_>> = vec![
            (
                "Delivery",
                vec![("assbl", &tree.assbl), ("basic", &tree.basic)],
                library::bom_delivery(),
            ),
            (
                "Management",
                vec![("report", &tree.report)],
                library::management(),
            ),
            (
                "MLM",
                vec![("sales", &tree.sales), ("sponsor", &tree.sponsor)],
                library::mlm_bonus(),
            ),
        ];
        for (name, tables, sql) in workloads {
            let (t_rasql, _, _) =
                run_sql_with(EngineConfig::rasql().with_workers(workers), &tables, &sql);
            let (t_sn, _, _) = run_sql_with(
                EngineConfig::spark_sql_sn().with_workers(workers),
                &tables,
                &sql,
            );
            let (t_naive, _, _) = run_sql_with(
                EngineConfig::spark_sql_naive().with_workers(workers),
                &tables,
                &sql,
            );
            t.row(vec![
                name.into(),
                format!("{n}"),
                ms(t_rasql),
                ms(t_sn),
                ms(t_naive),
            ]);
        }
    }
    t
}

/// Fig 11 / Appendix D: shuffle-hash vs sort-merge join.
pub fn fig11(scale: f64) -> Table {
    let workers = default_workers();
    let sizes: Vec<usize> = [16_000, 32_000, 64_000, 128_000]
        .iter()
        .map(|&n| ((n as f64) * scale) as usize)
        .collect();
    let mut t = Table::new(
        "Fig 11 — Shuffle-Hash vs Sort-Merge join (times in ms)",
        &["graph", "query", "shuffle_hash", "sort_merge"],
    );
    for &n in &sizes {
        for q in [GraphQuery::Cc, GraphQuery::Reach, GraphQuery::Sssp] {
            let edges = rmat_graph(n, q.weighted(), 7);
            let (h, _) = run_rasql(
                EngineConfig::rasql()
                    .with_workers(workers)
                    .with_decomposed(false),
                q,
                &edges,
                1,
            );
            let (m, _) = run_rasql(
                EngineConfig::rasql()
                    .with_workers(workers)
                    .with_decomposed(false)
                    .with_join(JoinStrategy::SortMerge),
                q,
                &edges,
                1,
            );
            t.row(vec![
                format!("RMAT-{}k", n / 1000),
                q.name().into(),
                ms(h),
                ms(m),
            ]);
        }
    }
    t
}

/// Fig 12 / Appendix F: scaling over cluster size (TC and SG).
pub fn fig12(scale: f64) -> Table {
    let max_workers = default_workers();
    let worker_counts: Vec<usize> = [1usize, 2, 4, 8]
        .iter()
        .copied()
        .filter(|&w| w <= max_workers.max(2))
        .collect();
    let mut t = Table::new(
        "Fig 12 — Scaling out over cluster size (times in ms)",
        &["workload", "workers", "time_ms"],
    );
    let g = erdos_renyi(((4000.0 * scale) as usize).max(100), 1e-3, 2);
    let tree = tree_hierarchy(
        TreeConfig {
            target_nodes: ((3_000.0 * scale) as usize).max(100),
            ..Default::default()
        },
        11,
    );
    // rel(Parent, Child) for SG.
    let rel = Relation::try_new(
        rasql_storage::Schema::new(vec![
            ("Parent", rasql_storage::DataType::Int),
            ("Child", rasql_storage::DataType::Int),
        ]),
        tree.assbl.rows().to_vec(),
    )
    .unwrap();
    for &w in &worker_counts {
        let (d, _, _) = run_sql_with(
            EngineConfig::rasql().with_workers(w),
            &[("edge", &g)],
            &library::transitive_closure(),
        );
        t.row(vec!["TC-G4K".into(), format!("{w}"), ms(d)]);
    }
    for &w in &worker_counts {
        let (d, _, _) = run_sql_with(
            EngineConfig::rasql().with_workers(w),
            &[("rel", &rel)],
            &library::same_generation(),
        );
        t.row(vec!["SG-Tree".into(), format!("{w}"), ms(d)]);
    }
    t
}

/// Fig 13 (beyond the paper): monomorphized CSR fixpoint kernels vs the
/// generic interpreter on CC / REACH / SSSP.
///
/// Both legs run with the simulated per-stage dispatch latency zeroed so the
/// ratio measures the inner loops (CSR scan + dense vertex state vs hashed
/// `Row`/`Value` plumbing), not the dispatch model. The kernel label comes
/// from a traced run, which doubles as a selection sanity check; result
/// cardinalities must agree between the legs.
///
/// Returns the rendered table plus the `BENCH_kernels.json` artifact: one
/// record per (graph, query) with both times and the speedup.
pub fn fig13(scale: f64) -> (Table, JsonValue) {
    let workers = default_workers();
    let sizes: Vec<usize> = [4_096, 16_384, 65_536]
        .iter()
        .map(|&n| (((n as f64) * scale) as usize).max(4_096))
        .collect();
    let mut t = Table::new(
        "Fig 13 — Specialized fixpoint kernels (times in ms)",
        &[
            "graph",
            "query",
            "kernel",
            "specialized",
            "generic",
            "speedup",
        ],
    );
    let base_cfg = || {
        EngineConfig::rasql()
            .with_workers(workers)
            .with_stage_latency_us(0)
    };
    let mut records = Vec::new();
    for &n in &sizes {
        for q in [GraphQuery::Cc, GraphQuery::Reach, GraphQuery::Sssp] {
            let edges = rmat_graph(n, q.weighted(), 7);
            let (_, _, trace) = run_traced(base_cfg(), &[("edge", &edges)], &q.rasql_sql(1));
            let kernel = trace.cliques[0].kernel.clone();
            // Best-of-3 per leg to keep the asserted ratio noise-tolerant.
            let best = |cfg: &EngineConfig| {
                (0..3)
                    .map(|_| run_rasql(cfg.clone(), q, &edges, 1))
                    .min_by_key(|&(d, _)| d)
                    .unwrap()
            };
            let (spec_t, spec_rows) = best(&base_cfg());
            let (gen_t, gen_rows) = best(&base_cfg().with_specialized_kernels(false));
            assert_eq!(
                spec_rows,
                gen_rows,
                "kernel diverged from the interpreter on {} RMAT-{n}",
                q.name()
            );
            let speedup = gen_t.as_secs_f64() / spec_t.as_secs_f64();
            t.row(vec![
                format!("RMAT-{}k", n / 1000),
                q.name().into(),
                kernel.clone(),
                ms(spec_t),
                ms(gen_t),
                format!("{speedup:.2}x"),
            ]);
            records.push(JsonValue::Obj(vec![
                (
                    "graph".into(),
                    JsonValue::Str(format!("RMAT-{}k", n / 1000)),
                ),
                ("vertices".into(), JsonValue::Num(n as f64)),
                ("edges".into(), JsonValue::Num(edges.len() as f64)),
                ("query".into(), JsonValue::Str(q.name().into())),
                ("kernel".into(), JsonValue::Str(kernel)),
                (
                    "specialized_ms".into(),
                    JsonValue::Num(spec_t.as_secs_f64() * 1e3),
                ),
                (
                    "generic_ms".into(),
                    JsonValue::Num(gen_t.as_secs_f64() * 1e3),
                ),
                ("speedup".into(), JsonValue::Num(speedup)),
            ]));
        }
    }
    let json = JsonValue::Obj(vec![
        ("figure".into(), JsonValue::Str("fig13_kernels".into())),
        ("workers".into(), JsonValue::Num(workers as f64)),
        ("scale".into(), JsonValue::Num(scale)),
        ("rows".into(), JsonValue::Arr(records)),
    ]);
    (t, json)
}

/// Acceptance gate for [`fig13`]: the specialized kernels must be at least
/// `target`× faster than the interpreter on SSSP and CC for every R-MAT
/// graph of ≥ 4096 vertices in the artifact.
pub fn kernels_meet_target(json: &JsonValue, target: f64) -> Result<(), String> {
    let rows = json
        .get("rows")
        .and_then(JsonValue::as_arr)
        .ok_or("malformed kernel artifact: no rows")?;
    for r in rows {
        let query = r.get("query").and_then(JsonValue::as_str).unwrap_or("?");
        let vertices = r.get("vertices").and_then(JsonValue::as_u64).unwrap_or(0);
        let speedup = match r.get("speedup") {
            Some(JsonValue::Num(s)) => *s,
            _ => return Err(format!("malformed kernel artifact: no speedup for {query}")),
        };
        if (query == "SSSP" || query == "CC") && vertices >= 4_096 && speedup < target {
            return Err(format!(
                "kernel speedup below target on {query} ({vertices} vertices): \
                 {speedup:.2}x < {target}x"
            ));
        }
    }
    Ok(())
}

/// Table 1: parameters of the real-graph stand-ins.
pub fn table1(scale: f64) -> Table {
    let mut t = Table::new(
        "Table 1 — Real-world graph stand-ins (scaled; see DESIGN.md)",
        &["name", "vertices", "edges", "paper_vertices", "paper_edges"],
    );
    let paper = [
        (RealGraph::LiveJournal, "4,847,572", "68,993,773"),
        (RealGraph::Orkut, "3,072,441", "117,185,083"),
        (RealGraph::Arabic, "22,744,080", "639,999,458"),
        (RealGraph::Twitter, "41,652,231", "1,468,365,182"),
    ];
    for (which, pv, pe) in paper {
        let g = real_graph_standin(which, scale, false, 23);
        let mut vertices = 0usize;
        for r in g.rows() {
            vertices = vertices
                .max(r[0].as_int().unwrap() as usize + 1)
                .max(r[1].as_int().unwrap() as usize + 1);
        }
        t.row(vec![
            which.name().into(),
            format!("{vertices}"),
            format!("{}", g.len()),
            pv.into(),
            pe.into(),
        ]);
    }
    t
}

/// Table 2: synthetic graph parameters with TC/SG output cardinalities,
/// cross-checked between the SQL engine and the serial oracle.
pub fn table2(scale: f64) -> Table {
    let workers = default_workers();
    let mut t = Table::new(
        "Table 2 — Synthetic graphs with TC/SG output sizes (engine = oracle ✓)",
        &["name", "vertices", "edges", "TC", "SG"],
    );
    let s = scale.sqrt();
    let gs = |v: usize| ((v as f64) * s).max(4.0) as usize;
    // Tree for SG + TC.
    let tree = tree_hierarchy(
        TreeConfig {
            target_nodes: gs(2000),
            ..Default::default()
        },
        11,
    );
    let tree_edges = Relation::edges(
        &tree
            .assbl
            .rows()
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect::<Vec<_>>(),
    );
    let datasets: Vec<(String, Relation)> = vec![
        (format!("Tree{}", tree.height), tree_edges),
        (format!("Grid{}", gs(30)), grid(gs(30), false, 1)),
        (
            format!("G{}-3", gs(1500)),
            erdos_renyi(gs(1500), 1e-3 / s.max(0.05), 2),
        ),
    ];
    for (name, edges) in datasets {
        let mut vertices = 0usize;
        for r in edges.rows() {
            vertices = vertices
                .max(r[0].as_int().unwrap() as usize + 1)
                .max(r[1].as_int().unwrap() as usize + 1);
        }
        let tc_oracle = rasql_gap::transitive_closure_count(&edges);
        let sg_oracle = rasql_gap::same_generation_count(&edges);
        // Cross-check TC with the engine.
        let (_, tc_engine, _) = run_sql_with(
            EngineConfig::rasql().with_workers(workers),
            &[("edge", &edges)],
            &library::transitive_closure(),
        );
        assert_eq!(tc_engine, tc_oracle, "engine/oracle TC mismatch on {name}");
        t.row(vec![
            name,
            format!("{vertices}"),
            format!("{}", edges.len()),
            format!("{tc_oracle}"),
            format!("{sg_oracle}"),
        ]);
    }
    t
}

/// Appendix G: PreM auto-validation demo.
/// Run the trace suite: CC, SSSP and decomposed TC with tracing enabled,
/// returning `(name, trace)` pairs ready for JSON export (the `reproduce`
/// binary writes them under `target/traces/`).
pub fn trace_suite(scale: f64) -> Vec<(String, rasql_core::QueryTrace)> {
    let n = ((4_000.0 * scale) as usize).max(200);
    let plain = rmat_graph(n, false, 7);
    let weighted = rmat_graph(n, true, 7);
    let mut out = Vec::new();
    let (_, _, trace) = run_traced(
        EngineConfig::rasql().with_workers(default_workers()),
        &[("edge", &plain)],
        &library::cc(),
    );
    out.push(("cc".to_string(), trace));
    let (_, _, trace) = run_traced(
        EngineConfig::rasql().with_workers(default_workers()),
        &[("edge", &weighted)],
        &library::sssp(1),
    );
    out.push(("sssp".to_string(), trace));
    let (_, _, trace) = run_traced(
        EngineConfig::rasql()
            .with_workers(default_workers())
            .with_decomposed(true),
        &[("edge", &plain)],
        &library::transitive_closure(),
    );
    out.push(("tc_decomposed".to_string(), trace));
    out
}

/// Seeded fault-injection soak over the paper's example queries.
///
/// Each workload runs twice — fault-free, then under deterministic fault
/// injection (per-workload seeds derived from `spec.seed`, since every fresh
/// cluster numbers its stages from zero) — and the results must be
/// identical; any divergence panics, so the tier-1 gate can run this as a
/// hard check. A final leg runs transitive closure with a *zero* retry
/// budget and per-round checkpoints, scanning a fixed seed range for a
/// schedule whose failure lands inside the fixpoint, to exercise the
/// checkpoint/restore path end to end.
pub fn fault_soak(scale: f64, spec: FaultSpec, retries: u32, checkpoint_every: u32) -> Table {
    let n = ((2_000.0 * scale) as usize).max(100);
    let plain = rmat_graph(n, false, 7);
    let weighted = rmat_graph(n, true, 7);
    let tree = tree_hierarchy(
        TreeConfig {
            target_nodes: n,
            ..Default::default()
        },
        17,
    );
    let shares = ownership_graph(40);
    let workloads: Vec<Workload> = vec![
        ("TC", vec![("edge", &plain)], library::transitive_closure()),
        ("SSSP", vec![("edge", &weighted)], library::sssp(1)),
        ("CC", vec![("edge", &plain)], library::cc()),
        (
            "CompanyControl",
            vec![("shares", &shares)],
            library::company_control(),
        ),
        (
            "BoM",
            vec![("assbl", &tree.assbl), ("basic", &tree.basic)],
            library::bom_delivery(),
        ),
    ];

    let mut table = Table::new(
        &format!(
            "Fault-injection soak — {spec}, retries={retries}, checkpoint every \
             {checkpoint_every} rounds"
        ),
        &[
            "query",
            "rows",
            "failures",
            "retries",
            "blacklists",
            "checkpoints",
            "restores",
            "status",
        ],
    );
    let mut injected = 0u64;
    for (i, (name, tables, sql)) in workloads.into_iter().enumerate() {
        let (_, clean, _) = run_sql_with(
            EngineConfig::rasql().with_workers(default_workers()),
            &tables,
            &sql,
        );
        let faulted_cfg = EngineConfig::rasql()
            .with_workers(default_workers())
            .with_faults(Some(FaultSpec {
                seed: spec.seed + 101 * i as u64,
                ..spec
            }))
            .with_max_task_retries(retries)
            .with_checkpoint_interval(checkpoint_every);
        let ctx = RaSqlContext::with_config(faulted_cfg);
        for (tname, rel) in &tables {
            ctx.register(tname, (*rel).clone()).unwrap();
        }
        let result = ctx.query(&sql).unwrap();
        let m = &result.stats.metrics;
        assert_eq!(
            result.relation.len(),
            clean,
            "fault soak: {name} diverged from the fault-free run"
        );
        injected += m.task_failures;
        table.row(vec![
            name.to_string(),
            clean.to_string(),
            m.task_failures.to_string(),
            m.task_retries.to_string(),
            m.worker_blacklists.to_string(),
            m.checkpoints.to_string(),
            m.restores.to_string(),
            "ok".into(),
        ]);
    }
    assert!(
        injected > 0,
        "fault soak: the fault spec never fired — the soak proved nothing"
    );

    // Restore leg: zero retries force every injected kill to become a stage
    // loss; the fixpoint must come back from its last checkpoint.
    let chain: Vec<(i64, i64)> = (0..9).map(|i| (i, i + 1)).collect();
    let edges = Relation::edges(&chain);
    let clean = {
        let ctx = RaSqlContext::with_config(EngineConfig::rasql().with_workers(2));
        ctx.register("edge", edges.clone()).unwrap();
        ctx.query(&library::transitive_closure()).unwrap().relation
    };
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut restore_row = vec![
        "TC/restore".to_string(),
        clean.len().to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "no restore witnessed".into(),
    ];
    for seed in 0..50u64 {
        let cfg = EngineConfig::rasql()
            .with_workers(2)
            .with_decomposed(false)
            .with_faults(Some(FaultSpec {
                kill: 0.12,
                delay: 0.0,
                loss: 0.0,
                delay_us: 0,
                seed,
            }))
            .with_max_task_retries(0)
            .with_checkpoint_interval(1)
            .with_tracing(true);
        let ctx = RaSqlContext::with_config(cfg);
        ctx.register("edge", edges.clone()).unwrap();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.query(&library::transitive_closure())
        }));
        let Ok(Ok(result)) = outcome else { continue };
        let trace = result.trace.as_ref().expect("tracing enabled");
        let restored = trace
            .recovery
            .iter()
            .any(|e| e.kind == RecoveryKind::Restore && e.round >= 1);
        if restored {
            let rows = result.relation.len();
            assert_eq!(
                result.relation.sorted().rows(),
                clean.sorted().rows(),
                "fault soak: restored TC run diverged (seed {seed})"
            );
            let m = &result.stats.metrics;
            restore_row = vec![
                "TC/restore".to_string(),
                rows.to_string(),
                m.task_failures.to_string(),
                m.task_retries.to_string(),
                m.worker_blacklists.to_string(),
                m.checkpoints.to_string(),
                m.restores.to_string(),
                format!("ok (seed {seed}, resumed mid-fixpoint)"),
            ];
            break;
        }
    }
    std::panic::set_hook(prev_hook);
    table.row(restore_row);
    table
}

/// Count `rasql-spill-*` entries under the OS temp dir — the governance
/// soak's leaked-file detector (every spill directory is removed with its
/// query's governor, on success and on every error path).
fn spill_dirs() -> usize {
    std::fs::read_dir(std::env::temp_dir())
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.file_name().to_string_lossy().starts_with("rasql-spill-"))
                .count()
        })
        .unwrap_or(0)
}

/// Current thread count of this process (Linux); `None` elsewhere, which
/// disables the leak check rather than failing it.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Resource-governance soak (tier-1): concurrent queries on ONE context under
/// a tight memory budget with deterministic fault injection, plus one forced
/// `kill`. Asserts — hard, so the tier-1 gate fails on any violation — that
/// the surviving queries return exactly the ungoverned rows, that the budget
/// actually forced spilling, that the kill surfaces as a typed cancellation
/// (never a panic) with the context immediately serving the next query, and
/// that no spill temp directories or worker threads leak.
pub fn soak(scale: f64) -> Table {
    let n = ((2_000.0 * scale) as usize).max(100);
    let edges = rmat_graph(n, true, 7);
    let workloads: Vec<(&str, String)> = vec![
        ("TC", library::transitive_closure()),
        ("SSSP", library::sssp(1)),
        ("CC", library::cc()),
    ];

    // Ungoverned baselines for the differential check.
    let baseline: Vec<Relation> = {
        let ctx = RaSqlContext::with_config(EngineConfig::rasql().with_workers(default_workers()));
        ctx.register("edge", edges.clone()).unwrap();
        workloads
            .iter()
            .map(|(_, sql)| ctx.query(sql).unwrap().relation.sorted())
            .collect()
    };

    let spill_before = spill_dirs();
    let threads_before = thread_count();

    // Kernels and decomposed plans keep all state in per-partition slabs
    // (charged, but never paged); the interpreter's semi-naive driver is the
    // path that spills, so the governed leg pins it — the differential check
    // then also crosses evaluation paths.
    let cfg = EngineConfig::rasql()
        .with_workers(default_workers())
        .with_specialized_kernels(false)
        .with_decomposed(false)
        .with_memory_budget(256 * 1024)
        .with_max_concurrent_queries(2)
        .with_admission_queue(8)
        .with_faults(Some(FaultSpec {
            kill: 0.05,
            delay: 0.0,
            loss: 0.0,
            delay_us: 0,
            seed: 11,
        }))
        .with_max_task_retries(3)
        .with_checkpoint_interval(3);
    let ctx = RaSqlContext::with_config(cfg);
    ctx.register("edge", edges).unwrap();

    let mut table = Table::new(
        "Resource-governance soak — 256 KiB budget, 2-query admission, kill=0.05 faults",
        &[
            "query",
            "rows",
            "spilled B",
            "spill files",
            "peak B",
            "status",
        ],
    );

    // All workloads race on the shared context; the admission controller
    // holds the overflow in its queue.
    let results: Vec<(
        usize,
        Result<rasql_core::QueryResult, rasql_core::EngineError>,
    )> = std::thread::scope(|s| {
        let handles: Vec<_> = workloads
            .iter()
            .enumerate()
            .map(|(i, (_, sql))| {
                let ctx = &ctx;
                s.spawn(move || (i, ctx.query(sql)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut spilled_total = 0u64;
    for (i, outcome) in results {
        let (name, _) = workloads[i];
        let result = outcome.unwrap_or_else(|e| panic!("soak: governed {name} failed: {e}"));
        let rows = result.relation.len();
        assert_eq!(
            result.relation.sorted().rows(),
            baseline[i].rows(),
            "soak: governed {name} diverged from the ungoverned run"
        );
        let m = &result.stats.metrics;
        spilled_total += m.spilled_bytes;
        table.row(vec![
            name.to_string(),
            rows.to_string(),
            m.spilled_bytes.to_string(),
            m.spill_files.to_string(),
            m.peak_memory.to_string(),
            "ok".into(),
        ]);
    }
    assert!(
        spilled_total > 0,
        "soak: the memory budget never forced a spill — the soak proved nothing"
    );

    // Forced cancellation on the SAME context: the cancellation token is
    // polled at plan-node and fixpoint-round boundaries, so the kill lands
    // long before this long-diameter reachability converges.
    let side = ((400.0 * scale) as usize).max(40);
    ctx.register_or_replace("edge", grid(side, false, 42))
        .unwrap();
    let reach_sql = library::reach(0);
    let (killed, outcome) = std::thread::scope(|s| {
        let h = s.spawn(|| ctx.query(&reach_sql));
        let mut victim = None;
        for _ in 0..1_000_000 {
            if let Some(&q) = ctx.active_queries().first() {
                victim = Some(q);
                break;
            }
            std::thread::yield_now();
        }
        (victim.is_some_and(|q| ctx.kill(q)), h.join().unwrap())
    });
    assert!(
        killed,
        "soak: never observed the victim query in the active set"
    );
    match outcome {
        Err(rasql_core::EngineError::Exec(rasql_exec::ExecError::Cancelled { .. })) => {}
        Err(other) => panic!("soak: kill surfaced as the wrong error: {other}"),
        Ok(r) => panic!(
            "soak: query outran the kill ({} rows) — grow the grid",
            r.relation.len()
        ),
    }
    // The context must serve the very next query.
    ctx.query("SELECT count(*) FROM edge;")
        .expect("soak: context unusable after a kill");
    table.row(vec![
        "REACH/kill".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "ok (typed cancellation; context served the next query)".into(),
    ]);

    drop(ctx);
    assert!(
        spill_dirs() <= spill_before,
        "soak: leaked spill directories under the temp dir"
    );
    if let (Some(before), Some(after)) = (threads_before, thread_count()) {
        assert!(
            after <= before,
            "soak: leaked worker threads ({before} -> {after})"
        );
    }
    table
}

/// A small synthetic share-ownership relation for the company-control soak:
/// a layered DAG of `n` companies with integer percentages.
fn ownership_graph(n: i64) -> Relation {
    use rasql_storage::{DataType, Row, Schema, Value};
    let mut rows = Vec::new();
    for by in 0..n {
        for of in (by + 1)..(by + 4).min(n) {
            let pct = 20 + ((by * 13 + of * 7) % 41);
            rows.push(Row::new(vec![
                Value::Int(by),
                Value::Int(of),
                Value::Int(pct),
            ]));
        }
    }
    Relation::try_new(
        Schema::new(vec![
            ("By", DataType::Int),
            ("Of", DataType::Int),
            ("Percent", DataType::Int),
        ]),
        rows,
    )
    .unwrap()
}

/// The full 11-table example dataset every library query runs against, at
/// `scale`. The `edge` table is a layered weighted DAG so the stratified
/// SSSP variant and `count_paths` terminate alongside the PreM forms.
fn example_dataset(scale: f64) -> Vec<(&'static str, Relation)> {
    use rasql_storage::{DataType, Row, Schema, Value};
    let layers = ((60.0 * scale) as usize).max(6);
    let width = 8usize;
    let mut edge_rows = Vec::new();
    for l in 0..layers - 1 {
        for i in 0..width {
            let src = (l * width + i) as i64;
            // Offsets 0/2/4 mod 8 are distinct, so no duplicate edges.
            for k in 0..3usize {
                let dst = ((l + 1) * width + (i + 2 * k + l) % width) as i64;
                let cost = 1.0 + ((src * 7 + dst * 3) % 10) as f64 / 2.0;
                edge_rows.push(Row::new(vec![
                    Value::Int(src),
                    Value::Int(dst),
                    Value::Double(cost),
                ]));
            }
        }
    }
    let edge = Relation::try_new(
        Schema::new(vec![
            ("Src", DataType::Int),
            ("Dst", DataType::Int),
            ("Cost", DataType::Double),
        ]),
        edge_rows,
    )
    .unwrap();

    let tree = tree_hierarchy(
        TreeConfig {
            target_nodes: ((1_000.0 * scale) as usize).max(100),
            ..Default::default()
        },
        23,
    );
    // rel(Parent, Child) for Same Generation reuses the assembly hierarchy.
    let rel = Relation::try_new(
        Schema::new(vec![("Parent", DataType::Int), ("Child", DataType::Int)]),
        tree.assbl.rows().to_vec(),
    )
    .unwrap();

    let inter = Relation::try_new(
        Schema::new(vec![("S", DataType::Int), ("E", DataType::Int)]),
        (0..((200.0 * scale) as i64).max(24))
            .map(|i| {
                let s = i * 3 + (i % 7);
                Row::new(vec![Value::Int(s), Value::Int(s + 2 + (i * 5) % 9)])
            })
            .collect(),
    )
    .unwrap();

    // 16 people; the first three organize, everyone befriends the next four
    // in the ring — enough in-degree for the count()-threshold cascade.
    let person = |i: usize| format!("p{}", i % 16);
    let organizer = Relation::try_new(
        Schema::new(vec![("OrgName", DataType::Str)]),
        (0..3)
            .map(|i| Row::new(vec![Value::str(person(i))]))
            .collect(),
    )
    .unwrap();
    let friend = Relation::try_new(
        Schema::new(vec![("Pname", DataType::Str), ("Fname", DataType::Str)]),
        (0..16)
            .flat_map(|i| {
                (1..=4)
                    .map(move |d| Row::new(vec![Value::str(person(i)), Value::str(person(i + d))]))
            })
            .collect(),
    )
    .unwrap();

    vec![
        ("edge", edge),
        ("assbl", tree.assbl),
        ("basic", tree.basic),
        ("report", tree.report),
        ("sales", tree.sales),
        ("sponsor", tree.sponsor),
        ("shares", ownership_graph(30)),
        ("rel", rel),
        ("inter", inter),
        ("organizer", organizer),
        ("friend", friend),
    ]
}

/// Server soak (tier-1): an in-process `rasql-server` with several concurrent
/// TCP clients running the complete example-query library under a tight
/// memory budget and deterministic fault injection, plus one forced remote
/// `Kill`. Asserts — hard, so the tier-1 gate fails on any violation — that
/// every surviving query's rows are bit-identical to an ungoverned local run,
/// that the fault spec actually fired, that the kill surfaces to its client
/// as the stable `RA0602` cancellation code with the server immediately
/// serving the next request, and that shutdown drains cleanly within its
/// timeout leaking neither spill directories nor threads.
pub fn serve_soak(scale: f64) -> Table {
    use std::sync::Arc;

    const CLIENTS: usize = 4;
    let dataset = example_dataset(scale);
    let queries: Vec<(&str, String)> = vec![
        ("bom_delivery", library::bom_delivery()),
        (
            "bom_delivery_stratified",
            library::bom_delivery_stratified(),
        ),
        ("sssp", library::sssp(1)),
        ("sssp_stratified", library::sssp_stratified(1)),
        ("cc", library::cc()),
        ("cc_count", library::cc_count()),
        ("cc_stratified", library::cc_stratified()),
        ("count_paths", library::count_paths(1)),
        ("management", library::management()),
        ("mlm_bonus", library::mlm_bonus()),
        ("interval_coalesce", library::interval_coalesce()),
        ("party_attendance", library::party_attendance()),
        ("company_control", library::company_control()),
        ("same_generation", library::same_generation()),
        ("reach", library::reach(1)),
        ("apsp", library::apsp()),
        ("transitive_closure", library::transitive_closure()),
        ("widest_path", library::widest_path(1)),
        ("sssp_hops", library::sssp_hops(1)),
    ];

    // Ungoverned, fault-free local baseline: the bit-identical oracle.
    let baseline: Vec<Vec<rasql_api::Row>> = {
        let ctx = RaSqlContext::with_config(EngineConfig::rasql().with_workers(default_workers()));
        for (name, rel) in &dataset {
            ctx.register(name, rel.clone()).unwrap();
        }
        queries
            .iter()
            .map(|(name, sql)| {
                let results = ctx
                    .query_script(sql)
                    .unwrap_or_else(|e| panic!("serve-soak baseline {name} failed: {e}"));
                rasql_core::result_to_wire(results.last().unwrap()).sorted_rows()
            })
            .collect()
    };

    let spill_before = spill_dirs();
    let threads_before = thread_count();

    // The served context pins the interpreter (the spilling path) and runs
    // governed: tight budget, 2-query admission, seeded fault injection.
    let ctx = Arc::new(
        RaSqlContext::builder()
            .workers(default_workers())
            .specialized_kernels(false)
            .decomposed_plans(false)
            .memory_budget(256 * 1024)
            .max_concurrent_queries(2)
            .admission_queue(CLIENTS + 4)
            .faults(Some(FaultSpec {
                kill: 0.05,
                delay: 0.0,
                loss: 0.0,
                delay_us: 0,
                seed: 11,
            }))
            .max_task_retries(3)
            .checkpoint_interval(3)
            .build(),
    );
    for (name, rel) in &dataset {
        ctx.register(name, rel.clone()).unwrap();
    }
    let handle = rasql_server::serve_with(Arc::clone(&ctx), "127.0.0.1:0", Duration::from_secs(10))
        .expect("serve-soak: bind");
    let addr = handle.addr();

    let mut table = Table::new(
        &format!(
            "Server soak — {CLIENTS} clients over TCP, 256 KiB budget, \
             2-query admission, kill=0.05 faults"
        ),
        &["query", "rows", "client", "time_ms", "status"],
    );

    // Round-robin the library over the client pool; every client is its own
    // TCP connection (and therefore its own server session).
    let outcomes: Vec<(usize, usize, usize, Duration)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let queries = &queries;
                let baseline = &baseline;
                s.spawn(move || {
                    let mut client =
                        rasql_client::Client::connect(addr).expect("serve-soak: connect");
                    let mut ran = Vec::new();
                    for (i, (name, sql)) in queries.iter().enumerate() {
                        if i % CLIENTS != c {
                            continue;
                        }
                        let t = Instant::now();
                        let results = client
                            .query(sql)
                            .unwrap_or_else(|e| panic!("serve-soak: {name} failed: {e}"));
                        let elapsed = t.elapsed();
                        let got = results.last().expect("at least one result").sorted_rows();
                        assert_eq!(
                            got, baseline[i],
                            "serve-soak: remote {name} diverged from the local run"
                        );
                        ran.push((i, got.len(), c, elapsed));
                    }
                    client.close().expect("serve-soak: close");
                    ran
                })
            })
            .collect();
        let mut all: Vec<_> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("serve-soak: client thread panicked"))
            .collect();
        all.sort_by_key(|&(i, ..)| i);
        all
    });
    for (i, rows, c, elapsed) in outcomes {
        table.row(vec![
            queries[i].0.to_string(),
            rows.to_string(),
            format!("#{c}"),
            ms(elapsed),
            "ok".into(),
        ]);
    }
    assert!(
        ctx.metrics().task_failures > 0,
        "serve-soak: the fault spec never fired — the soak proved nothing"
    );

    // Kill leg, entirely over the wire: replace `edge` with a long-diameter
    // grid through one session, start REACH through another, then use
    // Status -> Kill from the first to cancel it mid-fixpoint.
    let side = ((400.0 * scale) as usize).max(40);
    let grid_edges = grid(side, false, 42);
    let cancellations_before = ctx.metrics().cancellations;
    let mut admin = rasql_client::Client::connect(addr).expect("serve-soak: admin connect");
    admin
        .register(
            "edge",
            grid_edges.schema().clone(),
            grid_edges.rows().to_vec(),
        )
        .expect("serve-soak: remote re-register");
    let reach_sql = library::reach(0);
    let (killed, outcome) = std::thread::scope(|s| {
        let victim = s.spawn(|| {
            let mut client =
                rasql_client::Client::connect(addr).expect("serve-soak: victim connect");
            client.query(&reach_sql)
        });
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut killed = false;
        while Instant::now() < deadline {
            let status = admin.status().expect("serve-soak: status");
            if let Some(&q) = status.active_queries.first() {
                killed = admin.kill(q).expect("serve-soak: kill");
                break;
            }
            std::thread::yield_now();
        }
        (killed, victim.join().expect("serve-soak: victim panicked"))
    });
    assert!(
        killed,
        "serve-soak: never observed the victim query in Status"
    );
    match outcome {
        Err(e) => assert_eq!(
            e.code,
            rasql_api::ErrorCode::Cancelled,
            "serve-soak: kill surfaced as the wrong error: {e}"
        ),
        Ok(r) => panic!(
            "serve-soak: query outran the kill ({} rows) — grow the grid",
            r.last().map_or(0, |q| q.rows.len())
        ),
    }
    assert!(
        ctx.metrics().cancellations > cancellations_before,
        "serve-soak: the kill never reached the engine's cancellation metric"
    );
    // The server must serve the very next request on an existing session.
    let count = admin
        .query("SELECT count(*) FROM edge")
        .expect("serve-soak: server unusable after a kill");
    assert_eq!(
        count[0].rows[0][0],
        rasql_api::Value::Int(grid_edges.len() as i64)
    );
    admin.close().expect("serve-soak: admin close");
    table.row(vec![
        "reach/kill".into(),
        "-".into(),
        "admin".into(),
        "-".into(),
        "ok (RA0602 at the client; server served the next request)".into(),
    ]);

    // Drain: every connection thread joined, within the 10 s timeout.
    let t = Instant::now();
    assert!(
        handle.shutdown(),
        "serve-soak: shutdown did not drain cleanly"
    );
    table.row(vec![
        "shutdown".into(),
        "-".into(),
        "-".into(),
        ms(t.elapsed()),
        "ok (clean drain)".into(),
    ]);

    drop(ctx);
    assert!(
        spill_dirs() <= spill_before,
        "serve-soak: leaked spill directories under the temp dir"
    );
    if let Some(before) = threads_before {
        // Joined threads are gone from /proc immediately, but give any
        // OS-level teardown still in flight a moment before calling it a leak.
        let deadline = Instant::now() + Duration::from_secs(2);
        while let Some(after) = thread_count() {
            if after <= before {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "serve-soak: leaked server threads ({before} -> {after})"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    table
}

/// The kill-at-every-crashpoint recovery soak behind `reproduce crash-soak`.
///
/// A counting pass runs a scripted DDL/DML/materialized-view workload on a
/// durable context with an armed-but-never-firing injector, enumerating every
/// write/fsync/rename boundary the workload visits (WAL appends *and* the
/// snapshot publications forced by `snapshot_every=3`). Then, for each
/// boundary K, a fresh data directory is driven through the same workload
/// with `CrashSpec::at(K)`, the context is dropped at the injected death,
/// and recovery must land — hard assertions, so the tier-1 gate fails on any
/// violation — on a bit-identical prefix-consistent state: the pre-statement
/// digest, the post-statement digest, or (for two-record statements only)
/// base tables ahead of the view registry, never the inverse and never
/// anything else. Every recovery must also leave zero stray snapshot temp
/// files, every crash site must be exercised at least once, and all three
/// recovery outcomes must actually occur.
pub fn crash_soak(scale: f64) -> Table {
    let n = ((600.0 * scale) as usize).max(32);
    let edges = rmat_graph(n, true, 13);

    // The scripted workload. Op 0 registers the base table; the rest drive
    // every WAL record shape: Insert, Replace+ViewPut (create and refresh),
    // Replace alone (delete), Drop+ViewDrop.
    enum Op {
        Register,
        Sql(String),
    }
    let ops: Vec<(&str, Op)> = vec![
        ("register", Op::Register),
        (
            "insert-1",
            Op::Sql("INSERT INTO edge VALUES (9001, 1, 1.0)".into()),
        ),
        (
            "create-mv",
            Op::Sql(format!("CREATE MATERIALIZED VIEW cs AS {}", library::cc())),
        ),
        (
            "insert-2",
            Op::Sql("INSERT INTO edge VALUES (9002, 2, 1.0)".into()),
        ),
        ("refresh-mv", Op::Sql("REFRESH MATERIALIZED VIEW cs".into())),
        (
            "delete",
            Op::Sql("DELETE FROM edge WHERE Src = 9001".into()),
        ),
        ("drop-mv", Op::Sql("DROP MATERIALIZED VIEW cs".into())),
    ];
    let apply = |ctx: &RaSqlContext, op: &Op| -> Result<(), EngineError> {
        match op {
            Op::Register => ctx.register("edge", edges.clone()).map(|_| ()),
            Op::Sql(sql) => ctx.query(sql).map(|_| ()),
        }
    };

    // Reference digests: an in-memory context after every acked-op prefix.
    // Digests are layout-sensitive only through the worker count, so the
    // references use the same count as the durable legs.
    let workers = default_workers();
    let refs: Vec<(String, (String, String))> = (0..=ops.len())
        .map(|a| {
            let ctx = RaSqlContext::builder().workers(workers).build();
            for (name, op) in &ops[..a] {
                apply(&ctx, op)
                    .unwrap_or_else(|e| panic!("crash-soak reference (after {name}): {e}"));
            }
            (ctx.state_digest(), ctx.state_digest_parts())
        })
        .collect();

    let scratch = |tag: &str| {
        let dir =
            std::env::temp_dir().join(format!("rasql-crash-soak-{tag}-p{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    let durable = |dir: &std::path::Path, spec: Option<rasql_storage::CrashSpec>| {
        RaSqlContext::builder()
            .workers(workers)
            .data_dir(dir.to_path_buf())
            .snapshot_every(3) // compact mid-workload so snapshot sites enumerate too
            .crash_spec(spec)
            .try_build()
    };

    // Counting pass: armed but never firing, so `crashpoint_hits` is the
    // exact number of boundaries the workload visits.
    let total = {
        let dir = scratch("count");
        let ctx = durable(
            &dir,
            Some(rasql_storage::CrashSpec {
                kill_at: None,
                prob: 0.0,
                seed: 0,
            }),
        )
        .unwrap_or_else(|e| panic!("crash-soak counting pass: {e}"));
        for (name, op) in &ops {
            apply(&ctx, op).unwrap_or_else(|e| panic!("crash-soak counting {name}: {e}"));
        }
        let hits = ctx.crashpoint_hits();
        drop(ctx);
        let _ = std::fs::remove_dir_all(&dir);
        hits
    };
    assert!(
        total >= 3 * ops.len() as u64,
        "crash-soak: counting pass saw only {total} crash sites"
    );

    #[derive(Default)]
    struct SiteTally {
        legs: u32,
        pre: u32,
        post: u32,
        partial: u32,
    }
    let mut tally: Vec<SiteTally> = rasql_storage::CRASH_SITES
        .iter()
        .map(|_| SiteTally::default())
        .collect();

    for k in 0..total {
        let dir = scratch(&format!("leg-{k}"));
        let ctx = durable(&dir, Some(rasql_storage::CrashSpec::at(k)))
            .unwrap_or_else(|e| panic!("crash-soak leg {k}: fresh-dir open failed: {e}"));
        let mut acked = 0usize;
        let mut site: Option<String> = None;
        for (name, op) in &ops {
            match apply(&ctx, op) {
                Ok(()) => acked += 1,
                Err(EngineError::Storage(rasql_storage::StorageError::InjectedCrash(s))) => {
                    site = Some(s);
                    break;
                }
                Err(e) => panic!("crash-soak leg {k}: {name} failed with a non-crash error: {e}"),
            }
        }
        let site =
            site.unwrap_or_else(|| panic!("crash-soak leg {k}: enumerated crashpoint never fired"));
        drop(ctx); // the simulated process death

        let recovered = durable(&dir, None)
            .unwrap_or_else(|e| panic!("crash-soak leg {k} ({site}): recovery failed: {e}"));
        assert!(
            rasql_storage::snapshot::stray_temp_files(&dir).is_empty(),
            "crash-soak leg {k} ({site}): recovery left snapshot temp files behind"
        );
        let got = recovered.state_digest();
        let outcome = if got == refs[acked].0 {
            "pre"
        } else if got == refs[acked + 1].0 {
            "post"
        } else {
            let (tables, views) = recovered.state_digest_parts();
            assert!(
                tables == refs[acked + 1].1 .0 && views == refs[acked].1 .1,
                "crash-soak leg {k} ({site}): recovered state after {acked} acked ops is \
                 neither the pre- nor post-statement digest nor the legal tables-ahead split"
            );
            "partial"
        };
        let si = rasql_storage::CRASH_SITES
            .iter()
            .position(|s| *s == site)
            .unwrap_or_else(|| panic!("crash-soak leg {k}: unknown crash site '{site}'"));
        tally[si].legs += 1;
        match outcome {
            "pre" => tally[si].pre += 1,
            "post" => tally[si].post += 1,
            _ => tally[si].partial += 1,
        }
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let mut table = Table::new(
        &format!(
            "Crash-recovery soak — {total} kill legs over {} ops, snapshot_every=3, {n} edges",
            ops.len()
        ),
        &["site", "legs", "pre", "post", "partial"],
    );
    let (mut pre, mut post, mut partial) = (0u32, 0u32, 0u32);
    for (site, t) in rasql_storage::CRASH_SITES.iter().zip(&tally) {
        assert!(
            t.legs > 0,
            "crash-soak: site {site} was never exercised ({total} legs)"
        );
        table.row(vec![
            (*site).to_string(),
            t.legs.to_string(),
            t.pre.to_string(),
            t.post.to_string(),
            t.partial.to_string(),
        ]);
        pre += t.pre;
        post += t.post;
        partial += t.partial;
    }
    table.row(vec![
        "total".to_string(),
        total.to_string(),
        pre.to_string(),
        post.to_string(),
        partial.to_string(),
    ]);
    // The enumeration must produce all three recovery shapes, or the soak
    // is not actually probing the interesting windows.
    assert!(pre > 0, "crash-soak: no leg recovered to the pre state");
    assert!(post > 0, "crash-soak: no leg recovered to the post state");
    assert!(
        partial > 0,
        "crash-soak: no leg landed in the tables-ahead window"
    );
    table
}

pub fn premcheck() -> String {
    let mut out = String::from("\n=== Appendix G — PreM auto-validation ===\n");
    let ctx = RaSqlContext::in_memory();
    ctx.register(
        "edge",
        rasql_datagen::rmat(
            200,
            RmatConfig {
                weighted: true,
                ..Default::default()
            },
            3,
        ),
    )
    .unwrap();
    let checker =
        rasql_core::PremChecker::new(&ctx).with_bounds(rasql_core::prem::PremCheckBounds {
            max_iterations: 30,
            max_rows: 100_000,
        });
    for (name, sql) in [("SSSP", library::sssp(1)), ("APSP", library::apsp())] {
        let outcome = checker.check(&sql).unwrap();
        out.push_str(&format!("{name}: {outcome:?}\n"));
    }
    out.push_str("\nPreM-checking rewrite of APSP (Query G2):\n");
    out.push_str(&rasql_core::prem::prem_checking_version(&library::apsp()).unwrap());
    out.push('\n');
    out
}

/// `reproduce lint` — run the compile-time verifier over every shipped
/// example query against empty base tables with the library's standard
/// schemas. Returns the rendered reports and whether every query came out
/// clean (no error-severity diagnostic, no refuted PreM obligation).
pub fn lint() -> (String, bool) {
    use rasql_storage::{DataType, Schema};
    let ctx = RaSqlContext::in_memory();
    let tables: [(&str, &[(&str, DataType)]); 11] = [
        (
            "assbl",
            &[("Part", DataType::Int), ("SPart", DataType::Int)],
        ),
        ("basic", &[("Part", DataType::Int), ("Days", DataType::Int)]),
        (
            "edge",
            &[
                ("Src", DataType::Int),
                ("Dst", DataType::Int),
                ("Cost", DataType::Double),
            ],
        ),
        ("report", &[("Emp", DataType::Int), ("Mgr", DataType::Int)]),
        ("sales", &[("M", DataType::Int), ("P", DataType::Double)]),
        ("sponsor", &[("M1", DataType::Int), ("M2", DataType::Int)]),
        ("inter", &[("S", DataType::Int), ("E", DataType::Int)]),
        ("organizer", &[("OrgName", DataType::Str)]),
        (
            "friend",
            &[("Pname", DataType::Str), ("Fname", DataType::Str)],
        ),
        (
            "shares",
            &[
                ("By", DataType::Int),
                ("Of", DataType::Int),
                ("Percent", DataType::Int),
            ],
        ),
        (
            "rel",
            &[("Parent", DataType::Int), ("Child", DataType::Int)],
        ),
    ];
    for (name, cols) in tables {
        ctx.register(name, Relation::empty(Schema::new(cols.to_vec())))
            .expect("register lint schema");
    }
    let queries: Vec<(&str, String)> = vec![
        ("bom_delivery", library::bom_delivery()),
        (
            "bom_delivery_stratified",
            library::bom_delivery_stratified(),
        ),
        ("sssp", library::sssp(1)),
        ("sssp_stratified", library::sssp_stratified(1)),
        ("cc", library::cc()),
        ("cc_count", library::cc_count()),
        ("cc_stratified", library::cc_stratified()),
        ("count_paths", library::count_paths(1)),
        ("management", library::management()),
        ("mlm_bonus", library::mlm_bonus()),
        ("interval_coalesce", library::interval_coalesce()),
        ("party_attendance", library::party_attendance()),
        ("company_control", library::company_control()),
        ("same_generation", library::same_generation()),
        ("reach", library::reach(1)),
        ("apsp", library::apsp()),
        ("transitive_closure", library::transitive_closure()),
        ("widest_path", library::widest_path(1)),
        ("sssp_hops", library::sssp_hops(1)),
    ];
    let mut out = String::from("=== Compile-time query verification (CHECK) ===\n");
    let mut all_clean = true;
    for (name, sql) in queries {
        out.push_str(&format!("\n--- {name} ---\n"));
        match ctx.lint_script(&sql) {
            Ok(reports) => {
                for r in &reports {
                    out.push_str(&r.rendered);
                    all_clean &= r.passed();
                }
            }
            Err(e) => {
                out.push_str(&format!("lint failed: {e}\n"));
                all_clean = false;
            }
        }
    }
    out.push_str(&format!(
        "\nlint: {}\n",
        if all_clean {
            "all queries clean"
        } else {
            "FAILED"
        }
    ));
    (out, all_clean)
}

/// `reproduce lint-src` — run the workspace source linter (`rasql-lint`)
/// over `crates/*/src`, enforcing the engine's concurrency and hot-path
/// disciplines with `RL####` diagnostics (the source-level sibling of the
/// `RA####` query codes). Returns the rendered report and whether the tree
/// is clean. The walk is rooted at the workspace this binary was built
/// from, so it works from any working directory.
pub fn lint_src() -> (String, bool) {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives at <root>/crates/bench");
    let mut out = String::from("=== Workspace source lint (RL####) ===\n");
    let report = match rasql_lint::lint_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            out.push_str(&format!("lint-src failed to walk the workspace: {e}\n"));
            return (out, false);
        }
    };
    for code in rasql_lint::LintCode::all() {
        out.push_str(&format!("  {}: {}\n", code.code(), code.summary()));
    }
    out.push('\n');
    for d in &report.diagnostics {
        // Re-read the file for the caret snippet; fall back to the compact
        // form if it has changed underneath us.
        let rendered = std::fs::read_to_string(root.join(&d.path))
            .map(|src| d.render(&src))
            .unwrap_or_else(|_| format!("{d}\n"));
        out.push_str(&rendered);
        out.push('\n');
    }
    out.push_str(&format!(
        "lint-src: {} files scanned, {} findings, {} suppressed by `// lint: allow` — {}\n",
        report.files_scanned,
        report.diagnostics.len(),
        report.suppressed,
        if report.is_clean() { "clean" } else { "FAILED" },
    ));
    (out, report.is_clean())
}

/// `reproduce modelcheck` — run the interleaving model checker
/// (`rasql_exec::modelcheck`) over the engine's shared-state protocols.
/// Every protocol is checked in two variants: the model of HEAD must
/// verify clean under exhaustive enumeration, and the mechanically
/// reverted model (the protocol with its fix undone) must produce a
/// counterexample — proving the checker can still see the bug the fix
/// removed. Returns the rendered report and whether every protocol met
/// both criteria.
pub fn modelcheck() -> (String, bool) {
    let mut out = String::from("=== Interleaving model check (exec::modelcheck) ===\n");
    let mut all_ok = true;
    for report in rasql_exec::modelcheck::protocols::check_all() {
        let ok = report.ok();
        all_ok &= ok;
        out.push_str(&format!(
            "\n--- {} --- {}\n",
            report.protocol,
            if ok { "ok" } else { "FAILED" }
        ));
        out.push_str(&format!(
            "  fixed:    {} schedules, {} steps — {}\n",
            report.fixed.stats.schedules,
            report.fixed.stats.steps,
            match &report.fixed.violation {
                None => "no violation (expected)".to_string(),
                Some(v) => format!("UNEXPECTED violation: {v}"),
            }
        ));
        out.push_str(&format!(
            "  reverted: {} schedules, {} steps — {}\n",
            report.reverted.stats.schedules,
            report.reverted.stats.steps,
            match &report.reverted.violation {
                None => "NO counterexample (the checker went blunt)".to_string(),
                Some(v) => format!("counterexample found (expected): {v}"),
            }
        ));
    }
    out.push_str(&format!(
        "\nmodelcheck: {}\n",
        if all_ok {
            "all protocols verified on HEAD; all reverted variants refuted"
        } else {
            "FAILED"
        }
    ));
    (out, all_ok)
}

/// Render one value as a SQL literal for an `INSERT` statement.
fn sql_literal(v: &rasql_storage::Value) -> String {
    use rasql_storage::Value;
    match v {
        Value::Int(i) => i.to_string(),
        Value::Double(d) => {
            if d.fract() == 0.0 {
                format!("{d:.1}")
            } else {
                format!("{d}")
            }
        }
        Value::Str(s) => format!("'{s}'"),
        Value::Bool(b) => b.to_string(),
        Value::Null => "NULL".to_string(),
    }
}

/// Render `rows` as one `INSERT INTO table VALUES ...` statement.
fn insert_statement(table: &str, rows: &[rasql_storage::Row]) -> String {
    let tuples: Vec<String> = rows
        .iter()
        .map(|r| {
            let vals: Vec<String> = r.values().iter().map(sql_literal).collect();
            format!("({})", vals.join(", "))
        })
        .collect();
    format!("INSERT INTO {table} VALUES {}", tuples.join(", "))
}

/// Incremental-view-maintenance soak + benchmark (tier-1 `reproduce ivm`).
///
/// Part A sweeps the whole example-query library: each single-statement
/// query becomes a materialized view over the example dataset with a
/// withheld suffix per base table; the withheld rows are INSERTed back and
/// the refresh — delta-seeded for verifier-certified shapes, full-recompute
/// fallback otherwise — must be **bit-identical** to recomputing the query
/// from scratch on the full dataset. Ineligible shapes must additionally
/// surface an `RA0301` maintenance finding through `CHECK`. One eligible
/// view is also refreshed under deterministic fault injection.
///
/// Part B times a small-delta SSSP refresh on an R-MAT graph against full
/// recompute (interpreter path on both legs, best-of-3) and returns the
/// `BENCH_ivm.json` artifact with the measured speedup, which
/// [`ivm_meets_target`] gates.
pub fn ivm(scale: f64) -> (Table, JsonValue) {
    let workers = default_workers();
    let mut t = Table::new(
        "IVM — incremental materialized-view refresh vs full recompute",
        &["query", "eligible", "refresh", "rows", "status"],
    );
    let mut query_records = Vec::new();

    // Part A: the library sweep.
    let dataset = example_dataset(scale.max(0.1));
    let queries: Vec<(&str, String)> = vec![
        ("bom_delivery", library::bom_delivery()),
        (
            "bom_delivery_stratified",
            library::bom_delivery_stratified(),
        ),
        ("sssp", library::sssp(1)),
        ("sssp_stratified", library::sssp_stratified(1)),
        ("cc", library::cc()),
        ("cc_count", library::cc_count()),
        ("cc_stratified", library::cc_stratified()),
        ("count_paths", library::count_paths(1)),
        ("management", library::management()),
        ("mlm_bonus", library::mlm_bonus()),
        ("interval_coalesce", library::interval_coalesce()),
        ("party_attendance", library::party_attendance()),
        ("company_control", library::company_control()),
        ("same_generation", library::same_generation()),
        ("reach", library::reach(1)),
        ("apsp", library::apsp()),
        ("transitive_closure", library::transitive_closure()),
        ("widest_path", library::widest_path(1)),
        ("sssp_hops", library::sssp_hops(1)),
    ];
    let held = |rel: &Relation| (rel.len() / 10).min(4);
    for (name, sql) in &queries {
        // A view is one defining query; multi-statement scripts are out of
        // scope by construction, and saying so beats silently dropping them.
        if sql.contains(';') {
            t.row(vec![
                (*name).into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "skipped (multi-statement script)".into(),
            ]);
            continue;
        }
        let oracle = {
            let ctx = RaSqlContext::with_config(EngineConfig::rasql().with_workers(workers));
            for (n, rel) in &dataset {
                ctx.register(n, rel.clone()).unwrap();
            }
            ctx.query(sql)
                .unwrap_or_else(|e| panic!("ivm oracle {name} failed: {e}"))
                .relation
                .sorted()
        };
        let ctx = RaSqlContext::with_config(EngineConfig::rasql().with_workers(workers));
        for (n, rel) in &dataset {
            let k = held(rel);
            let init =
                Relation::try_new(rel.schema().clone(), rel.rows()[..rel.len() - k].to_vec())
                    .unwrap();
            ctx.register(n, init).unwrap();
        }
        ctx.query(&format!("CREATE MATERIALIZED VIEW ivm_v AS {sql}"))
            .unwrap_or_else(|e| panic!("ivm create {name} failed: {e}"));
        let mv = ctx.mat_view("ivm_v").expect("view registered");
        for dep in &mv.deps {
            let Some((_, rel)) = dataset.iter().find(|(n, _)| *n == dep.table) else {
                continue;
            };
            let k = held(rel);
            if k > 0 {
                ctx.query(&insert_statement(&dep.table, &rel.rows()[rel.len() - k..]))
                    .unwrap();
            }
        }
        ctx.query("REFRESH MATERIALIZED VIEW ivm_v").unwrap();
        let refreshed = ctx.mat_view("ivm_v").unwrap();
        let expected_mode = if mv.eligible { "incremental" } else { "full" };
        assert_eq!(
            refreshed.last_refresh, expected_mode,
            "ivm: {name} took the wrong refresh path"
        );
        let got = ctx.query("SELECT * FROM ivm_v").unwrap().relation.sorted();
        assert_eq!(
            got.rows(),
            oracle.rows(),
            "ivm: {name} refresh diverged from full recompute"
        );
        // An unsound shape must say why, and CHECK must pin it to RA0301.
        if !mv.eligible {
            let reason = mv.ineligible_reason.clone().unwrap_or_default();
            assert!(
                !reason.is_empty(),
                "ivm: {name} ineligible without a reason"
            );
            if reason != "non-recursive defining query" {
                let report = ctx.check(sql).expect("CHECK");
                assert!(
                    report.rendered.contains("RA0301"),
                    "ivm: {name} ineligible without an RA0301 finding"
                );
            }
        }
        t.row(vec![
            (*name).into(),
            if mv.eligible { "yes" } else { "no" }.into(),
            expected_mode.into(),
            got.len().to_string(),
            "ok".into(),
        ]);
        query_records.push(JsonValue::Obj(vec![
            ("query".into(), JsonValue::Str((*name).into())),
            (
                "eligible".into(),
                JsonValue::Str(if mv.eligible { "yes" } else { "no" }.into()),
            ),
            ("refresh".into(), JsonValue::Str(expected_mode.into())),
            ("rows".into(), JsonValue::Num(got.len() as f64)),
        ]));
    }

    // Fault-injection leg: a delta-seeded refresh with injected kills,
    // delays, and losses must still land on the clean answer.
    {
        let edges = rmat_graph(((4_000.0 * scale) as usize).max(600), true, 7);
        let split = edges.len() - 24;
        let clean = {
            let ctx = RaSqlContext::with_config(EngineConfig::rasql().with_workers(workers));
            ctx.register("edge", edges.clone()).unwrap();
            ctx.query(&library::sssp(1)).unwrap().relation.sorted()
        };
        let ctx = RaSqlContext::with_config(
            EngineConfig::rasql()
                .with_workers(workers)
                .with_faults(Some(FaultSpec {
                    kill: 0.1,
                    delay: 0.08,
                    loss: 0.04,
                    delay_us: 40,
                    seed: 13,
                }))
                .with_max_task_retries(3)
                .with_checkpoint_interval(3),
        );
        let initial =
            Relation::try_new(edges.schema().clone(), edges.rows()[..split].to_vec()).unwrap();
        ctx.register("edge", initial).unwrap();
        ctx.query(&format!(
            "CREATE MATERIALIZED VIEW ivm_v AS {}",
            library::sssp(1)
        ))
        .unwrap();
        ctx.query(&insert_statement("edge", &edges.rows()[split..]))
            .unwrap();
        ctx.query("REFRESH MATERIALIZED VIEW ivm_v").unwrap();
        assert_eq!(ctx.mat_view("ivm_v").unwrap().last_refresh, "incremental");
        let got = ctx.query("SELECT * FROM ivm_v").unwrap().relation.sorted();
        assert_eq!(
            got.rows(),
            clean.rows(),
            "ivm: faulted incremental refresh diverged"
        );
        t.row(vec![
            "sssp/faulted".into(),
            "yes".into(),
            "incremental".into(),
            got.len().to_string(),
            "ok".into(),
        ]);
    }

    // Part B: small-delta refresh benchmark. Both legs run the interpreter
    // (kernels off) with the simulated dispatch latency zeroed, so the ratio
    // measures delta-seeded convergence against from-scratch convergence.
    let n = ((30_000.0 * scale) as usize).max(16_384);
    let edges = rmat_graph(n, true, 7);
    let delta = 32usize.min(edges.len() / 10).max(1);
    let split = edges.len() - delta;
    let cfg = || {
        EngineConfig::rasql()
            .with_workers(workers)
            .with_stage_latency_us(0)
            .with_specialized_kernels(false)
    };
    let sql = library::sssp(1);
    let mut full_best = Duration::MAX;
    let mut full_rows = Relation::edges(&[]);
    for _ in 0..3 {
        let ctx = RaSqlContext::with_config(cfg());
        ctx.register("edge", edges.clone()).unwrap();
        let t0 = Instant::now();
        let r = ctx.query(&sql).unwrap();
        let d = t0.elapsed();
        if d < full_best {
            full_best = d;
        }
        full_rows = r.relation.sorted();
    }
    let mut incr_best = Duration::MAX;
    let mut incr_rows = Relation::edges(&[]);
    for _ in 0..3 {
        let ctx = RaSqlContext::with_config(cfg());
        let initial =
            Relation::try_new(edges.schema().clone(), edges.rows()[..split].to_vec()).unwrap();
        ctx.register("edge", initial).unwrap();
        ctx.query(&format!("CREATE MATERIALIZED VIEW ivm_v AS {sql}"))
            .unwrap();
        ctx.query(&insert_statement("edge", &edges.rows()[split..]))
            .unwrap();
        let t0 = Instant::now();
        ctx.query("REFRESH MATERIALIZED VIEW ivm_v").unwrap();
        let d = t0.elapsed();
        if d < incr_best {
            incr_best = d;
        }
        assert_eq!(ctx.mat_view("ivm_v").unwrap().last_refresh, "incremental");
        incr_rows = ctx.query("SELECT * FROM ivm_v").unwrap().relation.sorted();
    }
    assert_eq!(
        incr_rows.rows(),
        full_rows.rows(),
        "ivm: benchmark refresh diverged from full recompute"
    );
    let speedup = full_best.as_secs_f64() / incr_best.as_secs_f64();
    t.row(vec![
        format!("sssp/RMAT-{n} +{delta} edges"),
        "yes".into(),
        "incremental".into(),
        incr_rows.len().to_string(),
        format!(
            "refresh {} vs recompute {} ({speedup:.1}x)",
            ms(incr_best),
            ms(full_best)
        ),
    ]);

    let json = JsonValue::Obj(vec![
        ("figure".into(), JsonValue::Str("ivm_refresh".into())),
        ("workers".into(), JsonValue::Num(workers as f64)),
        ("scale".into(), JsonValue::Num(scale)),
        ("vertices".into(), JsonValue::Num(n as f64)),
        ("edges".into(), JsonValue::Num(edges.len() as f64)),
        ("delta_edges".into(), JsonValue::Num(delta as f64)),
        (
            "incremental_ms".into(),
            JsonValue::Num(incr_best.as_secs_f64() * 1e3),
        ),
        (
            "full_ms".into(),
            JsonValue::Num(full_best.as_secs_f64() * 1e3),
        ),
        ("speedup".into(), JsonValue::Num(speedup)),
        ("queries".into(), JsonValue::Arr(query_records)),
    ]);
    (t, json)
}

/// Acceptance gate for [`ivm`]: the delta-seeded refresh must be at least
/// `target`× faster than full recompute on the small-delta R-MAT benchmark.
pub fn ivm_meets_target(json: &JsonValue, target: f64) -> Result<(), String> {
    let speedup = match json.get("speedup") {
        Some(JsonValue::Num(s)) => *s,
        _ => return Err("malformed ivm artifact: no speedup".into()),
    };
    if speedup < target {
        return Err(format!(
            "incremental refresh speedup below target: {speedup:.2}x < {target}x"
        ));
    }
    Ok(())
}
