//! Property tests: the two vertex-centric engines agree with each other and
//! with the serial oracles on random graphs, and the superstep counts match
//! (the paper's "both systems spend the same number of iterations" §8.1).

use proptest::prelude::*;
use rasql_exec::{Cluster, ClusterConfig};
use rasql_storage::Relation;
use rasql_vertex::{BspEngine, Cc, DatasetPregelEngine, Reach, VertexGraph};
use std::time::Duration;

fn quiet_cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        workers: 2,
        partition_aware: true,
        stage_latency: Duration::ZERO,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_random_graphs(
        edges in prop::collection::vec((0i64..25, 0i64..25), 1..80),
        source in 0u32..25,
    ) {
        let rel = Relation::edges(&edges);
        let g = VertexGraph::from_relation(&rel);
        prop_assume!((source as usize) < g.n);
        let c = quiet_cluster();

        let (a, sa) = BspEngine::new(&c).run(&g, Reach { source });
        let (b, sb) = DatasetPregelEngine::new(&c).run(&g, Reach { source });
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(sa, sb, "superstep counts must match (§8.1)");

        let (a, _) = BspEngine::new(&c).run(&g, Cc);
        let (b, _) = DatasetPregelEngine::new(&c).run(&g, Cc);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn bsp_reach_matches_serial_bfs(
        edges in prop::collection::vec((0i64..30, 0i64..30), 1..100),
    ) {
        let rel = Relation::edges(&edges);
        let g = VertexGraph::from_relation(&rel);
        let c = quiet_cluster();
        let (vals, _) = BspEngine::new(&c).run(&g, Reach { source: 0 });
        let csr = rasql_gap::Csr::from_relation(&rel);
        let reached: std::collections::HashSet<u32> =
            rasql_gap::bfs_reach(&csr, 0).into_iter().collect();
        for (v, val) in vals.iter().enumerate() {
            prop_assert_eq!(
                val.is_finite(),
                reached.contains(&(v as u32)),
                "vertex {}", v
            );
        }
    }

    #[test]
    fn myria_matches_bsp_on_cc(
        edges in prop::collection::vec((0i64..20, 0i64..20), 1..60),
    ) {
        let rel = Relation::edges(&edges);
        let g = VertexGraph::from_relation(&rel);
        let c = quiet_cluster();
        let (bsp, _) = BspEngine::new(&c).run(&g, Cc);
        let (myria, _) =
            rasql_myria::MyriaEngine::new(3).run(&rel, rasql_myria::Algorithm::Cc);
        prop_assert_eq!(bsp, myria);
    }
}
