#![warn(missing_docs)]

//! # rasql-vertex
//!
//! Vertex-centric graph processing baselines for the paper's §8 comparisons:
//!
//! - [`BspEngine`] — the **Giraph analog**: a tuned bulk-synchronous Pregel
//!   with per-worker vertex partitions and message combiners; one compute
//!   stage + one message exchange per superstep.
//! - [`DatasetPregelEngine`] — the **GraphX analog**: the same vertex
//!   programs executed over the [`rasql_exec::Dataset`] machinery with the
//!   4-stage-per-superstep structure the paper observed in GraphX (message
//!   reduce, vertex join/apply, vertex-edge join, message generation), which
//!   is precisely why GraphX trails RaSQL in Fig 8/9.
//!
//! Shipped programs: [`programs::Reach`], [`programs::Cc`], [`programs::Sssp`].

pub mod bsp;
pub mod dataset_pregel;
pub mod graph;
pub mod programs;

pub use bsp::BspEngine;
pub use dataset_pregel::DatasetPregelEngine;
pub use graph::VertexGraph;
pub use programs::{Cc, Reach, Sssp, VertexProgram};
