//! Graph representation shared by the vertex-centric engines.

use rasql_storage::Relation;

/// An adjacency-partitioned graph: vertex ids are dense `0..n`, each
/// partition owns the out-edges of its vertices.
#[derive(Debug, Clone)]
pub struct VertexGraph {
    /// Vertex count.
    pub n: usize,
    /// Per-vertex out-neighbors with weights (1.0 when unweighted).
    pub adj: Vec<Vec<(u32, f64)>>,
}

impl VertexGraph {
    /// Build from an edge relation `(src, dst[, cost])`.
    pub fn from_relation(rel: &Relation) -> Self {
        let weighted = rel.schema().arity() >= 3;
        let mut n = 0usize;
        for r in rel.rows() {
            n = n
                .max(r[0].as_int().unwrap_or(0) as usize + 1)
                .max(r[1].as_int().unwrap_or(0) as usize + 1);
        }
        let mut adj = vec![Vec::new(); n];
        for r in rel.rows() {
            let s = r[0].as_int().unwrap() as usize;
            let d = r[1].as_int().unwrap() as u32;
            let w = if weighted {
                r[2].as_f64().unwrap_or(1.0)
            } else {
                1.0
            };
            adj[s].push((d, w));
        }
        VertexGraph { n, adj }
    }

    /// Edge count.
    pub fn edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_from_relation() {
        let g = VertexGraph::from_relation(&Relation::edges(&[(0, 1), (1, 2), (0, 2)]));
        assert_eq!(g.n, 3);
        assert_eq!(g.edges(), 3);
        assert_eq!(g.adj[0].len(), 2);
    }

    #[test]
    fn weighted_edges_carry_costs() {
        let g = VertexGraph::from_relation(&Relation::weighted_edges(&[(0, 1, 2.5)]));
        assert_eq!(g.adj[0], vec![(1, 2.5)]);
    }
}
