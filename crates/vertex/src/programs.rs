//! Vertex programs: the Pregel-style algorithm definitions.

/// A bulk-synchronous vertex program over `f64` vertex values with
/// min-combining messages — the shape of all three benchmark algorithms
/// (REACH, CC, SSSP) and of Pregel's classic examples.
pub trait VertexProgram: Send + Sync {
    /// Initial value of a vertex (`f64::INFINITY` = inactive/unreached).
    fn initial(&self, vertex: u32) -> f64;

    /// Combine two messages destined for the same vertex.
    fn combine(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }

    /// Apply a combined message; `Some(new_value)` activates the vertex.
    fn apply(&self, current: f64, msg: f64) -> Option<f64> {
        if msg < current {
            Some(msg)
        } else {
            None
        }
    }

    /// The message an active vertex sends along an out-edge of weight `w`.
    fn scatter(&self, value: f64, w: f64) -> f64;
}

/// Reachability (BFS): reached vertices have value 0.
pub struct Reach {
    /// BFS source.
    pub source: u32,
}

impl VertexProgram for Reach {
    fn initial(&self, vertex: u32) -> f64 {
        if vertex == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn scatter(&self, _value: f64, _w: f64) -> f64 {
        0.0
    }
}

/// Connected components by min-label propagation (labels = vertex ids).
pub struct Cc;

impl VertexProgram for Cc {
    fn initial(&self, vertex: u32) -> f64 {
        vertex as f64
    }

    fn scatter(&self, value: f64, _w: f64) -> f64 {
        value
    }
}

/// Single-source shortest paths.
pub struct Sssp {
    /// Source vertex.
    pub source: u32,
}

impl VertexProgram for Sssp {
    fn initial(&self, vertex: u32) -> f64 {
        if vertex == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn scatter(&self, value: f64, w: f64) -> f64 {
        value + w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reach_semantics() {
        let p = Reach { source: 3 };
        assert_eq!(p.initial(3), 0.0);
        assert_eq!(p.initial(0), f64::INFINITY);
        assert_eq!(p.apply(f64::INFINITY, 0.0), Some(0.0));
        assert_eq!(p.apply(0.0, 0.0), None);
    }

    #[test]
    fn sssp_scatter_adds_weight() {
        let p = Sssp { source: 0 };
        assert_eq!(p.scatter(2.0, 3.5), 5.5);
        assert_eq!(p.combine(4.0, 3.0), 3.0);
    }
}
