//! The Giraph analog: a tuned bulk-synchronous Pregel engine.
//!
//! Vertices are partitioned across workers; each superstep is a single
//! compute+scatter stage with *message combining at the sender* (Giraph's
//! combiner optimization), followed by one exchange. The paper credits
//! Giraph's competitive performance to exactly this kind of tuning (§8.1).

use crate::graph::VertexGraph;
use crate::programs::VertexProgram;
use rasql_exec::{Cluster, Metrics, StageTask};
use rasql_storage::FxHashMap;
use std::sync::Arc;

/// One worker's superstep output: vertex updates plus per-destination-worker
/// outboxes.
type SuperstepResult = (Vec<(u32, f64)>, Vec<Vec<(u32, f64)>>);

/// The BSP engine.
pub struct BspEngine<'a> {
    cluster: &'a Cluster,
}

impl<'a> BspEngine<'a> {
    /// Create over a cluster.
    pub fn new(cluster: &'a Cluster) -> Self {
        BspEngine { cluster }
    }

    /// Run the program to convergence; returns final vertex values
    /// (`INFINITY` = never activated) and the superstep count.
    pub fn run<P: VertexProgram + 'static>(
        &self,
        graph: &VertexGraph,
        program: P,
    ) -> (Vec<f64>, u32) {
        let workers = self.cluster.workers();
        let n = graph.n;
        let graph = Arc::new(graph.clone());
        let program = Arc::new(program);

        // Partition p owns vertices v with v % workers == p.
        let mut values: Vec<f64> = (0..n as u32).map(|v| program.initial(v)).collect();
        // Initial messages: every initialized (non-INF) vertex scatters.
        let mut inbox: Vec<Vec<(u32, f64)>> = vec![Vec::new(); workers];
        for (v, &val) in values.iter().enumerate() {
            if val.is_finite() {
                for &(d, w) in &graph.adj[v] {
                    inbox[d as usize % workers].push((d, program.scatter(val, w)));
                }
            }
        }

        let mut supersteps = 0u32;
        while inbox.iter().any(|m| !m.is_empty()) {
            supersteps += 1;
            Metrics::add(&self.cluster.metrics.iterations, 1);
            let values_arc = Arc::new(values);
            let inbox_arc = Arc::new(inbox);
            let tasks: Vec<StageTask<SuperstepResult>> = (0..workers)
                .map(|p| {
                    let graph = Arc::clone(&graph);
                    let program = Arc::clone(&program);
                    let values = Arc::clone(&values_arc);
                    let inbox = Arc::clone(&inbox_arc);
                    StageTask::new(p, move |_w| {
                        // Combine incoming messages per vertex.
                        let mut combined: FxHashMap<u32, f64> = FxHashMap::default();
                        for &(v, m) in &inbox[p] {
                            combined
                                .entry(v)
                                .and_modify(|cur| *cur = program.combine(*cur, m))
                                .or_insert(m);
                        }
                        // Apply + scatter, combining outgoing messages at the
                        // sender (per destination vertex).
                        let mut updates: Vec<(u32, f64)> = Vec::new();
                        let mut out: Vec<FxHashMap<u32, f64>> =
                            vec![FxHashMap::default(); inbox.len()];
                        for (&v, &m) in &combined {
                            if let Some(new_val) = program.apply(values[v as usize], m) {
                                updates.push((v, new_val));
                                for &(d, w) in &graph.adj[v as usize] {
                                    let msg = program.scatter(new_val, w);
                                    out[d as usize % inbox.len()]
                                        .entry(d)
                                        .and_modify(|cur| *cur = program.combine(*cur, msg))
                                        .or_insert(msg);
                                }
                            }
                        }
                        (
                            updates,
                            out.into_iter().map(|m| m.into_iter().collect()).collect(),
                        )
                    })
                })
                .collect();
            let results = self.cluster.run_stage(tasks).expect("superstep stage");
            values = Arc::try_unwrap(values_arc)
                .map_err(|_| ())
                .expect("stage done");
            inbox = vec![Vec::new(); workers];
            let mut moved = 0u64;
            for (src, (updates, outs)) in results.into_iter().enumerate() {
                for (v, val) in updates {
                    values[v as usize] = val;
                }
                for (dst, msgs) in outs.into_iter().enumerate() {
                    if src != dst {
                        moved += msgs.len() as u64;
                    }
                    inbox[dst].extend(msgs);
                }
            }
            Metrics::add(&self.cluster.metrics.shuffle_rows, moved);
        }
        (values, supersteps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{Cc, Reach, Sssp};
    use rasql_exec::ClusterConfig;
    use rasql_storage::Relation;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::with_workers(2))
    }

    #[test]
    fn reach_on_chain() {
        let g = VertexGraph::from_relation(&Relation::edges(&[(0, 1), (1, 2), (3, 4)]));
        let c = cluster();
        let (vals, steps) = BspEngine::new(&c).run(&g, Reach { source: 0 });
        assert!(vals[0].is_finite() && vals[1].is_finite() && vals[2].is_finite());
        assert!(vals[3].is_infinite() && vals[4].is_infinite());
        assert_eq!(steps, 2);
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let rel = rasql_datagen::rmat(
            200,
            rasql_datagen::RmatConfig {
                weighted: true,
                ..Default::default()
            },
            3,
        );
        let g = VertexGraph::from_relation(&rel);
        let c = cluster();
        let (vals, _) = BspEngine::new(&c).run(&g, Sssp { source: 1 });
        let csr = rasql_gap::Csr::from_relation(&rel);
        let expected = rasql_gap::sssp_dijkstra(&csr, 1);
        for (v, &d) in vals.iter().enumerate() {
            match expected.get(&(v as i64)) {
                Some(&want) => assert!((d - want).abs() < 1e-9, "v={v} {d} vs {want}"),
                None => assert!(d.is_infinite(), "v={v} should be unreached"),
            }
        }
    }

    #[test]
    fn cc_labels_converge() {
        let g = VertexGraph::from_relation(&Relation::edges(&[
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 1),
            (3, 4),
            (4, 3),
        ]));
        let c = cluster();
        let (vals, _) = BspEngine::new(&c).run(&g, Cc);
        assert_eq!(vals[0], 0.0);
        assert_eq!(vals[1], 0.0);
        assert_eq!(vals[2], 0.0);
        assert_eq!(vals[3], 3.0);
        assert_eq!(vals[4], 3.0);
    }
}
