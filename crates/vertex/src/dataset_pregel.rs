//! The GraphX analog: vertex programs executed over partitioned datasets with
//! GraphX's per-superstep stage structure.
//!
//! The paper's §8.1 analysis: "each iteration is split into 4 ShuffleMap
//! stages in GraphX compared to 1 in RaSQL, though both systems spend the
//! same number of iterations", and the direct translation to RDDs loses
//! operator-combination opportunities. This engine reproduces that shape —
//! per superstep it runs four distinct stages with a message shuffle:
//!
//! 1. shuffle + reduce (combine) messages by destination;
//! 2. join messages with the vertex partition and apply updates;
//! 3. join activated vertices with the edge partition (scatter);
//! 4. materialize the new message dataset.

use crate::graph::VertexGraph;
use crate::programs::VertexProgram;
use rasql_exec::{Cluster, Metrics, StageTask};
use rasql_storage::FxHashMap;
use std::sync::Arc;

/// One partition's apply-stage output: updated vertices plus the activated
/// (re-scattering) set.
type ApplyResult = (Vec<(u32, f64)>, Vec<(u32, f64)>);

/// The dataset-backed Pregel engine.
pub struct DatasetPregelEngine<'a> {
    cluster: &'a Cluster,
}

impl<'a> DatasetPregelEngine<'a> {
    /// Create over a cluster.
    pub fn new(cluster: &'a Cluster) -> Self {
        DatasetPregelEngine { cluster }
    }

    /// Run the program to convergence; returns final vertex values and the
    /// superstep count.
    pub fn run<P: VertexProgram + 'static>(
        &self,
        graph: &VertexGraph,
        program: P,
    ) -> (Vec<f64>, u32) {
        let parts = self.cluster.workers();
        let program = Arc::new(program);
        let n = graph.n;

        // Edge partitions by src.
        let mut edge_parts: Vec<Vec<(u32, u32, f64)>> = vec![Vec::new(); parts];
        for (s, nbrs) in graph.adj.iter().enumerate() {
            for &(d, w) in nbrs {
                edge_parts[s % parts].push((s as u32, d, w));
            }
        }
        let edge_parts = Arc::new(edge_parts);

        // Vertex partitions by id.
        let mut vertex_parts: Vec<Vec<(u32, f64)>> = vec![Vec::new(); parts];
        for v in 0..n as u32 {
            vertex_parts[v as usize % parts].push((v, program.initial(v)));
        }

        // Initial messages from initialized vertices.
        let mut messages: Vec<Vec<(u32, f64)>> = vec![Vec::new(); parts];
        for v in 0..n {
            let val = program.initial(v as u32);
            if val.is_finite() {
                for &(d, w) in &graph.adj[v] {
                    messages[d as usize % parts].push((d, program.scatter(val, w)));
                }
            }
        }

        let mut supersteps = 0u32;
        while messages.iter().any(|m| !m.is_empty()) {
            supersteps += 1;
            Metrics::add(&self.cluster.metrics.iterations, 1);

            // Stage 1: reduce messages per destination (they are already
            // bucketed by destination partition; GraphX still runs this as its
            // own stage).
            let msgs = Arc::new(messages);
            let program1 = Arc::clone(&program);
            let reduced: Vec<Vec<(u32, f64)>> = self
                .cluster
                .run_stage(
                    (0..parts)
                        .map(|p| {
                            let msgs = Arc::clone(&msgs);
                            let program = Arc::clone(&program1);
                            StageTask::new(p, move |_w| {
                                let mut combined: FxHashMap<u32, f64> = FxHashMap::default();
                                for &(v, m) in &msgs[p] {
                                    combined
                                        .entry(v)
                                        .and_modify(|cur| *cur = program.combine(*cur, m))
                                        .or_insert(m);
                                }
                                combined.into_iter().collect::<Vec<_>>()
                            })
                        })
                        .collect(),
                )
                .expect("reduce stage");

            // Stage 2: join with vertices, apply; produce updated vertex
            // partitions and the activated set.
            let reduced = Arc::new(reduced);
            let verts = Arc::new(vertex_parts);
            let program2 = Arc::clone(&program);
            let applied: Vec<ApplyResult> = self
                .cluster
                .run_stage(
                    (0..parts)
                        .map(|p| {
                            let reduced = Arc::clone(&reduced);
                            let verts = Arc::clone(&verts);
                            let program = Arc::clone(&program2);
                            StageTask::new(p, move |_w| {
                                let inbox: FxHashMap<u32, f64> =
                                    reduced[p].iter().copied().collect();
                                let mut new_part = Vec::with_capacity(verts[p].len());
                                let mut activated = Vec::new();
                                for &(v, val) in &verts[p] {
                                    match inbox.get(&v).and_then(|&m| program.apply(val, m)) {
                                        Some(nv) => {
                                            new_part.push((v, nv));
                                            activated.push((v, nv));
                                        }
                                        None => new_part.push((v, val)),
                                    }
                                }
                                (new_part, activated)
                            })
                        })
                        .collect(),
                )
                .expect("apply stage");
            let mut new_vertex_parts = Vec::with_capacity(parts);
            let mut activated_parts = Vec::with_capacity(parts);
            for (vp, act) in applied {
                new_vertex_parts.push(vp);
                activated_parts.push(act);
            }
            vertex_parts = new_vertex_parts;

            // Stage 3: join activated vertices with edges (both partitioned by
            // vertex id) and scatter messages.
            let activated = Arc::new(activated_parts);
            let program3 = Arc::clone(&program);
            let edge_parts3 = Arc::clone(&edge_parts);
            let scattered: Vec<Vec<Vec<(u32, f64)>>> = self
                .cluster
                .run_stage(
                    (0..parts)
                        .map(|p| {
                            let activated = Arc::clone(&activated);
                            let edges = Arc::clone(&edge_parts3);
                            let program = Arc::clone(&program3);
                            StageTask::new(p, move |_w| {
                                let vals: FxHashMap<u32, f64> =
                                    activated[p].iter().copied().collect();
                                let mut out: Vec<Vec<(u32, f64)>> =
                                    vec![Vec::new(); activated.len()];
                                for &(s, d, w) in &edges[p] {
                                    if let Some(&val) = vals.get(&s) {
                                        out[d as usize % activated.len()]
                                            .push((d, program.scatter(val, w)));
                                    }
                                }
                                out
                            })
                        })
                        .collect(),
                )
                .expect("scatter stage");

            // Stage 4: materialize the next message dataset (the RDD union /
            // repartition GraphX performs), with shuffle accounting.
            let scattered = Arc::new(scattered);
            let gathered: Vec<Vec<(u32, f64)>> = self
                .cluster
                .run_stage(
                    (0..parts)
                        .map(|p| {
                            let scattered = Arc::clone(&scattered);
                            StageTask::new(p, move |_w| {
                                let mut inbox = Vec::new();
                                for src in scattered.iter() {
                                    inbox.extend(src[p].iter().copied());
                                }
                                inbox
                            })
                        })
                        .collect(),
                )
                .expect("gather stage");
            let mut moved = 0u64;
            for (src, outs) in scattered.iter().enumerate() {
                for (dst, msgs) in outs.iter().enumerate() {
                    if self.cluster.owner_of(src) != self.cluster.owner_of(dst) {
                        moved += msgs.len() as u64;
                    }
                }
            }
            Metrics::add(&self.cluster.metrics.shuffle_rows, moved);
            Metrics::add(&self.cluster.metrics.shuffle_bytes, moved * 16);
            messages = gathered;
        }

        // Collect final values.
        let mut out = vec![f64::INFINITY; n];
        for part in &vertex_parts {
            for &(v, val) in part {
                out[v as usize] = val;
            }
        }
        (out, supersteps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsp::BspEngine;
    use crate::programs::{Cc, Reach, Sssp};
    use rasql_exec::ClusterConfig;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::with_workers(2))
    }

    #[test]
    fn agrees_with_bsp_on_all_programs() {
        let rel = rasql_datagen::rmat(
            150,
            rasql_datagen::RmatConfig {
                weighted: true,
                ..Default::default()
            },
            13,
        );
        let g = VertexGraph::from_relation(&rel);
        let c1 = cluster();
        let c2 = cluster();
        let (a, _) = BspEngine::new(&c1).run(&g, Sssp { source: 1 });
        let (b, _) = DatasetPregelEngine::new(&c2).run(&g, Sssp { source: 1 });
        assert_eq!(a, b);
        let (a, _) = BspEngine::new(&c1).run(&g, Cc);
        let (b, _) = DatasetPregelEngine::new(&c2).run(&g, Cc);
        assert_eq!(a, b);
        let (a, _) = BspEngine::new(&c1).run(&g, Reach { source: 1 });
        let (b, _) = DatasetPregelEngine::new(&c2).run(&g, Reach { source: 1 });
        assert_eq!(a, b);
    }

    #[test]
    fn dataset_engine_uses_more_stages_per_superstep() {
        let rel = rasql_datagen::rmat(100, rasql_datagen::RmatConfig::default(), 2);
        let g = VertexGraph::from_relation(&rel);
        let c1 = cluster();
        let (_, steps1) = BspEngine::new(&c1).run(&g, Reach { source: 0 });
        let s1 = c1.metrics.snapshot().stages;
        let c2 = cluster();
        let (_, steps2) = DatasetPregelEngine::new(&c2).run(&g, Reach { source: 0 });
        let s2 = c2.metrics.snapshot().stages;
        assert_eq!(steps1, steps2, "same superstep count (paper §8.1)");
        assert!(
            s2 >= 3 * s1,
            "GraphX-like engine should run ~4x the stages: bsp={s1} dataset={s2}"
        );
    }
}
