#![warn(missing_docs)]

//! # rasql-server
//!
//! A long-running multi-client query daemon over a shared
//! [`RaSqlContext`]. One OS thread accepts TCP connections; each
//! connection gets its own thread and its own [`rasql_core::Session`]
//! (private views and prepared statements over the shared base catalog),
//! speaking the versioned framed protocol defined in [`rasql_api::wire`].
//!
//! The engine's resource governance applies unchanged on the server: every
//! query passes the shared admission controller, runs under its own memory
//! budget and deadline, and is killable by id from *any* connection
//! (`Kill`). On top of that the server adds connection-level enforcement —
//! a client that disconnects mid-query has the session's interrupt token
//! fired, which cancels everything that session had in flight (query tokens
//! are children of the session token), releasing admission slots and spill
//! directories.
//!
//! ## Lifecycle
//!
//! ```no_run
//! use rasql_core::RaSqlContext;
//! use std::sync::Arc;
//!
//! let ctx = Arc::new(RaSqlContext::builder().workers(4).build());
//! let handle = rasql_server::serve(ctx, "127.0.0.1:7432").unwrap();
//! println!("listening on {}", handle.addr());
//! // ... clients connect with rasql-client or the shell's \connect ...
//! let clean = handle.shutdown(); // drain in-flight queries, then exit
//! assert!(clean);
//! ```
//!
//! Shutdown is graceful: the acceptor stops taking connections, in-flight
//! statements finish streaming, idle connections close at their next poll.
//! Connections that outlive the drain timeout have their sessions
//! interrupted — queries unwind with `Cancelled` at the next stage or round
//! boundary and the join completes promptly.

mod conn;

use rasql_core::{RaSqlContext, Session};
use rasql_storage::sync::{LockRank, RankedMutex};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Server software identifier sent in the `Hello` handshake.
pub const SERVER_IDENT: &str = concat!("rasql-server/", env!("CARGO_PKG_VERSION"));

/// How long [`ServerHandle::shutdown`] lets in-flight work drain before
/// interrupting the remaining sessions.
pub const DEFAULT_DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a connection may sit idle between requests before the server
/// reaps it. A live client reconnects transparently (`rasql-client` redials
/// with backoff); a half-open socket whose peer died without a FIN would
/// otherwise hold its thread and session forever.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(300);

/// Shared server state: the engine, the shutdown latch, and the live
/// connection registry.
pub(crate) struct ServerState {
    pub(crate) ctx: Arc<RaSqlContext>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) connections: RankedMutex<Vec<ConnEntry>>,
    /// Idle keepalive: reap connections quiet for this long
    /// (`Duration::ZERO` disables reaping).
    pub(crate) idle_timeout: Duration,
}

pub(crate) struct ConnEntry {
    pub(crate) session: Arc<Session>,
    pub(crate) handle: thread::JoinHandle<()>,
}

impl ServerState {
    /// Connections whose threads are still running.
    pub(crate) fn live_sessions(&self) -> usize {
        self.connections
            .lock()
            .iter()
            .filter(|e| !e.handle.is_finished())
            .count()
    }
}

/// A running server: its bound address and the levers to stop it.
///
/// Dropping the handle shuts the server down (best effort, same drain
/// policy as [`ServerHandle::shutdown`]).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<thread::JoinHandle<()>>,
    drain_timeout: Duration,
}

/// Start a server on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port)
/// with the default drain timeout.
pub fn serve(ctx: Arc<RaSqlContext>, addr: &str) -> io::Result<ServerHandle> {
    serve_with(ctx, addr, DEFAULT_DRAIN_TIMEOUT)
}

/// Start a server with an explicit drain timeout (how long
/// [`ServerHandle::shutdown`] waits for in-flight queries before
/// interrupting their sessions).
pub fn serve_with(
    ctx: Arc<RaSqlContext>,
    addr: &str,
    drain_timeout: Duration,
) -> io::Result<ServerHandle> {
    serve_full(ctx, addr, drain_timeout, DEFAULT_IDLE_TIMEOUT)
}

/// Start a server with explicit drain and idle-keepalive timeouts. An idle
/// timeout of [`Duration::ZERO`] disables connection reaping.
pub fn serve_full(
    ctx: Arc<RaSqlContext>,
    addr: &str,
    drain_timeout: Duration,
    idle_timeout: Duration,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    // Non-blocking accept lets the loop poll the shutdown latch.
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServerState {
        ctx,
        shutdown: AtomicBool::new(false),
        connections: RankedMutex::new(LockRank::ServerConnections, Vec::new()),
        idle_timeout,
    });
    let accept_state = Arc::clone(&state);
    let accept = thread::Builder::new()
        .name("rasql-accept".into())
        .spawn(move || accept_loop(&listener, &accept_state))?;
    Ok(ServerHandle {
        addr,
        state,
        accept: Some(accept),
        drain_timeout,
    })
}

impl ServerHandle {
    /// The address the server is listening on (with the real port when
    /// bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether shutdown has been requested (by [`ServerHandle::shutdown`]
    /// or a client's `Shutdown` request).
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::Relaxed)
    }

    /// Open client sessions right now.
    pub fn live_sessions(&self) -> usize {
        self.state.live_sessions()
    }

    /// Block until something requests shutdown (a client `Shutdown` frame,
    /// or [`ServerHandle::shutdown`] from another thread — this method does
    /// not itself initiate one). The binary's main thread parks here.
    pub fn wait_for_shutdown(&self) {
        while !self.is_shutting_down() {
            // lint: allow(RL0004, shutdown latch has no waker; 50ms poll is the wire-level idle loop)
            thread::sleep(Duration::from_millis(50));
        }
    }

    /// Stop accepting, drain in-flight queries, and join every connection
    /// thread. Connections still busy when the drain timeout expires get
    /// their sessions interrupted (queries unwind with `Cancelled` at the
    /// next cooperative boundary). Returns `true` when everything drained
    /// within the timeout, `false` when interruption was needed.
    pub fn shutdown(mut self) -> bool {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> bool {
        self.state.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        } else {
            return true; // already shut down
        }
        let deadline = Instant::now() + self.drain_timeout;
        let mut clean = true;
        loop {
            let all_done = self
                .state
                .connections
                .lock()
                .iter()
                .all(|e| e.handle.is_finished());
            if all_done {
                break;
            }
            if Instant::now() >= deadline {
                clean = false;
                for entry in self.state.connections.lock().iter() {
                    entry.session.interrupt();
                }
                break;
            }
            // lint: allow(RL0004, drain loop polls joinable handles; no condvar on JoinHandle)
            thread::sleep(Duration::from_millis(5));
        }
        let entries: Vec<ConnEntry> = std::mem::take(&mut *self.state.connections.lock());
        for entry in entries {
            let _ = entry.handle.join();
        }
        // Every session is drained or interrupted; make sure the WAL tail
        // is on stable storage before the process exits (no-op in-memory,
        // best-effort — acknowledged records were already fsynced).
        let _ = self.state.ctx.flush_durability();
        clean
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    while !state.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let session = Arc::new(state.ctx.session());
                let conn_session = Arc::clone(&session);
                let conn_state = Arc::clone(state);
                let spawned = thread::Builder::new()
                    .name("rasql-conn".into())
                    .spawn(move || conn::run(stream, &conn_session, &conn_state));
                if let Ok(handle) = spawned {
                    // Reap finished connections so the registry doesn't grow
                    // without bound over a long uptime. Join (not detach):
                    // a finished closure's thread may still be mid-exit, and
                    // dropping its handle would leak that teardown past
                    // shutdown's final join.
                    let finished: Vec<ConnEntry> = {
                        let mut connections = state.connections.lock();
                        let (done, live) = std::mem::take(&mut *connections)
                            .into_iter()
                            .partition(|e| e.handle.is_finished());
                        *connections = live;
                        connections.push(ConnEntry { session, handle });
                        done
                    };
                    for entry in finished {
                        let _ = entry.handle.join();
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // lint: allow(RL0004, non-blocking accept; poll interval bounds shutdown latency)
                thread::sleep(Duration::from_millis(5));
            }
            // lint: allow(RL0004, transient accept errors back off at the same poll interval)
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}
