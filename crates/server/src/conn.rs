//! One connection: handshake, request dispatch, streaming execution, and
//! disconnect detection.

use crate::ServerState;
use rasql_api::wire::{read_request, send_response, Request, Response, PROTOCOL_VERSION};
use rasql_api::{ApiError, ErrorCode, ServerStatus};
use rasql_core::{error_to_wire, result_to_wire, Session};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How often an idle connection checks the shutdown latch, and how long a
/// mid-query peek waits for the client to vanish.
const POLL: Duration = Duration::from_millis(25);

/// Rows per `RowBatch` frame.
const BATCH_ROWS: usize = 512;

/// Run a connection to completion. Always leaves the session interrupted on
/// exit, so a dropped connection can never strand an in-flight query.
pub(crate) fn run(stream: TcpStream, session: &Arc<Session>, state: &Arc<ServerState>) {
    let _ = stream.set_nodelay(true);
    let mut conn = Conn {
        stream,
        session: Arc::clone(session),
        state: Arc::clone(state),
    };
    let _ = conn.serve();
    session.interrupt();
}

struct Conn {
    stream: TcpStream,
    session: Arc<Session>,
    state: Arc<ServerState>,
}

/// What a query worker reports back to the connection thread.
enum Event {
    Result(rasql_api::QueryResult),
    Done,
    Failed(ApiError),
}

/// What the worker should execute.
enum Job {
    Script(String),
    Prepared(String),
}

impl Conn {
    fn serve(&mut self) -> Result<(), ApiError> {
        self.stream
            .set_read_timeout(Some(POLL))
            .map_err(|e| ApiError::io(&e))?;
        if !self.handshake()? {
            return Ok(());
        }
        loop {
            let request = match self.read_polled() {
                Ok(r) => r,
                // A clean disconnect between requests is a normal goodbye.
                Err(e) if e.code == ErrorCode::ConnectionClosed => return Ok(()),
                Err(e) if e.code == ErrorCode::ServerShutdown => {
                    let _ = self.send(&Response::Error { error: e });
                    let _ = self.send(&Response::Goodbye);
                    return Ok(());
                }
                Err(e) => {
                    let _ = self.send(&Response::Error { error: e });
                    return Ok(());
                }
            };
            match request {
                Request::Query { sql } => self.run_streaming(&Job::Script(sql))?,
                Request::Execute { name } => {
                    if self.session.has_prepared(&name) {
                        self.run_streaming(&Job::Prepared(name))?;
                    } else {
                        self.send(&Response::Error {
                            error: ApiError::new(
                                ErrorCode::UnknownPrepared,
                                format!("no prepared statement '{name}' in this session"),
                            ),
                        })?;
                    }
                }
                Request::Prepare { name, sql } => {
                    let response = match self.session.prepare(&name, &sql) {
                        Ok(n) => Response::Prepared {
                            statements: n as u64,
                        },
                        Err(e) => Response::Error {
                            error: error_to_wire(&e),
                        },
                    };
                    self.send(&response)?;
                }
                Request::Register { name, schema, rows } => {
                    let response = match rasql_storage::Relation::try_new(schema, rows) {
                        Ok(rel) => {
                            let rows = rel.len() as u64;
                            match self.session.register(&name, rel) {
                                Ok(()) => Response::Registered { rows },
                                Err(e) => Response::Error {
                                    error: error_to_wire(&e),
                                },
                            }
                        }
                        Err(e) => Response::Error {
                            error: ApiError::new(ErrorCode::Storage, e.to_string()),
                        },
                    };
                    self.send(&response)?;
                }
                Request::Kill { query_id } => {
                    let found = self.state.ctx.kill(query_id);
                    self.send(&Response::Killed { found })?;
                }
                Request::Metrics => {
                    let text = self.state.ctx.metrics().prometheus_text();
                    self.send(&Response::MetricsText { text })?;
                }
                Request::Status => {
                    let status = self.status();
                    self.send(&Response::Status { status })?;
                }
                Request::ListViews => {
                    let views = self.state.ctx.view_infos();
                    self.send(&Response::Views { views })?;
                }
                Request::Durability => {
                    let status = self.state.ctx.durability_status();
                    self.send(&Response::Durability { status })?;
                }
                Request::Shutdown => {
                    self.state.shutdown.store(true, Ordering::Relaxed);
                    let _ = self.send(&Response::Goodbye);
                    return Ok(());
                }
                Request::Goodbye => {
                    let _ = self.send(&Response::Goodbye);
                    return Ok(());
                }
                Request::Hello { .. } => {
                    self.send(&Response::Error {
                        error: ApiError::protocol("unexpected Hello after handshake"),
                    })?;
                }
            }
        }
    }

    /// Version handshake. Returns `Ok(false)` when the connection should
    /// close without serving (mismatched version, wrong first frame).
    fn handshake(&mut self) -> Result<bool, ApiError> {
        match self.read_polled()? {
            Request::Hello { version } if version == PROTOCOL_VERSION => {
                self.send(&Response::Hello {
                    version: PROTOCOL_VERSION,
                    server: crate::SERVER_IDENT.to_string(),
                })?;
                Ok(true)
            }
            Request::Hello { version } => {
                let _ = self.send(&Response::Error {
                    error: ApiError::new(
                        ErrorCode::VersionMismatch,
                        format!(
                            "server speaks protocol v{PROTOCOL_VERSION}, client sent v{version}"
                        ),
                    ),
                });
                Ok(false)
            }
            _ => {
                let _ = self.send(&Response::Error {
                    error: ApiError::protocol("expected Hello as the first request"),
                });
                Ok(false)
            }
        }
    }

    /// Run a script (or prepared script) on a worker thread while this
    /// thread streams results out and watches the socket for a disconnect.
    /// A vanished client interrupts the session: every query token is a
    /// child of the session token, so the in-flight fixpoint unwinds with
    /// `Cancelled` at its next stage or round boundary.
    fn run_streaming(&mut self, job: &Job) -> Result<(), ApiError> {
        let (tx, rx) = mpsc::channel::<Event>();
        let session = Arc::clone(&self.session);
        let mut outcome: Result<(), ApiError> = Ok(());
        thread::scope(|scope| {
            scope.spawn(move || {
                let tx_results = tx.clone();
                let on_result = |r: rasql_core::QueryResult| {
                    drop(tx_results.send(Event::Result(result_to_wire(&r))));
                };
                let run = match job {
                    Job::Script(sql) => session.query_script_with(sql, on_result),
                    Job::Prepared(name) => session.execute_prepared_with(name, on_result),
                };
                let _ = tx.send(match run {
                    Ok(()) => Event::Done,
                    Err(e) => Event::Failed(error_to_wire(&e)),
                });
            });
            loop {
                match rx.recv_timeout(Duration::from_millis(10)) {
                    Ok(Event::Result(result)) => {
                        if let Err(e) = self.stream_result(&result) {
                            // Write failure: the client is gone. Cancel the
                            // rest of the script and report the dead socket.
                            self.session.interrupt();
                            outcome = Err(e);
                            break;
                        }
                    }
                    Ok(Event::Done) => {
                        outcome = self.send(&Response::QueryDone);
                        break;
                    }
                    Ok(Event::Failed(error)) => {
                        // Best effort: the socket may already be gone when
                        // the failure *is* the disconnect cancellation.
                        let _ = self.send(&Response::Error { error });
                        break;
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if self.client_gone() {
                            self.session.interrupt();
                            // Keep draining: the worker will surface
                            // `Cancelled` as Event::Failed shortly.
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        });
        outcome
    }

    /// Stream one statement's result: header, row batches, stats.
    fn stream_result(&mut self, result: &rasql_api::QueryResult) -> Result<(), ApiError> {
        self.send(&Response::ResultHeader {
            schema: result.schema.clone(),
        })?;
        for chunk in result.rows.chunks(BATCH_ROWS) {
            self.send(&Response::RowBatch {
                rows: chunk.to_vec(),
            })?;
        }
        self.send(&Response::StatementDone {
            stats: result.stats,
        })
    }

    /// Block for the next request, waking every [`POLL`] to check the
    /// shutdown latch and for peer EOF. The peek never consumes bytes, so a
    /// frame that arrives is then read whole with no timeout.
    ///
    /// Doubles as the keepalive reaper: a connection quiet past the idle
    /// timeout is closed. A TCP peer that died without a FIN (pulled cable,
    /// killed VM) looks exactly like a quiet client — peeking never returns
    /// EOF — so without this, dead connections hold their threads and
    /// sessions forever. Live-but-idle clients reconnect transparently.
    fn read_polled(&mut self) -> Result<Request, ApiError> {
        let idle_since = Instant::now();
        loop {
            if self.state.shutdown.load(Ordering::Relaxed) {
                return Err(ApiError::new(
                    ErrorCode::ServerShutdown,
                    "server is draining for shutdown",
                ));
            }
            if !self.state.idle_timeout.is_zero() && idle_since.elapsed() >= self.state.idle_timeout
            {
                self.state.ctx.note_connection_reaped();
                return Err(ApiError::new(
                    ErrorCode::ConnectionClosed,
                    "connection idle past the keepalive timeout; reaped",
                ));
            }
            let mut probe = [0u8; 1];
            match self.stream.peek(&mut probe) {
                Ok(0) => {
                    return Err(ApiError::new(
                        ErrorCode::ConnectionClosed,
                        "client disconnected",
                    ))
                }
                Ok(_) => {
                    self.stream
                        .set_read_timeout(None)
                        .map_err(|e| ApiError::io(&e))?;
                    let request = read_request(&mut self.stream);
                    self.stream
                        .set_read_timeout(Some(POLL))
                        .map_err(|e| ApiError::io(&e))?;
                    return request;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(e) => return Err(ApiError::io(&e)),
            }
        }
    }

    /// Whether the peer has closed its end (EOF on a non-consuming peek).
    fn client_gone(&mut self) -> bool {
        let mut probe = [0u8; 1];
        match self.stream.peek(&mut probe) {
            Ok(0) => true,
            Ok(_) => false,
            Err(e) => !matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
        }
    }

    fn send(&mut self, response: &Response) -> Result<(), ApiError> {
        send_response(&mut self.stream, response)
    }

    fn status(&self) -> ServerStatus {
        let ctx = &self.state.ctx;
        ServerStatus {
            active_queries: ctx.active_queries(),
            running: ctx.running_queries() as u64,
            waiting: ctx.waiting_queries() as u64,
            sessions: self.state.live_sessions() as u64,
            tables: ctx.table_names(),
        }
    }
}
