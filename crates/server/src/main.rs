//! `rasql-server` binary: stand up an engine, listen, serve until a client
//! sends `Shutdown`.

use rasql_core::RaSqlContext;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
rasql-server — RaSQL query daemon

USAGE:
    rasql-server [OPTIONS]

OPTIONS:
    --listen ADDR          Listen address (default 127.0.0.1:7432; port 0 picks one)
    --workers N            Simulated cluster workers (default: cores, clamped 2..8)
    --memory-budget BYTES  Per-query memory budget, 0 = unlimited (default 0)
    --timeout-ms MS        Per-query deadline, 0 = none (default 0)
    --max-concurrent N     Concurrent query cap, 0 = unlimited (default 0)
    --admission-queue N    Admission wait-queue capacity (default 16)
    --fault P              Inject task-kill faults with probability P (default off)
    --retries N            Retry budget for injected faults (default 3)
    --drain-ms MS          Shutdown drain timeout (default 10000)
    -h, --help             This help
";

struct Options {
    listen: String,
    workers: usize,
    memory_budget: u64,
    timeout_ms: u64,
    max_concurrent: usize,
    admission_queue: usize,
    fault: Option<f64>,
    retries: u32,
    drain_ms: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        listen: "127.0.0.1:7432".to_string(),
        workers: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(2)
            .clamp(2, 8),
        memory_budget: 0,
        timeout_ms: 0,
        max_concurrent: 0,
        admission_queue: 16,
        fault: None,
        retries: 3,
        drain_ms: 10_000,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match arg.as_str() {
            "--listen" => opts.listen = value("--listen")?,
            "--workers" => opts.workers = parse(&value("--workers")?)?,
            "--memory-budget" => opts.memory_budget = parse(&value("--memory-budget")?)?,
            "--timeout-ms" => opts.timeout_ms = parse(&value("--timeout-ms")?)?,
            "--max-concurrent" => opts.max_concurrent = parse(&value("--max-concurrent")?)?,
            "--admission-queue" => opts.admission_queue = parse(&value("--admission-queue")?)?,
            "--fault" => opts.fault = Some(parse(&value("--fault")?)?),
            "--retries" => opts.retries = parse(&value("--retries")?)?,
            "--drain-ms" => opts.drain_ms = parse(&value("--drain-ms")?)?,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid value '{s}'"))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut builder = RaSqlContext::builder()
        .workers(opts.workers)
        .memory_budget(opts.memory_budget)
        .query_timeout_ms(opts.timeout_ms)
        .max_concurrent_queries(opts.max_concurrent)
        .admission_queue(opts.admission_queue)
        .max_task_retries(opts.retries);
    if let Some(p) = opts.fault {
        builder = builder.faults(Some(rasql_exec::FaultSpec {
            kill: p,
            ..Default::default()
        }));
    }
    let ctx = Arc::new(builder.build());
    let handle =
        match rasql_server::serve_with(ctx, &opts.listen, Duration::from_millis(opts.drain_ms)) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error: cannot listen on {}: {e}", opts.listen);
                return ExitCode::FAILURE;
            }
        };
    eprintln!(
        "{} listening on {}",
        rasql_server::SERVER_IDENT,
        handle.addr()
    );
    handle.wait_for_shutdown();
    eprintln!("shutdown requested; draining");
    if handle.shutdown() {
        eprintln!("drained cleanly");
        ExitCode::SUCCESS
    } else {
        eprintln!("drain timeout hit; interrupted remaining sessions");
        ExitCode::FAILURE
    }
}
