//! `rasql-server` binary: stand up an engine, listen, serve until a client
//! sends `Shutdown`.

use rasql_core::RaSqlContext;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
rasql-server — RaSQL query daemon

USAGE:
    rasql-server [OPTIONS]

OPTIONS:
    --listen ADDR          Listen address (default 127.0.0.1:7432; port 0 picks one)
    --workers N            Simulated cluster workers (default: cores, clamped 2..8)
    --data-dir PATH        Durable data directory: recover catalog and views on
                           start, write-ahead log every commit (default in-memory)
    --snapshot-every N     Compact the WAL into a snapshot every N records
                           (default 256; 0 never compacts)
    --memory-budget BYTES  Per-query memory budget, 0 = unlimited (default 0)
    --timeout-ms MS        Per-query deadline, 0 = none (default 0)
    --max-concurrent N     Concurrent query cap, 0 = unlimited (default 0)
    --admission-queue N    Admission wait-queue capacity (default 16)
    --fault P              Inject task-kill faults with probability P (default off)
    --retries N            Retry budget for injected faults (default 3)
    --drain-ms MS          Shutdown drain timeout (default 10000)
    --idle-timeout-ms MS   Reap connections idle this long, 0 = never (default 300000)
    -h, --help             This help
";

struct Options {
    listen: String,
    workers: usize,
    data_dir: Option<String>,
    snapshot_every: u64,
    memory_budget: u64,
    timeout_ms: u64,
    max_concurrent: usize,
    admission_queue: usize,
    fault: Option<f64>,
    retries: u32,
    drain_ms: u64,
    idle_timeout_ms: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        listen: "127.0.0.1:7432".to_string(),
        workers: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(2)
            .clamp(2, 8),
        data_dir: None,
        snapshot_every: 256,
        memory_budget: 0,
        timeout_ms: 0,
        max_concurrent: 0,
        admission_queue: 16,
        fault: None,
        retries: 3,
        drain_ms: 10_000,
        idle_timeout_ms: 300_000,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match arg.as_str() {
            "--listen" => opts.listen = value("--listen")?,
            "--workers" => opts.workers = parse(&value("--workers")?)?,
            "--data-dir" => opts.data_dir = Some(value("--data-dir")?),
            "--snapshot-every" => opts.snapshot_every = parse(&value("--snapshot-every")?)?,
            "--idle-timeout-ms" => opts.idle_timeout_ms = parse(&value("--idle-timeout-ms")?)?,
            "--memory-budget" => opts.memory_budget = parse(&value("--memory-budget")?)?,
            "--timeout-ms" => opts.timeout_ms = parse(&value("--timeout-ms")?)?,
            "--max-concurrent" => opts.max_concurrent = parse(&value("--max-concurrent")?)?,
            "--admission-queue" => opts.admission_queue = parse(&value("--admission-queue")?)?,
            "--fault" => opts.fault = Some(parse(&value("--fault")?)?),
            "--retries" => opts.retries = parse(&value("--retries")?)?,
            "--drain-ms" => opts.drain_ms = parse(&value("--drain-ms")?)?,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid value '{s}'"))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut builder = RaSqlContext::builder()
        .workers(opts.workers)
        .memory_budget(opts.memory_budget)
        .query_timeout_ms(opts.timeout_ms)
        .max_concurrent_queries(opts.max_concurrent)
        .admission_queue(opts.admission_queue)
        .max_task_retries(opts.retries);
    if let Some(p) = opts.fault {
        builder = builder.faults(Some(rasql_exec::FaultSpec {
            kill: p,
            ..Default::default()
        }));
    }
    if let Some(dir) = &opts.data_dir {
        builder = builder.data_dir(dir).snapshot_every(opts.snapshot_every);
    }
    // Recovery replays the snapshot and WAL before the listener opens, so
    // a recovered server never serves a partially-restored catalog.
    let ctx = match builder.try_build() {
        Ok(ctx) => Arc::new(ctx),
        Err(e) => {
            eprintln!("error: recovery from data dir failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(status) = ctx.durability_status() {
        eprintln!(
            "recovered from {} ({} tables, {} views; wal: {} records / {} B, snapshots: {})",
            status.data_dir,
            ctx.table_names().len(),
            ctx.view_infos().len(),
            status.wal_records,
            status.wal_bytes,
            status.snapshots,
        );
    }
    let handle = match rasql_server::serve_full(
        ctx,
        &opts.listen,
        Duration::from_millis(opts.drain_ms),
        Duration::from_millis(opts.idle_timeout_ms),
    ) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: cannot listen on {}: {e}", opts.listen);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "{} listening on {}",
        rasql_server::SERVER_IDENT,
        handle.addr()
    );
    handle.wait_for_shutdown();
    eprintln!("shutdown requested; draining");
    if handle.shutdown() {
        eprintln!("drained cleanly");
        ExitCode::SUCCESS
    } else {
        eprintln!("drain timeout hit; interrupted remaining sessions");
        ExitCode::FAILURE
    }
}
