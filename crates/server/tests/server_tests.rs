//! Integration tests: real TCP connections against an in-process server.

use rasql_api::wire::{read_response, send_request, Request, Response, PROTOCOL_VERSION};
use rasql_api::ErrorCode;
use rasql_client::Client;
use rasql_core::RaSqlContext;
use rasql_storage::{Relation, Value};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn chain_edges(n: i64) -> Vec<(i64, i64)> {
    (0..n).map(|i| (i, i + 1)).collect()
}

fn start_server(workers: usize) -> (rasql_server::ServerHandle, Arc<RaSqlContext>) {
    let ctx = Arc::new(RaSqlContext::builder().workers(workers).build());
    ctx.register("edge", Relation::edges(&chain_edges(64)))
        .unwrap();
    let handle =
        rasql_server::serve_with(Arc::clone(&ctx), "127.0.0.1:0", Duration::from_secs(5)).unwrap();
    (handle, ctx)
}

fn spill_dirs() -> usize {
    std::fs::read_dir(std::env::temp_dir())
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.file_name().to_string_lossy().starts_with("rasql-spill-"))
                .count()
        })
        .unwrap_or(0)
}

/// Current thread count of this process (Linux); `None` elsewhere, which
/// disables the leak check rather than failing it.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn query_round_trip_matches_local() {
    let (handle, ctx) = start_server(2);
    let tc = "WITH recursive tc (Src, Dst) AS \
                (SELECT Src, Dst FROM edge) UNION \
                (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src) \
              SELECT Src, Dst FROM tc";

    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(client.server().starts_with("rasql-server/"));
    let remote = client.query(tc).unwrap();
    let local = ctx.query(tc).unwrap();
    assert_eq!(remote.len(), 1);
    assert_eq!(
        remote[0].sorted_rows(),
        rasql_core::result_to_wire(&local).sorted_rows(),
        "remote rows must be bit-identical to local execution"
    );
    assert!(remote[0].stats.iterations > 0);
    client.close().unwrap();
    assert!(handle.shutdown(), "drain should be clean");
}

#[test]
fn streaming_batches_reassemble_large_results() {
    let (handle, _ctx) = start_server(2);
    let mut client = Client::connect(handle.addr()).unwrap();
    // 65 nodes -> 65*64/2 + 65 = 2145 closure rows: several 512-row batches.
    let tc = "WITH recursive tc (Src, Dst) AS \
                (SELECT Src, Dst FROM edge) UNION \
                (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src) \
              SELECT Src, Dst FROM tc";
    let results = client.query(tc).unwrap();
    assert_eq!(results[0].rows.len(), 64 * 65 / 2);
    client.close().unwrap();
}

#[test]
fn session_views_and_prepared_statements_are_per_connection() {
    let (handle, _ctx) = start_server(2);
    let mut a = Client::connect(handle.addr()).unwrap();
    let mut b = Client::connect(handle.addr()).unwrap();

    a.query("CREATE VIEW firsthop AS SELECT Src, Dst FROM edge WHERE Src = 0")
        .unwrap();
    let rows = a.query("SELECT count(*) FROM firsthop").unwrap();
    assert_eq!(rows[0].rows[0][0], Value::Int(1));
    // The other connection never sees the view...
    let err = b.query("SELECT count(*) FROM firsthop").unwrap_err();
    assert_eq!(err.code, ErrorCode::Plan);

    // ...nor the prepared statement.
    assert_eq!(
        a.prepare("hop", "SELECT count(*) FROM firsthop").unwrap(),
        1
    );
    let again = a.execute("hop").unwrap();
    assert_eq!(again[0].rows[0][0], Value::Int(1));
    let err = b.execute("hop").unwrap_err();
    assert_eq!(err.code, ErrorCode::UnknownPrepared);

    // Base tables are shared: registering through one session is visible
    // to the other.
    let rel = Relation::edges(&[(100, 200)]);
    let n = a
        .register("extra", rel.schema().clone(), rel.rows().to_vec())
        .unwrap();
    assert_eq!(n, 1);
    let rows = b.query("SELECT count(*) FROM extra").unwrap();
    assert_eq!(rows[0].rows[0][0], Value::Int(1));

    a.close().unwrap();
    b.close().unwrap();
}

#[test]
fn errors_carry_stable_codes() {
    let (handle, _ctx) = start_server(2);
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.query("SELEKT 1").unwrap_err().code, ErrorCode::Parse);
    assert_eq!(
        client.query("SELECT * FROM missing").unwrap_err().code,
        ErrorCode::Plan
    );
    // The connection survives errors: the next query works.
    assert!(client.query("SELECT count(*) FROM edge").is_ok());
    client.close().unwrap();
}

#[test]
fn version_mismatch_is_refused() {
    let (handle, _ctx) = start_server(2);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    send_request(&mut stream, &Request::Hello { version: 999 }).unwrap();
    match read_response(&mut stream).unwrap() {
        Response::Error { error } => assert_eq!(error.code, ErrorCode::VersionMismatch),
        other => panic!("expected Error, got {other:?}"),
    }
}

#[test]
fn garbage_bytes_are_rejected_not_hung() {
    let (handle, _ctx) = start_server(2);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    stream.flush().unwrap();
    // The server answers with a protocol error frame and closes.
    match read_response(&mut stream) {
        Ok(Response::Error { error }) => assert_eq!(error.code, ErrorCode::Protocol),
        // Or it already closed on us — also acceptable.
        Err(e) => assert!(
            matches!(
                e.code,
                ErrorCode::ConnectionClosed | ErrorCode::Protocol | ErrorCode::Io
            ),
            "unexpected: {e}"
        ),
        Ok(other) => panic!("expected Error, got {other:?}"),
    }
}

/// The headline enforcement test: a client that disconnects mid-query has
/// its in-flight fixpoint cancelled — observed via the engine's
/// cancellation metric — and leaks neither spill directories nor worker
/// threads.
#[test]
fn disconnect_mid_query_cancels_and_leaks_nothing() {
    let ctx = Arc::new(
        RaSqlContext::builder()
            .workers(2)
            // Tight budget so the long query is actively spilling when the
            // client vanishes — the governor's spill dir must still go away.
            .memory_budget(256 * 1024)
            .build(),
    );
    // A dense-ish graph whose closure is expensive enough to still be
    // running when we sever the connection.
    let n: i64 = 400;
    let mut edges: Vec<(i64, i64)> = chain_edges(n);
    edges.extend((0..n).map(|i| (i, (i * 7 + 3) % n)));
    edges.extend((0..n).map(|i| (i, (i * 13 + 1) % n)));
    ctx.register("edge", Relation::edges(&edges)).unwrap();
    let handle =
        rasql_server::serve_with(Arc::clone(&ctx), "127.0.0.1:0", Duration::from_secs(5)).unwrap();

    let dirs_before = spill_dirs();
    let cancellations_before = ctx.metrics().cancellations;

    // Raw socket: handshake, fire the query, read the first frame (so we
    // know execution started), then drop the socket without reading more.
    {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        send_request(
            &mut stream,
            &Request::Hello {
                version: PROTOCOL_VERSION,
            },
        )
        .unwrap();
        let hello = read_response(&mut stream).unwrap();
        assert!(matches!(hello, Response::Hello { .. }));
        send_request(
            &mut stream,
            &Request::Query {
                sql: "WITH recursive tc (Src, Dst) AS \
                        (SELECT Src, Dst FROM edge) UNION \
                        (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src) \
                      SELECT count(*) FROM tc"
                    .to_string(),
            },
        )
        .unwrap();
        // Give the query time to admit and start iterating, then vanish.
        let deadline = Instant::now() + Duration::from_secs(5);
        while ctx.active_queries().is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(
            !ctx.active_queries().is_empty(),
            "query never started executing"
        );
        // stream drops here: EOF at the server.
    }

    // The server must notice the EOF and cancel the in-flight query.
    let deadline = Instant::now() + Duration::from_secs(10);
    while ctx.metrics().cancellations == cancellations_before && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        ctx.metrics().cancellations > cancellations_before,
        "disconnect did not surface as a cancellation"
    );
    // And the active-query table must drain.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !ctx.active_queries().is_empty() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(ctx.active_queries().is_empty(), "query still active");

    // The engine is immediately usable for the next client.
    let mut client = Client::connect(handle.addr()).unwrap();
    let rows = client.query("SELECT count(*) FROM edge").unwrap();
    assert_eq!(rows[0].rows[0][0], Value::Int(3 * n));
    client.close().unwrap();

    assert!(
        handle.shutdown(),
        "drain should be clean after cancellation"
    );

    // No leaked governor spill directories; no leaked connection threads.
    assert_eq!(
        spill_dirs(),
        dirs_before,
        "spill directory leaked past disconnect"
    );
    if let Some(threads) = thread_count() {
        // All server threads joined by shutdown(); allow generous slack for
        // the test harness itself.
        assert!(
            threads < 64,
            "thread count suspiciously high after shutdown: {threads}"
        );
    }
}

#[test]
fn kill_metrics_and_status_are_reachable() {
    let (handle, _ctx) = start_server(2);
    let mut client = Client::connect(handle.addr()).unwrap();

    // Nothing running: kill misses.
    assert!(!client.kill(123_456).unwrap());

    let status = client.status().unwrap();
    assert!(status.tables.contains(&"edge".to_string()));
    assert_eq!(status.sessions, 1);
    assert!(status.active_queries.is_empty());

    client.query("SELECT count(*) FROM edge").unwrap();
    let metrics = client.metrics().unwrap();
    assert!(metrics.contains("# TYPE rasql_stages_total counter"));
    assert!(metrics.contains("rasql_admitted_total"));
    client.close().unwrap();
}

#[test]
fn client_shutdown_request_drains_server() {
    let (handle, _ctx) = start_server(2);
    let client = Client::connect(handle.addr()).unwrap();
    client.shutdown().unwrap();
    handle.wait_for_shutdown();
    assert!(handle.is_shutting_down());
    assert!(handle.shutdown());
}

#[test]
fn matview_lifecycle_over_the_wire() {
    let (handle, _ctx) = start_server(2);
    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(client.views().unwrap().is_empty());

    let tc = "WITH recursive tc (Src, Dst) AS \
                (SELECT Src, Dst FROM edge) UNION \
                (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src) \
              SELECT Src, Dst FROM tc";
    client
        .query(&format!("CREATE MATERIALIZED VIEW t AS {tc}"))
        .unwrap();
    let views = client.views().unwrap();
    assert_eq!(views.len(), 1);
    assert_eq!(views[0].name, "t");
    assert_eq!(views[0].version, 1);
    assert!(!views[0].stale);
    assert!(views[0].retained_bytes > 0);

    client.query("INSERT INTO edge VALUES (64, 65)").unwrap();
    assert!(client.views().unwrap()[0].stale);
    client.query("REFRESH MATERIALIZED VIEW t").unwrap();
    let views = client.views().unwrap();
    assert_eq!(views[0].version, 2);
    assert!(!views[0].stale);
    assert_eq!(views[0].last_refresh, "incremental");

    // Unknown-view errors cross the wire with their stable code.
    let err = client.query("REFRESH MATERIALIZED VIEW nope").unwrap_err();
    assert_eq!(err.code, ErrorCode::UnknownView);
    assert_eq!(err.code.code(), "RA0501");
    let err = client.query("DROP MATERIALIZED VIEW nope").unwrap_err();
    assert_eq!(err.code, ErrorCode::UnknownView);

    client.query("DROP MATERIALIZED VIEW t").unwrap();
    assert!(client.views().unwrap().is_empty());
    client.close().unwrap();
}

/// A connection quiet past the idle keepalive timeout is reaped (counted in
/// `connections_reaped`), and the client's next request transparently
/// redials with backoff instead of surfacing the dead socket.
#[test]
fn idle_connection_is_reaped_and_client_reconnects() {
    let ctx = Arc::new(RaSqlContext::builder().workers(2).build());
    ctx.register("edge", Relation::edges(&chain_edges(8)))
        .unwrap();
    let handle = rasql_server::serve_full(
        Arc::clone(&ctx),
        "127.0.0.1:0",
        Duration::from_secs(5),
        Duration::from_millis(100),
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.status().unwrap();
    let before = ctx.metrics().connections_reaped;
    // Sit idle; the server must reap the connection within the timeout
    // (plus poll slack).
    let deadline = Instant::now() + Duration::from_secs(5);
    while ctx.metrics().connections_reaped == before {
        assert!(Instant::now() < deadline, "connection was never reaped");
        std::thread::sleep(Duration::from_millis(10));
    }
    // The reaped socket is dead; these must reconnect, not fail.
    let status = client.status().unwrap();
    assert_eq!(status.tables, vec!["edge".to_string()]);
    let results = client.query("SELECT count(*) FROM edge").unwrap();
    assert_eq!(results.len(), 1);
    let text = client.metrics().unwrap();
    assert!(text.contains("rasql_connections_reaped_total"), "{text}");
    drop(client);
    handle.shutdown();
}

/// An in-memory server answers the `Durability` request with `None`.
#[test]
fn in_memory_server_reports_no_durability() {
    let (handle, _ctx) = start_server(2);
    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(client.durability().unwrap().is_none());
    client.close().unwrap();
    handle.shutdown();
}

/// The acceptance scenario: a server started over a data directory, killed,
/// and restarted over the same directory serves the pre-crash tables
/// without any DDL being re-run — and reports its WAL counters remotely.
#[test]
fn durable_server_restart_serves_pre_crash_state() {
    let dir = std::env::temp_dir().join(format!(
        "rasql-server-durable-restart-p{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let ctx = Arc::new(
            RaSqlContext::builder()
                .workers(2)
                .data_dir(dir.clone())
                .try_build()
                .unwrap(),
        );
        ctx.register("edge", Relation::edges(&chain_edges(4)))
            .unwrap();
        let handle =
            rasql_server::serve_with(Arc::clone(&ctx), "127.0.0.1:0", Duration::from_secs(5))
                .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let status = client.durability().unwrap().expect("durable server");
        assert!(status.wal_records >= 1, "{status:?}");
        assert_eq!(status.data_dir, dir.display().to_string());
        client.query("INSERT INTO edge VALUES (100, 101)").unwrap();
        client.close().unwrap();
        assert!(handle.shutdown());
    }
    // "Restart": a fresh engine recovers from the directory; no register,
    // no DDL. The wire-level INSERT must have survived.
    let ctx = Arc::new(
        RaSqlContext::builder()
            .workers(2)
            .data_dir(dir.clone())
            .try_build()
            .unwrap(),
    );
    let handle =
        rasql_server::serve_with(Arc::clone(&ctx), "127.0.0.1:0", Duration::from_secs(5)).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let results = client.query("SELECT count(*) FROM edge").unwrap();
    assert_eq!(
        results[0].rows[0].values()[0],
        rasql_api::Value::Int(5),
        "4 chain edges + 1 wire insert"
    );
    client.close().unwrap();
    assert!(handle.shutdown());
    let _ = std::fs::remove_dir_all(&dir);
}
