//! Property-based tests for the execution substrate: shuffles preserve the
//! multiset of rows, fused and unfused pipelines agree, and the monotone
//! aggregate state is order-insensitive where the algebra says it must be.

use proptest::prelude::*;
use rasql_exec::state::{AggState, MonotoneOp};
use rasql_exec::{
    run_fused, run_unfused, Cluster, ClusterConfig, Dataset, HashTable, Pipeline, PipelineStep,
    SetState,
};
use rasql_storage::row::int_row;
use rasql_storage::{Row, Value};
use std::sync::Arc;
use std::time::Duration;

fn quiet_cluster(workers: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        workers,
        partition_aware: true,
        stage_latency: Duration::ZERO,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn shuffle_preserves_multiset(
        rows in prop::collection::vec((0i64..50, 0i64..50), 0..200),
        parts in 1usize..9,
    ) {
        let c = quiet_cluster(3);
        let data: Vec<Row> = rows.iter().map(|&(a, b)| int_row(&[a, b])).collect();
        let d = Dataset::round_robin(data.clone(), 4);
        let s = d.shuffle(&c, &[1], parts);
        prop_assert_eq!(s.num_partitions(), parts);
        let mut got = s.collect();
        let mut want = data;
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn fused_equals_unfused_on_random_pipelines(
        input in prop::collection::vec((0i64..30, 0i64..30), 0..120),
        build in prop::collection::vec((0i64..30, 0i64..100), 0..60),
        threshold in 0i64..30,
    ) {
        let input_rows: Vec<Row> = input.iter().map(|&(a, b)| int_row(&[a, b])).collect();
        let build_rows: Vec<Row> = build.iter().map(|&(a, b)| int_row(&[a, b])).collect();
        let table = Arc::new(HashTable::build(&build_rows, &[0]));
        let steps = vec![
            PipelineStep::Filter(Arc::new(move |r: &Row| {
                r[0].as_int().unwrap() >= threshold
            })),
            PipelineStep::HashJoin {
                table,
                key: Arc::new(|r: &Row| vec![r[1].clone()]),
            },
            PipelineStep::Filter(Arc::new(|r: &Row| r[3].as_int().unwrap() % 2 == 0)),
        ];
        let pipeline = Pipeline::with_project(steps, Arc::new(|r: &Row| r.project(&[0, 3])));
        let mut a = run_fused(&input_rows, &pipeline);
        let mut b = run_unfused(&input_rows, &pipeline);
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn min_state_is_order_insensitive(
        contribs in prop::collection::vec((0i64..10, -100i64..100), 1..80),
    ) {
        // Merging the same contributions in any order yields the same totals.
        let ops = [MonotoneOp::Min];
        let mut forward = AggState::new();
        for (round, &(k, v)) in contribs.iter().enumerate() {
            forward.merge(&[Value::Int(k)], &[Value::Int(v)], &ops, round as u32, None);
        }
        let mut reversed = AggState::new();
        for (round, &(k, v)) in contribs.iter().rev().enumerate() {
            reversed.merge(&[Value::Int(k)], &[Value::Int(v)], &ops, round as u32, None);
        }
        for &(k, _) in &contribs {
            prop_assert_eq!(
                forward.get(&[Value::Int(k)]).unwrap(),
                reversed.get(&[Value::Int(k)]).unwrap()
            );
        }
    }

    #[test]
    fn sum_state_is_order_insensitive(
        contribs in prop::collection::vec((0i64..10, 1i64..100), 1..80),
    ) {
        let ops = [MonotoneOp::Sum];
        let mut forward = AggState::new();
        let mut reversed = AggState::new();
        for (round, &(k, v)) in contribs.iter().enumerate() {
            forward.merge(&[Value::Int(k)], &[Value::Int(v)], &ops, round as u32, None);
        }
        for (round, &(k, v)) in contribs.iter().rev().enumerate() {
            reversed.merge(&[Value::Int(k)], &[Value::Int(v)], &ops, round as u32, None);
        }
        for &(k, _) in &contribs {
            prop_assert_eq!(
                forward.get(&[Value::Int(k)]).unwrap(),
                reversed.get(&[Value::Int(k)]).unwrap()
            );
        }
    }

    #[test]
    fn set_state_is_a_set(rows in prop::collection::vec((0i64..15, 0i64..15), 0..100)) {
        let mut s = SetState::new();
        let mut inserted = 0;
        for (round, &(a, b)) in rows.iter().enumerate() {
            if s.insert(int_row(&[a, b]), round as u32) {
                inserted += 1;
            }
        }
        let distinct: std::collections::HashSet<_> = rows.iter().collect();
        prop_assert_eq!(inserted, distinct.len());
        prop_assert_eq!(s.len(), distinct.len());
    }

    #[test]
    fn map_partitions_preserves_counts(
        rows in prop::collection::vec((0i64..100, 0i64..100), 0..150),
        workers in 1usize..5,
    ) {
        let c = quiet_cluster(workers);
        let data: Vec<Row> = rows.iter().map(|&(a, b)| int_row(&[a, b])).collect();
        let d = Dataset::hash_partitioned(data, &[0], workers * 2);
        let out = d.map_partitions(&c, |_p, part| part.to_vec());
        prop_assert_eq!(out.len(), rows.len());
    }
}

#[test]
fn agg_state_increments_sum_to_total() {
    // The increments reported across rounds must sum to the final total.
    let ops = [MonotoneOp::Sum];
    let mut st = AggState::new();
    let mut sum_of_increments = 0i64;
    for round in 0..20u32 {
        let v = (round as i64 % 5) + 1;
        if let rasql_exec::state::AggMergeResult::Changed { increments, .. } =
            st.merge(&[Value::Int(1)], &[Value::Int(v)], &ops, round, None)
        {
            sum_of_increments += increments[0].as_int().unwrap();
        }
    }
    assert_eq!(
        st.get(&[Value::Int(1)]).unwrap()[0],
        Value::Int(sum_of_increments)
    );
}
