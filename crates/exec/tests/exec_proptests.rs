//! Property-based tests for the execution substrate: shuffles preserve the
//! multiset of rows, fused and unfused pipelines agree, and the monotone
//! aggregate state is order-insensitive where the algebra says it must be.

use proptest::prelude::*;
use rasql_exec::checkpoint::{
    decode_agg_state, decode_rows, decode_set_state, encode_agg_state, encode_rows,
    encode_set_state,
};
use rasql_exec::state::{AggState, MonotoneOp};
use rasql_exec::{
    run_fused, run_unfused, Cluster, ClusterConfig, Dataset, HashTable, Pipeline, PipelineStep,
    SetState,
};
use rasql_storage::row::int_row;
use rasql_storage::{Row, Value};
use std::sync::Arc;
use std::time::Duration;

fn quiet_cluster(workers: usize) -> Cluster {
    Cluster::new(ClusterConfig {
        workers,
        partition_aware: true,
        stage_latency: Duration::ZERO,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn shuffle_preserves_multiset(
        rows in prop::collection::vec((0i64..50, 0i64..50), 0..200),
        parts in 1usize..9,
    ) {
        let c = quiet_cluster(3);
        let data: Vec<Row> = rows.iter().map(|&(a, b)| int_row(&[a, b])).collect();
        let d = Dataset::round_robin(data.clone(), 4);
        let s = d.shuffle(&c, &[1], parts).unwrap();
        prop_assert_eq!(s.num_partitions(), parts);
        let mut got = s.collect();
        let mut want = data;
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn fused_equals_unfused_on_random_pipelines(
        input in prop::collection::vec((0i64..30, 0i64..30), 0..120),
        build in prop::collection::vec((0i64..30, 0i64..100), 0..60),
        threshold in 0i64..30,
    ) {
        let input_rows: Vec<Row> = input.iter().map(|&(a, b)| int_row(&[a, b])).collect();
        let build_rows: Vec<Row> = build.iter().map(|&(a, b)| int_row(&[a, b])).collect();
        let table = Arc::new(HashTable::build(&build_rows, &[0]));
        let steps = vec![
            PipelineStep::Filter(Arc::new(move |r: &Row| {
                r[0].as_int().unwrap() >= threshold
            })),
            PipelineStep::HashJoin {
                table,
                key: Arc::new(|r: &Row| vec![r[1].clone()]),
            },
            PipelineStep::Filter(Arc::new(|r: &Row| r[3].as_int().unwrap() % 2 == 0)),
        ];
        let pipeline = Pipeline::with_project(steps, Arc::new(|r: &Row| r.project(&[0, 3])));
        let mut a = run_fused(&input_rows, &pipeline);
        let mut b = run_unfused(&input_rows, &pipeline);
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn min_state_is_order_insensitive(
        contribs in prop::collection::vec((0i64..10, -100i64..100), 1..80),
    ) {
        // Merging the same contributions in any order yields the same totals.
        let ops = [MonotoneOp::Min];
        let mut forward = AggState::new();
        for (round, &(k, v)) in contribs.iter().enumerate() {
            forward.merge(&[Value::Int(k)], &[Value::Int(v)], &ops, round as u32, None);
        }
        let mut reversed = AggState::new();
        for (round, &(k, v)) in contribs.iter().rev().enumerate() {
            reversed.merge(&[Value::Int(k)], &[Value::Int(v)], &ops, round as u32, None);
        }
        for &(k, _) in &contribs {
            prop_assert_eq!(
                forward.get(&[Value::Int(k)]).unwrap(),
                reversed.get(&[Value::Int(k)]).unwrap()
            );
        }
    }

    #[test]
    fn sum_state_is_order_insensitive(
        contribs in prop::collection::vec((0i64..10, 1i64..100), 1..80),
    ) {
        let ops = [MonotoneOp::Sum];
        let mut forward = AggState::new();
        let mut reversed = AggState::new();
        for (round, &(k, v)) in contribs.iter().enumerate() {
            forward.merge(&[Value::Int(k)], &[Value::Int(v)], &ops, round as u32, None);
        }
        for (round, &(k, v)) in contribs.iter().rev().enumerate() {
            reversed.merge(&[Value::Int(k)], &[Value::Int(v)], &ops, round as u32, None);
        }
        for &(k, _) in &contribs {
            prop_assert_eq!(
                forward.get(&[Value::Int(k)]).unwrap(),
                reversed.get(&[Value::Int(k)]).unwrap()
            );
        }
    }

    #[test]
    fn set_state_is_a_set(rows in prop::collection::vec((0i64..15, 0i64..15), 0..100)) {
        let mut s = SetState::new();
        let mut inserted = 0;
        for (round, &(a, b)) in rows.iter().enumerate() {
            if s.insert(int_row(&[a, b]), round as u32) {
                inserted += 1;
            }
        }
        let distinct: std::collections::HashSet<_> = rows.iter().collect();
        prop_assert_eq!(inserted, distinct.len());
        prop_assert_eq!(s.len(), distinct.len());
    }

    #[test]
    fn set_state_survives_checkpoint_byte_identically(
        rows in prop::collection::vec((0i64..40, 0i64..40, 0u32..12), 0..150),
    ) {
        // encode → decode → encode must be byte-identical (the encoding is
        // canonical), and the restored state must agree row-for-row and
        // round-for-round with the original.
        let mut original = SetState::new();
        for &(a, b, round) in &rows {
            original.insert(int_row(&[a, b]), round);
        }
        let encoded = encode_set_state(&original);
        let restored = decode_set_state(encoded.clone()).unwrap();
        prop_assert_eq!(encode_set_state(&restored), encoded);
        let mut got: Vec<_> = restored.iter_with_rounds().map(|(r, n)| (r.clone(), n)).collect();
        let mut want: Vec<_> = original.iter_with_rounds().map(|(r, n)| (r.clone(), n)).collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn agg_state_survives_checkpoint_byte_identically(
        contribs in prop::collection::vec((0i64..8, -50i64..50, 1i64..20), 0..120),
        dedup in prop::collection::vec((0i64..8, 0i64..8), 0..40),
    ) {
        // Build a two-column (min, sum) aggregate state with a populated
        // distinct-contributor set, then round-trip it through the checkpoint
        // codec. Canonical encoding ⇒ byte-identical re-encode; every group's
        // totals must survive.
        let ops = [MonotoneOp::Min, MonotoneOp::Sum];
        let mut original = AggState::new();
        for (round, &(k, lo, add)) in contribs.iter().enumerate() {
            original.merge(
                &[Value::Int(k)],
                &[Value::Int(lo), Value::Int(add)],
                &ops,
                round as u32,
                None,
            );
        }
        for &(k, t) in &dedup {
            original.merge(
                &[Value::Int(k)],
                &[Value::Int(t), Value::Int(1)],
                &ops,
                0,
                Some(&[Value::Int(k), Value::Int(t)]),
            );
        }
        let encoded = encode_agg_state(&original);
        let restored = decode_agg_state(encoded.clone()).unwrap();
        prop_assert_eq!(encode_agg_state(&restored), encoded);
        for &(k, _, _) in &contribs {
            prop_assert_eq!(
                restored.get(&[Value::Int(k)]).unwrap(),
                original.get(&[Value::Int(k)]).unwrap()
            );
        }
        prop_assert_eq!(restored.len(), original.len());
    }

    #[test]
    fn rows_survive_checkpoint_byte_identically(
        rows in prop::collection::vec((-1000i64..1000, -1000i64..1000), 0..200),
    ) {
        // The row encoding is canonical (sorted), so compare as multisets.
        let data: Vec<Row> = rows.iter().map(|&(a, b)| int_row(&[a, b])).collect();
        let encoded = encode_rows(&data);
        let restored = decode_rows(encoded.clone()).unwrap();
        let mut want = data;
        want.sort();
        prop_assert_eq!(&restored, &want);
        prop_assert_eq!(encode_rows(&restored), encoded);
    }

    #[test]
    fn map_partitions_preserves_counts(
        rows in prop::collection::vec((0i64..100, 0i64..100), 0..150),
        workers in 1usize..5,
    ) {
        let c = quiet_cluster(workers);
        let data: Vec<Row> = rows.iter().map(|&(a, b)| int_row(&[a, b])).collect();
        let d = Dataset::hash_partitioned(data, &[0], workers * 2);
        let out = d.map_partitions(&c, |_p, part| part.to_vec()).unwrap();
        prop_assert_eq!(out.len(), rows.len());
    }
}

#[test]
fn agg_state_increments_sum_to_total() {
    // The increments reported across rounds must sum to the final total.
    let ops = [MonotoneOp::Sum];
    let mut st = AggState::new();
    let mut sum_of_increments = 0i64;
    for round in 0..20u32 {
        let v = (round as i64 % 5) + 1;
        if let rasql_exec::state::AggMergeResult::Changed { increments, .. } =
            st.merge(&[Value::Int(1)], &[Value::Int(v)], &ops, round, None)
        {
            sum_of_increments += increments[0].as_int().unwrap();
        }
    }
    assert_eq!(
        st.get(&[Value::Int(1)]).unwrap()[0],
        Value::Int(sum_of_increments)
    );
}
