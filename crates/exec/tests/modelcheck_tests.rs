//! Regression harness for the protocol models in `exec::modelcheck`.
//!
//! Every shipped protocol is checked in both variants: the `fixed` model
//! mirroring HEAD must verify clean under *exhaustive* interleaving
//! enumeration, and the `reverted` model — the same protocol with its fix
//! mechanically undone — must produce a counterexample. The two PR-7 races
//! (torn matview publish, DELETE clobbering a concurrent INSERT) are the
//! anchor cases: if a model ever stops seeing its bug, the model has gone
//! blunt and this suite fails.

use rasql_exec::modelcheck::{check_exhaustive, check_random, protocols, Limits, ViolationKind};

// ----------------------------------------------------------------
// PR-7 race #1: torn materialized-view publish
// ----------------------------------------------------------------

#[test]
fn matview_publish_head_is_race_free() {
    let out = check_exhaustive(&protocols::matview_publish_fixed(), Limits::default());
    assert!(
        out.violation.is_none(),
        "per-view serialization guard must make publish coherent: {}",
        out.violation.unwrap()
    );
    assert!(!out.stats.truncated, "space must be exhausted, not bounded");
    assert!(out.stats.schedules > 0);
}

#[test]
fn matview_publish_revert_rediscovers_torn_publish() {
    let out = check_exhaustive(&protocols::matview_publish_reverted(), Limits::default());
    let v = out
        .violation
        .expect("removing the view guard must reintroduce the torn publish");
    assert_eq!(v.kind, ViolationKind::Invariant);
    assert!(v.message.contains("torn publish"), "{v}");
    // The counterexample interleaves the two refreshes' publish steps.
    assert!(
        v.schedule.iter().any(|s| s.starts_with("refresh-1"))
            && v.schedule.iter().any(|s| s.starts_with("refresh-2")),
        "{v}"
    );
}

// ----------------------------------------------------------------
// PR-7 race #2: DELETE vs concurrent INSERT
// ----------------------------------------------------------------

#[test]
fn delete_insert_head_is_race_free() {
    let out = check_exhaustive(&protocols::delete_insert_fixed(), Limits::default());
    assert!(
        out.violation.is_none(),
        "version-checked replace_rows_if must preserve concurrent inserts: {}",
        out.violation.unwrap()
    );
    assert!(!out.stats.truncated);
}

#[test]
fn delete_insert_revert_rediscovers_lost_insert() {
    let out = check_exhaustive(&protocols::delete_insert_reverted(), Limits::default());
    let v = out
        .violation
        .expect("unconditional replace must reintroduce the lost insert");
    assert_eq!(v.kind, ViolationKind::Invariant);
    assert!(v.message.contains("lost insert"), "{v}");
}

// ----------------------------------------------------------------
// Admission queue handoff
// ----------------------------------------------------------------

#[test]
fn admission_handoff_head_is_live_and_bounded() {
    let out = check_exhaustive(&protocols::admission_handoff_fixed(), Limits::default());
    assert!(
        out.violation.is_none(),
        "release-then-notify must hand the slot off: {}",
        out.violation.unwrap()
    );
}

#[test]
fn admission_handoff_without_notify_deadlocks() {
    let out = check_exhaustive(&protocols::admission_handoff_reverted(), Limits::default());
    let v = out
        .violation
        .expect("dropping the notify must strand the waiter");
    assert_eq!(v.kind, ViolationKind::Deadlock);
    assert!(v.message.contains("waiter"), "{v}");
}

// ----------------------------------------------------------------
// Result-cache invalidation
// ----------------------------------------------------------------

#[test]
fn result_cache_head_never_serves_stale() {
    let out = check_exhaustive(&protocols::result_cache_fixed(), Limits::default());
    assert!(
        out.violation.is_none(),
        "version-fingerprint keys must make stale hits impossible: {}",
        out.violation.unwrap()
    );
}

#[test]
fn result_cache_without_version_keys_serves_stale() {
    let out = check_exhaustive(&protocols::result_cache_reverted(), Limits::default());
    let v = out
        .violation
        .expect("dropping the fingerprint from the key must allow a stale serve");
    assert_eq!(v.kind, ViolationKind::Invariant);
    assert!(v.message.contains("stale serve"), "{v}");
}

// ----------------------------------------------------------------
// The suite as a whole + the random scheduler
// ----------------------------------------------------------------

#[test]
fn full_suite_passes_its_own_criterion() {
    for report in protocols::check_all() {
        assert!(
            report.ok(),
            "protocol {} failed: fixed={:?} reverted={:?}",
            report.protocol,
            report.fixed.violation.as_ref().map(ToString::to_string),
            report.reverted.violation.as_ref().map(ToString::to_string),
        );
    }
}

#[test]
fn random_scheduler_also_finds_both_pr7_races() {
    // The exhaustive pass is the gate; the seeded random scheduler is the
    // scale-out mode for protocols with larger state spaces. It must find
    // the same anchor bugs from a fixed seed, deterministically.
    let torn = check_random(&protocols::matview_publish_reverted(), 0xA5EED, 500);
    assert!(
        torn.violation.is_some(),
        "seeded random missed the torn publish"
    );
    let lost = check_random(&protocols::delete_insert_reverted(), 0xA5EED, 500);
    assert!(
        lost.violation.is_some(),
        "seeded random missed the lost insert"
    );
    // And it must NOT flag the fixed protocols.
    assert!(
        check_random(&protocols::matview_publish_fixed(), 0xA5EED, 500)
            .violation
            .is_none()
    );
    assert!(
        check_random(&protocols::delete_insert_fixed(), 0xA5EED, 500)
            .violation
            .is_none()
    );
}
