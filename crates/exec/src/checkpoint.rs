//! Round-boundary checkpointing for the fixpoint's mutable state.
//!
//! The paper's SetRDD (§6.1) mutates the all-relation in place, which forfeits
//! Spark's lineage-based recovery: a lost partition cannot be recomputed from
//! its parents because the parents were destroyed by the mutation. The
//! replacement recovery story is *round-boundary checkpointing*: between
//! fixpoint rounds every partition's state is consistent (no task is mid-merge
//! at a barrier), so serializing [`SetState`]/[`AggState`] there yields a
//! snapshot the fixpoint can restore and replay forward from — semi-naive
//! evaluation is deterministic given the state and delta at a round.
//!
//! The encodings are **canonical**: rows, group keys and contributor tuples
//! are sorted before writing, so encode → decode → encode is byte-identical
//! even though the underlying hash maps iterate in arbitrary order. Values go
//! through the same tagged varint/zigzag codec the broadcast compressor uses
//! ([`rasql_storage::codec`]).

use crate::state::{AggEntry, AggState, SetState};
pub use bytes::Bytes;
use bytes::{Buf, BytesMut};
use rasql_storage::codec::{decode_value, encode_value, read_varint, write_varint};
use rasql_storage::sync::{LockRank, RankedMutex};
use rasql_storage::{FxHashMap, Row, StorageError, Value};
use std::path::PathBuf;

// --------------------------------------------------------------------
// Encodings
// --------------------------------------------------------------------

fn write_values(buf: &mut BytesMut, values: &[Value]) {
    write_varint(buf, values.len() as u64);
    for v in values {
        encode_value(buf, v);
    }
}

fn read_values(buf: &mut impl Buf) -> Result<Vec<Value>, StorageError> {
    let n = read_varint(buf)? as usize;
    let mut values = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        values.push(decode_value(buf)?);
    }
    Ok(values)
}

/// Encode a plain row list (pending delta / contribution buckets). Canonical:
/// rows are written in sorted order.
pub fn encode_rows(rows: &[Row]) -> Bytes {
    let mut sorted: Vec<&Row> = rows.iter().collect();
    sorted.sort_unstable();
    let mut buf = BytesMut::new();
    write_varint(&mut buf, sorted.len() as u64);
    for row in sorted {
        write_values(&mut buf, row.values());
    }
    buf.freeze()
}

/// Inverse of [`encode_rows`].
pub fn decode_rows(mut buf: impl Buf) -> Result<Vec<Row>, StorageError> {
    let n = read_varint(&mut buf)? as usize;
    let mut rows = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        rows.push(Row::new(read_values(&mut buf)?));
    }
    if buf.has_remaining() {
        return Err(StorageError::Codec("trailing bytes after rows".into()));
    }
    Ok(rows)
}

/// Encode a [`SetState`] including per-row round watermarks. Canonical:
/// rows are written in sorted order.
pub fn encode_set_state(state: &SetState) -> Bytes {
    let mut entries: Vec<(&Row, u32)> = state.iter_with_rounds().collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
    let mut buf = BytesMut::new();
    write_varint(&mut buf, entries.len() as u64);
    for (row, round) in entries {
        write_values(&mut buf, row.values());
        write_varint(&mut buf, round as u64);
    }
    buf.freeze()
}

/// Inverse of [`encode_set_state`].
pub fn decode_set_state(mut buf: impl Buf) -> Result<SetState, StorageError> {
    let n = read_varint(&mut buf)? as usize;
    let mut state = SetState::new();
    for _ in 0..n {
        let row = Row::new(read_values(&mut buf)?);
        let round = read_varint(&mut buf)? as u32;
        state.insert(row, round);
    }
    if buf.has_remaining() {
        return Err(StorageError::Codec("trailing bytes after set state".into()));
    }
    Ok(state)
}

/// Encode an [`AggState`]: every group's totals, previous totals and round
/// watermarks, plus the distinct-contributor set. Canonical: groups and
/// contributors are written in key-sorted order.
pub fn encode_agg_state(state: &AggState) -> Bytes {
    let mut groups: Vec<(&[Value], &AggEntry)> = state.iter().collect();
    groups.sort_unstable_by(|a, b| a.0.cmp(b.0));
    let mut buf = BytesMut::new();
    write_varint(&mut buf, groups.len() as u64);
    for (key, entry) in groups {
        write_values(&mut buf, key);
        write_values(&mut buf, &entry.values);
        write_values(&mut buf, &entry.prev);
        write_varint(&mut buf, entry.round as u64);
        write_varint(&mut buf, entry.created as u64);
    }
    let mut contributors: Vec<&[Value]> = state.contributors().collect();
    contributors.sort_unstable();
    write_varint(&mut buf, contributors.len() as u64);
    for tuple in contributors {
        write_values(&mut buf, tuple);
    }
    buf.freeze()
}

/// Inverse of [`encode_agg_state`].
pub fn decode_agg_state(mut buf: impl Buf) -> Result<AggState, StorageError> {
    let mut state = AggState::new();
    let groups = read_varint(&mut buf)? as usize;
    for _ in 0..groups {
        let key = read_values(&mut buf)?.into_boxed_slice();
        let values = read_values(&mut buf)?.into_boxed_slice();
        let prev = read_values(&mut buf)?.into_boxed_slice();
        let round = read_varint(&mut buf)? as u32;
        let created = read_varint(&mut buf)? as u32;
        state.insert_group(
            key,
            AggEntry {
                values,
                prev,
                round,
                created,
            },
        );
    }
    let contributors = read_varint(&mut buf)? as usize;
    for _ in 0..contributors {
        state.insert_contributor(read_values(&mut buf)?.into_boxed_slice());
    }
    if buf.has_remaining() {
        return Err(StorageError::Codec("trailing bytes after agg state".into()));
    }
    Ok(state)
}

// --------------------------------------------------------------------
// Store
// --------------------------------------------------------------------

/// Where checkpoint payloads live: in driver memory (a stand-in for a
/// replicated store) or on disk under a directory (one file per key).
enum StoreBackend {
    Memory(RankedMutex<FxHashMap<String, Bytes>>),
    Disk(PathBuf),
}

/// A keyed blob store for checkpoint payloads.
///
/// Keys are free-form strings (the fixpoint uses `"r{round}/v{view}/p{part}"`);
/// the disk backend maps them to sanitized file names. `put` overwrites.
pub struct CheckpointStore {
    backend: StoreBackend,
}

impl CheckpointStore {
    /// An in-memory store.
    pub fn memory() -> Self {
        CheckpointStore {
            backend: StoreBackend::Memory(RankedMutex::new(
                LockRank::CheckpointStore,
                FxHashMap::default(),
            )),
        }
    }

    /// An on-disk store rooted at `dir` (created if absent).
    ///
    /// The store owns the directory: dropping the store removes `dir` and
    /// every checkpoint file in it, on any exit path — checkpoints are
    /// intra-query recovery state, worthless once the query ends.
    pub fn disk(dir: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            backend: StoreBackend::Disk(dir),
        })
    }

    fn file_for(dir: &std::path::Path, key: &str) -> PathBuf {
        let name: String = key
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        dir.join(format!("{name}.ckpt"))
    }

    /// Store a payload; returns its size in bytes.
    pub fn put(&self, key: &str, data: Bytes) -> Result<usize, StorageError> {
        let len = data.len();
        match &self.backend {
            StoreBackend::Memory(map) => {
                map.lock().insert(key.to_string(), data);
            }
            StoreBackend::Disk(dir) => {
                std::fs::write(Self::file_for(dir, key), &data)?;
            }
        }
        Ok(len)
    }

    /// Fetch a payload, `None` if the key was never stored.
    pub fn get(&self, key: &str) -> Result<Option<Bytes>, StorageError> {
        match &self.backend {
            StoreBackend::Memory(map) => Ok(map.lock().get(key).cloned()),
            StoreBackend::Disk(dir) => {
                let path = Self::file_for(dir, key);
                if !path.exists() {
                    return Ok(None);
                }
                Ok(Some(Bytes::from(std::fs::read(path)?)))
            }
        }
    }
}

impl Drop for CheckpointStore {
    fn drop(&mut self) {
        if let StoreBackend::Disk(dir) = &self.backend {
            // Best-effort: cleanup must not panic during unwind.
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::MonotoneOp;
    use rasql_storage::row::int_row;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn vals(v: &[i64]) -> Vec<Value> {
        v.iter().map(|&x| Value::Int(x)).collect()
    }

    #[test]
    fn rows_round_trip_canonically() {
        let rows = vec![
            int_row(&[3, 1]),
            Row::new(vec![Value::from("x"), Value::Null]),
            int_row(&[1, 2]),
        ];
        let enc = encode_rows(&rows);
        let back = decode_rows(enc.clone()).unwrap();
        assert_eq!(back.len(), 3);
        // Canonical: re-encoding the decoded rows is byte-identical.
        assert_eq!(encode_rows(&back), enc);
    }

    #[test]
    fn set_state_round_trip_preserves_watermarks() {
        let mut s = SetState::new();
        s.insert(int_row(&[1, 2]), 1);
        s.insert(int_row(&[2, 3]), 2);
        s.insert(int_row(&[9]), 5);
        let enc = encode_set_state(&s);
        let back = decode_set_state(enc.clone()).unwrap();
        assert_eq!(back.len(), 3);
        assert!(back.contained_before(&int_row(&[1, 2]), 2));
        assert!(!back.contained_before(&int_row(&[2, 3]), 2));
        assert_eq!(encode_set_state(&back), enc);
    }

    #[test]
    fn agg_state_round_trip_preserves_entries_and_contributors() {
        let mut a = AggState::new();
        let ops = [MonotoneOp::Min, MonotoneOp::Sum];
        a.merge(&vals(&[1]), &vals(&[5, 10]), &ops, 1, None);
        a.merge(&vals(&[1]), &vals(&[3, 2]), &ops, 2, None);
        a.merge(
            &vals(&[2]),
            &vals(&[7, 1]),
            &[MonotoneOp::Min, MonotoneOp::Sum],
            2,
            Some(&vals(&[2, 99])),
        );
        let enc = encode_agg_state(&a);
        let back = decode_agg_state(enc.clone()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(&vals(&[1])).unwrap(), &vals(&[3, 12])[..]);
        // Old-snapshot semantics survive (prev totals + rounds).
        assert_eq!(
            back.get_before(&vals(&[1]), 2).unwrap().as_ref(),
            &vals(&[5, 10])[..]
        );
        // The contributor dedup set survives: same tuple is still ignored.
        let mut back2 = back;
        assert_eq!(
            back2.merge(
                &vals(&[2]),
                &vals(&[7, 1]),
                &[MonotoneOp::Min, MonotoneOp::Sum],
                3,
                Some(&vals(&[2, 99])),
            ),
            crate::state::AggMergeResult::Unchanged
        );
        assert_eq!(
            encode_agg_state(&decode_agg_state(enc.clone()).unwrap()),
            enc
        );
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let mut s = SetState::new();
        s.insert(int_row(&[1]), 1);
        let enc = encode_set_state(&s);
        assert!(decode_set_state(enc.slice(0..enc.len() - 1)).is_err());
    }

    #[test]
    fn memory_store_put_get() {
        let store = CheckpointStore::memory();
        assert!(store.get("r1/v0/p0").unwrap().is_none());
        store.put("r1/v0/p0", Bytes::from_static(b"abc")).unwrap();
        assert_eq!(store.get("r1/v0/p0").unwrap().unwrap().as_ref(), b"abc");
        // Overwrite wins.
        store.put("r1/v0/p0", Bytes::from_static(b"xy")).unwrap();
        assert_eq!(store.get("r1/v0/p0").unwrap().unwrap().as_ref(), b"xy");
    }

    #[test]
    fn disk_store_put_get() {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rasql-ckpt-test-{}-{}",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ));
        let store = CheckpointStore::disk(&dir).unwrap();
        store
            .put("r2/v1/p3", Bytes::from_static(b"payload"))
            .unwrap();
        assert_eq!(store.get("r2/v1/p3").unwrap().unwrap().as_ref(), b"payload");
        assert!(store.get("r2/v1/p4").unwrap().is_none());
        assert!(dir.exists());
        drop(store);
        assert!(!dir.exists(), "Drop must remove the checkpoint dir");
    }
}
