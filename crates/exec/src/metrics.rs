//! Runtime metrics: the counters the paper's ablations reason about
//! (stages scheduled, bytes shuffled, remote fetches, broadcast volume).

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters updated by workers during execution.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Stages executed (each stage = one barrier).
    pub stages: AtomicU64,
    /// Tasks executed.
    pub tasks: AtomicU64,
    /// Rows moved through shuffle exchanges.
    pub shuffle_rows: AtomicU64,
    /// Bytes moved through shuffle exchanges (worker-crossing only).
    pub shuffle_bytes: AtomicU64,
    /// Bytes deep-copied because a task ran away from its partition's home
    /// worker (the cost partition-aware scheduling avoids).
    pub remote_fetch_bytes: AtomicU64,
    /// Bytes sent by broadcast (payload × receiving workers).
    pub broadcast_bytes: AtomicU64,
    /// Rows produced by join probes.
    pub join_output_rows: AtomicU64,
    /// Fixpoint iterations executed.
    pub iterations: AtomicU64,
    /// Tasks that ran on a non-preferred worker (locality violations).
    pub remote_fetches: AtomicU64,
    /// Task attempts lost to injected faults.
    pub task_failures: AtomicU64,
    /// Task re-executions after injected faults.
    pub task_retries: AtomicU64,
    /// Workers blacklisted for repeated injected failures.
    pub worker_blacklists: AtomicU64,
    /// Fixpoint checkpoints captured.
    pub checkpoints: AtomicU64,
    /// Bytes written into the checkpoint store.
    pub checkpoint_bytes: AtomicU64,
    /// Fixpoint restores performed after unrecoverable stage failures.
    pub restores: AtomicU64,
    /// Rows eliminated by map-side combine before a shuffle exchange
    /// (input rows − combined output rows, paper §7.1 Map side).
    pub combined_rows: AtomicU64,
    /// Bytes written to spill files by memory-governed queries.
    pub spilled_bytes: AtomicU64,
    /// Spill files written by memory-governed queries.
    pub spill_files: AtomicU64,
    /// High-water mark of governed memory across queries (a gauge: `reset`
    /// zeroes it, per-query peaks come from the governor, see
    /// `QueryGovernor`).
    pub peak_memory: AtomicU64,
    /// Queries that ended with `Cancelled` or `DeadlineExceeded`.
    pub cancellations: AtomicU64,
    /// Queries admitted by the admission controller.
    pub admitted: AtomicU64,
    /// Queries rejected because the admission wait queue was full.
    pub rejected: AtomicU64,
    /// Result/CSR cache hits (ad-hoc query results and retained CSR graphs
    /// served without recomputation).
    pub cache_hits: AtomicU64,
    /// Cache entries invalidated by base-relation version bumps.
    pub cache_invalidations: AtomicU64,
    /// Materialized-view refreshes that fell back to full recompute.
    pub view_refreshes: AtomicU64,
    /// Materialized-view refreshes served by delta-seeded incremental
    /// maintenance.
    pub view_refreshes_incremental: AtomicU64,
    /// Bytes of converged fixpoint state retained for materialized views
    /// (a gauge, updated after every create/refresh/drop).
    pub retained_bytes: AtomicU64,
    /// Server connections reaped for exceeding the idle keepalive timeout
    /// (half-open clients that vanished without a FIN).
    pub connections_reaped: AtomicU64,
}

impl Metrics {
    /// New zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.stages.store(0, Ordering::Relaxed);
        self.tasks.store(0, Ordering::Relaxed);
        self.shuffle_rows.store(0, Ordering::Relaxed);
        self.shuffle_bytes.store(0, Ordering::Relaxed);
        self.remote_fetch_bytes.store(0, Ordering::Relaxed);
        self.broadcast_bytes.store(0, Ordering::Relaxed);
        self.join_output_rows.store(0, Ordering::Relaxed);
        self.iterations.store(0, Ordering::Relaxed);
        self.remote_fetches.store(0, Ordering::Relaxed);
        self.task_failures.store(0, Ordering::Relaxed);
        self.task_retries.store(0, Ordering::Relaxed);
        self.worker_blacklists.store(0, Ordering::Relaxed);
        self.checkpoints.store(0, Ordering::Relaxed);
        self.checkpoint_bytes.store(0, Ordering::Relaxed);
        self.restores.store(0, Ordering::Relaxed);
        self.combined_rows.store(0, Ordering::Relaxed);
        self.spilled_bytes.store(0, Ordering::Relaxed);
        self.spill_files.store(0, Ordering::Relaxed);
        self.peak_memory.store(0, Ordering::Relaxed);
        self.cancellations.store(0, Ordering::Relaxed);
        self.admitted.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_invalidations.store(0, Ordering::Relaxed);
        self.view_refreshes.store(0, Ordering::Relaxed);
        self.view_refreshes_incremental.store(0, Ordering::Relaxed);
        self.retained_bytes.store(0, Ordering::Relaxed);
        self.connections_reaped.store(0, Ordering::Relaxed);
    }

    /// Raise the peak-memory gauge to at least `v`.
    #[inline]
    pub fn raise_peak(&self, v: u64) {
        self.peak_memory.fetch_max(v, Ordering::Relaxed);
    }

    /// Take a plain-value snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            stages: self.stages.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            shuffle_rows: self.shuffle_rows.load(Ordering::Relaxed),
            shuffle_bytes: self.shuffle_bytes.load(Ordering::Relaxed),
            remote_fetch_bytes: self.remote_fetch_bytes.load(Ordering::Relaxed),
            broadcast_bytes: self.broadcast_bytes.load(Ordering::Relaxed),
            join_output_rows: self.join_output_rows.load(Ordering::Relaxed),
            iterations: self.iterations.load(Ordering::Relaxed),
            remote_fetches: self.remote_fetches.load(Ordering::Relaxed),
            task_failures: self.task_failures.load(Ordering::Relaxed),
            task_retries: self.task_retries.load(Ordering::Relaxed),
            worker_blacklists: self.worker_blacklists.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            restores: self.restores.load(Ordering::Relaxed),
            combined_rows: self.combined_rows.load(Ordering::Relaxed),
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
            spill_files: self.spill_files.load(Ordering::Relaxed),
            peak_memory: self.peak_memory.load(Ordering::Relaxed),
            cancellations: self.cancellations.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_invalidations: self.cache_invalidations.load(Ordering::Relaxed),
            view_refreshes: self.view_refreshes.load(Ordering::Relaxed),
            view_refreshes_incremental: self.view_refreshes_incremental.load(Ordering::Relaxed),
            retained_bytes: self.retained_bytes.load(Ordering::Relaxed),
            connections_reaped: self.connections_reaped.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Stages executed.
    pub stages: u64,
    /// Tasks executed.
    pub tasks: u64,
    /// Rows shuffled.
    pub shuffle_rows: u64,
    /// Bytes shuffled across workers.
    pub shuffle_bytes: u64,
    /// Bytes deep-copied for non-local tasks.
    pub remote_fetch_bytes: u64,
    /// Broadcast bytes.
    pub broadcast_bytes: u64,
    /// Join output rows.
    pub join_output_rows: u64,
    /// Fixpoint iterations.
    pub iterations: u64,
    /// Tasks that ran on a non-preferred worker.
    pub remote_fetches: u64,
    /// Task attempts lost to injected faults.
    pub task_failures: u64,
    /// Task re-executions after injected faults.
    pub task_retries: u64,
    /// Workers blacklisted for repeated injected failures.
    pub worker_blacklists: u64,
    /// Fixpoint checkpoints captured.
    pub checkpoints: u64,
    /// Bytes written into the checkpoint store.
    pub checkpoint_bytes: u64,
    /// Fixpoint restores after unrecoverable stage failures.
    pub restores: u64,
    /// Rows eliminated by map-side combine before shuffle exchanges.
    pub combined_rows: u64,
    /// Bytes written to spill files by memory-governed queries.
    pub spilled_bytes: u64,
    /// Spill files written by memory-governed queries.
    pub spill_files: u64,
    /// High-water mark of governed memory (gauge, not a counter).
    pub peak_memory: u64,
    /// Queries that ended with `Cancelled` or `DeadlineExceeded`.
    pub cancellations: u64,
    /// Queries admitted by the admission controller.
    pub admitted: u64,
    /// Queries rejected because the admission wait queue was full.
    pub rejected: u64,
    /// Result/CSR cache hits.
    pub cache_hits: u64,
    /// Cache entries invalidated by base-relation version bumps.
    pub cache_invalidations: u64,
    /// Materialized-view refreshes that fully recomputed.
    pub view_refreshes: u64,
    /// Materialized-view refreshes served incrementally.
    pub view_refreshes_incremental: u64,
    /// Bytes of retained warm fixpoint state (gauge, not a counter).
    pub retained_bytes: u64,
    /// Server connections reaped by the idle keepalive timeout.
    pub connections_reaped: u64,
}

impl MetricsSnapshot {
    /// Render in Prometheus text exposition format (`# TYPE` line plus a
    /// sample per counter, `rasql_`-prefixed) — what `rasql-server` returns
    /// for its `Metrics` command so any scraper can ingest engine state.
    pub fn prometheus_text(&self) -> String {
        let counters: [(&str, &str, u64); 28] = [
            ("stages_total", "counter", self.stages),
            ("tasks_total", "counter", self.tasks),
            ("shuffle_rows_total", "counter", self.shuffle_rows),
            ("shuffle_bytes_total", "counter", self.shuffle_bytes),
            (
                "remote_fetch_bytes_total",
                "counter",
                self.remote_fetch_bytes,
            ),
            ("broadcast_bytes_total", "counter", self.broadcast_bytes),
            ("join_output_rows_total", "counter", self.join_output_rows),
            ("iterations_total", "counter", self.iterations),
            ("remote_fetches_total", "counter", self.remote_fetches),
            ("task_failures_total", "counter", self.task_failures),
            ("task_retries_total", "counter", self.task_retries),
            ("worker_blacklists_total", "counter", self.worker_blacklists),
            ("checkpoints_total", "counter", self.checkpoints),
            ("checkpoint_bytes_total", "counter", self.checkpoint_bytes),
            ("restores_total", "counter", self.restores),
            ("combined_rows_total", "counter", self.combined_rows),
            ("spilled_bytes_total", "counter", self.spilled_bytes),
            ("spill_files_total", "counter", self.spill_files),
            ("peak_memory_bytes", "gauge", self.peak_memory),
            ("cancellations_total", "counter", self.cancellations),
            ("admitted_total", "counter", self.admitted),
            ("rejected_total", "counter", self.rejected),
            ("cache_hits_total", "counter", self.cache_hits),
            (
                "cache_invalidations_total",
                "counter",
                self.cache_invalidations,
            ),
            ("view_refreshes_total", "counter", self.view_refreshes),
            (
                "view_refreshes_incremental_total",
                "counter",
                self.view_refreshes_incremental,
            ),
            ("retained_bytes", "gauge", self.retained_bytes),
            (
                "connections_reaped_total",
                "counter",
                self.connections_reaped,
            ),
        ];
        let mut out = String::new();
        for (name, kind, value) in counters {
            out.push_str(&format!(
                "# TYPE rasql_{name} {kind}\nrasql_{name} {value}\n"
            ));
        }
        out
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stages={} tasks={} iters={} shuffle={} rows/{} B remote_fetch={}x/{} B broadcast={} B join_out={}",
            self.stages,
            self.tasks,
            self.iterations,
            self.shuffle_rows,
            self.shuffle_bytes,
            self.remote_fetches,
            self.remote_fetch_bytes,
            self.broadcast_bytes,
            self.join_output_rows
        )?;
        if self.task_failures + self.task_retries + self.worker_blacklists > 0 {
            write!(
                f,
                " failures={} retries={} blacklists={}",
                self.task_failures, self.task_retries, self.worker_blacklists
            )?;
        }
        if self.combined_rows > 0 {
            write!(f, " combined_rows={}", self.combined_rows)?;
        }
        if self.checkpoints + self.restores > 0 {
            write!(
                f,
                " checkpoints={}/{} B restores={}",
                self.checkpoints, self.checkpoint_bytes, self.restores
            )?;
        }
        if self.spilled_bytes + self.spill_files > 0 {
            write!(
                f,
                " spilled={} B/{} files",
                self.spilled_bytes, self.spill_files
            )?;
        }
        if self.peak_memory > 0 {
            write!(f, " peak_mem={} B", self.peak_memory)?;
        }
        if self.cancellations + self.rejected > 0 {
            write!(
                f,
                " cancelled={} rejected={}",
                self.cancellations, self.rejected
            )?;
        }
        if self.admitted > 0 {
            write!(f, " admitted={}", self.admitted)?;
        }
        if self.cache_hits + self.cache_invalidations > 0 {
            write!(
                f,
                " cache_hits={} cache_invalidations={}",
                self.cache_hits, self.cache_invalidations
            )?;
        }
        if self.view_refreshes + self.view_refreshes_incremental > 0 {
            write!(
                f,
                " view_refreshes={}+{}incr",
                self.view_refreshes, self.view_refreshes_incremental
            )?;
        }
        if self.retained_bytes > 0 {
            write!(f, " retained={} B", self.retained_bytes)?;
        }
        if self.connections_reaped > 0 {
            write!(f, " conns_reaped={}", self.connections_reaped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_text_exposition() {
        let m = Metrics::new();
        Metrics::add(&m.stages, 3);
        Metrics::add(&m.cancellations, 1);
        let text = m.snapshot().prometheus_text();
        assert!(text.contains("# TYPE rasql_stages_total counter\nrasql_stages_total 3\n"));
        assert!(text.contains("rasql_cancellations_total 1\n"));
        assert!(text.contains("# TYPE rasql_peak_memory_bytes gauge\n"));
        assert!(text.contains("rasql_cache_hits_total 0\n"));
        assert!(text.contains("# TYPE rasql_retained_bytes gauge\n"));
        assert!(text.contains("rasql_view_refreshes_incremental_total 0\n"));
        assert!(text.contains("rasql_connections_reaped_total 0\n"));
    }

    #[test]
    fn snapshot_and_reset() {
        let m = Metrics::new();
        Metrics::add(&m.stages, 3);
        Metrics::add(&m.shuffle_bytes, 100);
        let s = m.snapshot();
        assert_eq!(s.stages, 3);
        assert_eq!(s.shuffle_bytes, 100);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }
}
