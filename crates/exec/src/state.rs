//! Per-partition fixpoint state: the SetRDD analog (§6.1) and the monotone
//! aggregate maps (§6.2).
//!
//! Both structures are *mutable and cached on their worker across iterations*
//! — the paper's key departure from immutable RDDs: the union of the delta
//! into the all-relation only pays for the new items, never a re-copy. Rows
//! carry the round in which they were merged, giving the old/new snapshots the
//! non-linear semi-naive expansion needs.

use rasql_storage::{FxHashMap, FxHashSet, Row, Value};

/// Monotone merge operators for aggregates-in-recursion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonotoneOp {
    /// Keep the minimum.
    Min,
    /// Keep the maximum.
    Max,
    /// Accumulate (sum of positive contributions / continuous count).
    Sum,
}

impl MonotoneOp {
    /// Merge `new` into `cur`; returns the increment actually applied for
    /// `Sum` and whether the value improved for `Min`/`Max`.
    #[inline]
    pub fn merge(&self, cur: &mut Value, new: &Value) -> MergeOutcome {
        match self {
            MonotoneOp::Min => {
                if new < cur {
                    *cur = new.clone();
                    MergeOutcome::Improved
                } else {
                    MergeOutcome::Unchanged
                }
            }
            MonotoneOp::Max => {
                if new > cur {
                    *cur = new.clone();
                    MergeOutcome::Improved
                } else {
                    MergeOutcome::Unchanged
                }
            }
            MonotoneOp::Sum => {
                // A zero increment is no change — propagating it would keep
                // the fixpoint spinning forever.
                if matches!(new.as_f64(), Some(x) if x == 0.0) {
                    return MergeOutcome::Unchanged;
                }
                let next = cur.add(new);
                *cur = next;
                MergeOutcome::Improved
            }
        }
    }
}

/// Result of a monotone merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOutcome {
    /// The stored value changed (delta must propagate).
    Improved,
    /// No change (tuple discarded, per §6.2).
    Unchanged,
}

/// The SetRDD analog: an append-only per-partition set of rows with round
/// stamps.
#[derive(Debug, Default)]
pub struct SetState {
    rows: FxHashMap<Row, u32>,
}

impl SetState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a row at `round`; true if it is new.
    #[inline]
    pub fn insert(&mut self, row: Row, round: u32) -> bool {
        use std::collections::hash_map::Entry;
        match self.rows.entry(row) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(round);
                true
            }
        }
    }

    /// Membership including the current round.
    #[inline]
    pub fn contains(&self, row: &Row) -> bool {
        self.rows.contains_key(row)
    }

    /// Membership in the snapshot *before* `round` was merged.
    #[inline]
    pub fn contained_before(&self, row: &Row, round: u32) -> bool {
        self.rows.get(row).is_some_and(|&r| r < round)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate all rows.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.rows.keys()
    }

    /// Iterate rows merged strictly before `round`.
    pub fn iter_before(&self, round: u32) -> impl Iterator<Item = &Row> + '_ {
        self.rows
            .iter()
            .filter(move |(_, &r)| r < round)
            .map(|(row, _)| row)
    }

    /// Iterate `(row, merge round)` pairs — the full state the checkpoint
    /// codec must capture (round watermarks drive old/new snapshots).
    pub fn iter_with_rounds(&self) -> impl Iterator<Item = (&Row, u32)> {
        self.rows.iter().map(|(row, &r)| (row, r))
    }

    /// Estimated heap footprint, for memory-budget accounting: deep row
    /// sizes plus per-entry map overhead.
    pub fn size_bytes(&self) -> u64 {
        self.rows
            .keys()
            .map(|r| r.size_bytes() as u64 + 16)
            .sum::<u64>()
    }
}

/// One aggregate group's stored state.
#[derive(Debug, Clone)]
pub struct AggEntry {
    /// Current aggregate values (one per aggregate column).
    pub values: Box<[Value]>,
    /// Values before the current round's merges (for old snapshots).
    pub prev: Box<[Value]>,
    /// Round of the last change.
    pub round: u32,
    /// Round in which the group first appeared.
    pub created: u32,
}

/// The monotone aggregate map: group key → aggregate values, with previous
/// values kept for old-snapshot reads, plus an optional contributor set for
/// distinct-tuple counting (Party Attendance-style `count()`).
#[derive(Debug, Default)]
pub struct AggState {
    groups: FxHashMap<Box<[Value]>, AggEntry>,
    /// Distinct contributing tuples (key ++ contribution) already counted.
    contributors: FxHashSet<Box<[Value]>>,
}

/// The result of merging one contribution into an [`AggState`].
#[derive(Debug, Clone, PartialEq)]
pub enum AggMergeResult {
    /// Nothing changed; the tuple is discarded.
    Unchanged,
    /// The group changed; carries the new totals and per-column increments
    /// (increment = new total − old total for Sum; = new value for Min/Max).
    Changed {
        /// New totals after the merge.
        totals: Box<[Value]>,
        /// Per-column increments to propagate to linear sum consumers.
        increments: Box<[Value]>,
    },
}

impl AggState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Merge a contribution `(key, vals)` at `round` with per-column ops.
    ///
    /// `dedup_tuple` — when `Some(tuple)`, the contribution is only applied if
    /// the tuple has not contributed before (distinct-tuple counting mode).
    pub fn merge(
        &mut self,
        key: &[Value],
        vals: &[Value],
        ops: &[MonotoneOp],
        round: u32,
        dedup_tuple: Option<&[Value]>,
    ) -> AggMergeResult {
        debug_assert_eq!(vals.len(), ops.len());
        if let Some(t) = dedup_tuple {
            let boxed: Box<[Value]> = t.to_vec().into_boxed_slice();
            if !self.contributors.insert(boxed) {
                return AggMergeResult::Unchanged;
            }
        }
        use std::collections::hash_map::Entry;
        let key_boxed: Box<[Value]> = key.to_vec().into_boxed_slice();
        match self.groups.entry(key_boxed) {
            Entry::Vacant(slot) => {
                // First contribution: totals = the contribution itself; the
                // "previous" totals are identity values so old snapshots see
                // nothing for this group.
                let totals: Box<[Value]> = vals.to_vec().into_boxed_slice();
                let prev: Box<[Value]> = ops
                    .iter()
                    .map(|op| match op {
                        MonotoneOp::Sum => Value::Int(0),
                        _ => Value::Null,
                    })
                    .collect();
                slot.insert(AggEntry {
                    values: totals.clone(),
                    prev,
                    round,
                    created: round,
                });
                AggMergeResult::Changed {
                    increments: totals.clone(),
                    totals,
                }
            }
            Entry::Occupied(mut slot) => {
                let entry = slot.get_mut();
                if entry.round < round {
                    // First touch this round: snapshot previous totals.
                    entry.prev = entry.values.clone();
                }
                let mut changed = false;
                let mut increments: Vec<Value> = Vec::with_capacity(vals.len());
                for ((cur, new), op) in entry.values.iter_mut().zip(vals).zip(ops) {
                    let before = cur.clone();
                    match op.merge(cur, new) {
                        MergeOutcome::Improved => {
                            changed = true;
                            increments.push(match op {
                                MonotoneOp::Sum => cur.sub(&before),
                                _ => cur.clone(),
                            });
                        }
                        MergeOutcome::Unchanged => increments.push(match op {
                            MonotoneOp::Sum => Value::Int(0),
                            _ => cur.clone(),
                        }),
                    }
                }
                if changed {
                    entry.round = round;
                    AggMergeResult::Changed {
                        totals: entry.values.clone(),
                        increments: increments.into_boxed_slice(),
                    }
                } else {
                    AggMergeResult::Unchanged
                }
            }
        }
    }

    /// Current totals of a group.
    pub fn get(&self, key: &[Value]) -> Option<&[Value]> {
        self.groups.get(key).map(|e| e.values.as_ref())
    }

    /// Totals of a group as of the snapshot before `round`; `None` if the
    /// group did not exist then.
    pub fn get_before(&self, key: &[Value], round: u32) -> Option<Box<[Value]>> {
        let e = self.groups.get(key)?;
        if e.created >= round {
            return None;
        }
        if e.round < round {
            Some(e.values.clone())
        } else {
            Some(e.prev.clone())
        }
    }

    /// Iterate `(key, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], &AggEntry)> {
        self.groups.iter().map(|(k, e)| (k.as_ref(), e))
    }

    /// Iterate the distinct-contributor tuples (checkpoint capture).
    pub fn contributors(&self) -> impl Iterator<Item = &[Value]> {
        self.contributors.iter().map(|t| t.as_ref())
    }

    /// Reinstall a group entry verbatim (checkpoint restore).
    pub fn insert_group(&mut self, key: Box<[Value]>, entry: AggEntry) {
        self.groups.insert(key, entry);
    }

    /// Reinstall a contributor tuple verbatim (checkpoint restore).
    pub fn insert_contributor(&mut self, tuple: Box<[Value]>) {
        self.contributors.insert(tuple);
    }

    /// Estimated heap footprint, for memory-budget accounting: deep sizes of
    /// keys, totals, previous totals, and contributor tuples plus per-entry
    /// overhead.
    pub fn size_bytes(&self) -> u64 {
        let value_bytes =
            |vs: &[Value]| vs.iter().map(Value::size_bytes).sum::<usize>() as u64 + 16;
        let groups: u64 = self
            .groups
            .iter()
            .map(|(k, e)| value_bytes(k) + value_bytes(&e.values) + value_bytes(&e.prev) + 8)
            .sum();
        let contributors: u64 = self.contributors.iter().map(|t| value_bytes(t)).sum();
        groups + contributors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(v: &[i64]) -> Vec<Value> {
        v.iter().map(|&x| Value::Int(x)).collect()
    }

    #[test]
    fn set_state_rounds() {
        let mut s = SetState::new();
        assert!(s.insert(rasql_storage::row::int_row(&[1]), 1));
        assert!(!s.insert(rasql_storage::row::int_row(&[1]), 2));
        assert!(s.insert(rasql_storage::row::int_row(&[2]), 2));
        assert_eq!(s.len(), 2);
        let r1 = rasql_storage::row::int_row(&[1]);
        let r2 = rasql_storage::row::int_row(&[2]);
        assert!(s.contained_before(&r1, 2));
        assert!(!s.contained_before(&r2, 2));
        assert_eq!(s.iter_before(2).count(), 1);
    }

    #[test]
    fn min_merge_keeps_best_and_reports_improvement() {
        let mut st = AggState::new();
        let ops = [MonotoneOp::Min];
        match st.merge(&vals(&[7]), &vals(&[10]), &ops, 1, None) {
            AggMergeResult::Changed { totals, .. } => assert_eq!(totals[0], Value::Int(10)),
            r => panic!("{r:?}"),
        }
        // Worse value discarded.
        assert_eq!(
            st.merge(&vals(&[7]), &vals(&[12]), &ops, 2, None),
            AggMergeResult::Unchanged
        );
        // Better value improves.
        match st.merge(&vals(&[7]), &vals(&[3]), &ops, 2, None) {
            AggMergeResult::Changed { totals, .. } => assert_eq!(totals[0], Value::Int(3)),
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn sum_merge_accumulates_with_increments() {
        let mut st = AggState::new();
        let ops = [MonotoneOp::Sum];
        st.merge(&vals(&[1]), &vals(&[5]), &ops, 1, None);
        match st.merge(&vals(&[1]), &vals(&[3]), &ops, 2, None) {
            AggMergeResult::Changed { totals, increments } => {
                assert_eq!(totals[0], Value::Int(8));
                assert_eq!(increments[0], Value::Int(3));
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn distinct_tuple_dedup() {
        let mut st = AggState::new();
        let ops = [MonotoneOp::Sum];
        let tuple = vals(&[1, 42]);
        assert!(matches!(
            st.merge(&vals(&[1]), &vals(&[1]), &ops, 1, Some(&tuple)),
            AggMergeResult::Changed { .. }
        ));
        // Same contributing tuple again: ignored.
        assert_eq!(
            st.merge(&vals(&[1]), &vals(&[1]), &ops, 2, Some(&tuple)),
            AggMergeResult::Unchanged
        );
        // New tuple counts.
        let tuple2 = vals(&[1, 43]);
        assert!(matches!(
            st.merge(&vals(&[1]), &vals(&[1]), &ops, 2, Some(&tuple2)),
            AggMergeResult::Changed { .. }
        ));
        assert_eq!(st.get(&vals(&[1])).unwrap()[0], Value::Int(2));
    }

    #[test]
    fn old_snapshot_semantics() {
        let mut st = AggState::new();
        let ops = [MonotoneOp::Sum];
        st.merge(&vals(&[1]), &vals(&[10]), &ops, 1, None);
        st.merge(&vals(&[1]), &vals(&[5]), &ops, 3, None);
        // Before round 3: total was 10.
        assert_eq!(st.get_before(&vals(&[1]), 3).unwrap()[0], Value::Int(10));
        // Group created in round 1 didn't exist before round 1.
        assert_eq!(st.get_before(&vals(&[1]), 1), None);
        // Current total.
        assert_eq!(st.get(&vals(&[1])).unwrap()[0], Value::Int(15));
    }

    #[test]
    fn multi_column_aggregates() {
        let mut st = AggState::new();
        let ops = [MonotoneOp::Min, MonotoneOp::Max];
        st.merge(&vals(&[1]), &vals(&[5, 5]), &ops, 1, None);
        match st.merge(&vals(&[1]), &vals(&[3, 9]), &ops, 2, None) {
            AggMergeResult::Changed { totals, .. } => {
                assert_eq!(totals.as_ref(), &vals(&[3, 9])[..]);
            }
            r => panic!("{r:?}"),
        }
    }
}
