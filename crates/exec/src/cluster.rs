//! The cluster: a pool of worker threads executing *stages* of tasks with a
//! pluggable locality policy.
//!
//! A stage is a set of tasks separated from the next stage by a barrier —
//! exactly Spark's ShuffleMap/Result stage model. With `partition_aware`
//! scheduling (paper §6.1) each task runs on its preferred worker (the home of
//! its input partition); otherwise a drifting round-robin models Spark's
//! default hybrid policy, which ignores inter-iteration locality and thereby
//! forces remote fetches.
//!
//! # Fault tolerance
//!
//! When a [`FaultSpec`] is configured, each task attempt is assigned a
//! deterministic fate by the [`FaultInjector`] *before its body runs* (a
//! worker crashing at task receipt). Injected failures are retried with
//! bounded exponential backoff, up to `max_task_retries` times; a worker that
//! keeps failing is blacklisted and subsequent retries are placed elsewhere
//! (paying the remote-fetch cost, which the metrics record). Genuine task
//! panics are caught with `catch_unwind` and surfaced as a typed
//! [`ExecError`] — they are *not* retried, because a panicking body may have
//! partially mutated per-partition state (the price of the paper's mutable
//! SetRDD design; see DESIGN.md "Fault tolerance").

use crate::error::ExecError;
use crate::fault::{FaultInjector, FaultSpec, TaskFault};
use crate::metrics::Metrics;
use crate::trace::{RecoveryEvent, RecoveryKind, StageKind, StageSpan, TraceSink};
use crossbeam::channel::{unbounded, Sender};
use rasql_storage::sync::{LockRank, RankedMutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated workers (threads). The paper's cluster had 15
    /// worker nodes; the laptop default is the physical core count.
    pub workers: usize,
    /// Partition-aware scheduling (§6.1). When off, tasks drift across
    /// workers between stages and pay deep-copy "remote fetches".
    pub partition_aware: bool,
    /// Fixed per-stage scheduling latency. A real Spark driver pays
    /// milliseconds per stage for task serialization, dispatch and barrier
    /// bookkeeping — the cost the paper's stage-combination optimization
    /// (§7.1) halves. A local simulator's dispatch is near-free, so the
    /// latency is modeled explicitly (and can be zeroed for pure-compute
    /// microbenchmarks).
    pub stage_latency: Duration,
    /// Deterministic fault injection; `None` disables all failure paths.
    pub fault_spec: Option<FaultSpec>,
    /// Retries per task for injected failures (attempts = 1 + retries).
    pub max_task_retries: u32,
    /// Base backoff before the first retry; doubles per subsequent retry.
    pub retry_backoff: Duration,
    /// Injected failures on one worker before it is blacklisted.
    pub blacklist_after: u32,
}

/// Default per-stage scheduler latency (a conservative Spark-like figure).
pub const DEFAULT_STAGE_LATENCY: Duration = Duration::from_millis(2);

/// Default retry budget for injected task failures.
pub const DEFAULT_MAX_TASK_RETRIES: u32 = 3;

/// Default base backoff before a task retry.
pub const DEFAULT_RETRY_BACKOFF: Duration = Duration::from_micros(200);

/// Default injected-failure count that blacklists a worker.
pub const DEFAULT_BLACKLIST_AFTER: u32 = 3;

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            partition_aware: true,
            stage_latency: DEFAULT_STAGE_LATENCY,
            fault_spec: None,
            max_task_retries: DEFAULT_MAX_TASK_RETRIES,
            retry_backoff: DEFAULT_RETRY_BACKOFF,
            blacklist_after: DEFAULT_BLACKLIST_AFTER,
        }
    }
}

impl ClusterConfig {
    /// Config with a fixed worker count.
    pub fn with_workers(workers: usize) -> Self {
        ClusterConfig {
            workers: workers.max(1),
            ..Default::default()
        }
    }
}

type Job = Box<dyn FnOnce(usize) + Send + 'static>;
type TaskBody<R> = Box<dyn FnOnce(usize) -> R + Send + 'static>;

/// One task of a stage: a closure plus the worker that owns its input.
pub struct StageTask<R> {
    /// The worker that holds this task's input partition.
    pub preferred_worker: usize,
    /// The task body; receives the worker id it actually runs on.
    pub run: TaskBody<R>,
}

impl<R> StageTask<R> {
    /// Build a task.
    pub fn new(preferred_worker: usize, run: impl FnOnce(usize) -> R + Send + 'static) -> Self {
        StageTask {
            preferred_worker,
            run: Box::new(run),
        }
    }
}

/// What a worker sends back for one task attempt.
enum TaskOutcome<R> {
    /// The body ran to completion.
    Done(R),
    /// An injected fault fired *before* the body ran; the un-consumed body
    /// travels back so the driver can re-dispatch it.
    Faulted {
        body: TaskBody<R>,
        fault: TaskFault,
        worker: usize,
    },
    /// The body panicked (body consumed — not retryable).
    Panicked { worker: usize, message: String },
}

/// Per-worker health bookkeeping for blacklisting.
#[derive(Debug, Default)]
struct WorkerHealth {
    failures: Vec<u32>,
    blacklisted: Vec<bool>,
}

/// The simulated cluster.
pub struct Cluster {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    /// Shared metrics.
    pub metrics: Arc<Metrics>,
    config: ClusterConfig,
    stage_seq: AtomicU64,
    injector: Option<FaultInjector>,
    health: RankedMutex<WorkerHealth>,
}

impl Cluster {
    /// Start a cluster.
    pub fn new(config: ClusterConfig) -> Self {
        let mut senders = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let (tx, rx) = unbounded::<Job>();
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rasql-worker-{w}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job(w);
                        }
                    })
                    // lint: allow(RL0002, OS thread spawn at pool construction; resource exhaustion here has no recovery path)
                    .expect("spawn worker"),
            );
        }
        let injector = config
            .fault_spec
            .filter(FaultSpec::is_active)
            .map(FaultInjector::new);
        let health = RankedMutex::new(
            LockRank::ClusterHealth,
            WorkerHealth {
                failures: vec![0; config.workers],
                blacklisted: vec![false; config.workers],
            },
        );
        Cluster {
            senders,
            handles,
            metrics: Arc::new(Metrics::new()),
            config,
            stage_seq: AtomicU64::new(0),
            injector,
            health,
        }
    }

    /// Start a cluster with default config.
    pub fn default_local() -> Self {
        Cluster::new(ClusterConfig::default())
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Whether partition-aware scheduling is active.
    pub fn partition_aware(&self) -> bool {
        self.config.partition_aware
    }

    /// The fault spec driving the injector, if fault injection is active.
    pub fn fault_spec(&self) -> Option<&FaultSpec> {
        self.injector.as_ref().map(FaultInjector::spec)
    }

    /// Workers currently blacklisted for retry placement.
    pub fn blacklisted_workers(&self) -> Vec<usize> {
        self.health
            .lock()
            .blacklisted
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(w, _)| w)
            .collect()
    }

    /// The home worker of a partition id.
    #[inline]
    pub fn owner_of(&self, partition: usize) -> usize {
        partition % self.config.workers
    }

    /// Run one stage: execute all tasks (respecting the locality policy),
    /// barrier, and return results in task order.
    ///
    /// Task panics and exhausted retry budgets come back as [`ExecError`] —
    /// nothing in the driver panics on a worker failure.
    pub fn run_stage<R: Send + 'static>(
        &self,
        tasks: Vec<StageTask<R>>,
    ) -> Result<Vec<R>, ExecError> {
        self.run_stage_traced(None, "stage", StageKind::Generic, tasks)
    }

    /// [`Cluster::run_stage`] that additionally records a [`StageSpan`] into
    /// `sink` (when given): dispatch time (scheduler latency + task enqueue),
    /// run time (dispatch end to first task result), and barrier time (first
    /// result to last — the straggler wait).
    ///
    /// Task panics and exhausted retry budgets come back as [`ExecError`]
    /// instead of unwinding across the result channel. Guaranteed quiescent
    /// on return — every dispatched task attempt has completed (successfully
    /// or not), so callers may safely restore shared state afterwards.
    pub fn run_stage_traced<R: Send + 'static>(
        &self,
        sink: Option<&TraceSink>,
        label: &str,
        kind: StageKind,
        tasks: Vec<StageTask<R>>,
    ) -> Result<Vec<R>, ExecError> {
        let n = tasks.len();
        let t_start = Instant::now();
        if !self.config.stage_latency.is_zero() {
            // lint: allow(RL0004, simulated per-stage scheduling latency is the point of the knob)
            std::thread::sleep(self.config.stage_latency);
        }
        Metrics::add(&self.metrics.stages, 1);
        Metrics::add(&self.metrics.tasks, n as u64);
        let seq = self.stage_seq.fetch_add(1, Ordering::Relaxed);

        let (done_tx, done_rx) = unbounded::<(usize, TaskOutcome<R>)>();
        let mut prefs = Vec::with_capacity(n);
        for (i, task) in tasks.into_iter().enumerate() {
            let worker = if self.config.partition_aware {
                task.preferred_worker % self.config.workers
            } else {
                // Spark's default hybrid policy is oblivious to iteration
                // locality: model it as a per-stage drift so a partition's
                // task lands on a different worker each stage.
                (task.preferred_worker + 1 + seq as usize) % self.config.workers
            };
            prefs.push(task.preferred_worker);
            self.dispatch(worker, i, seq, 1, task.run, &done_tx)?;
        }

        let t_dispatched = Instant::now();
        let mut t_first: Option<Instant> = None;
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut attempts: Vec<u32> = vec![1; n];
        let mut total_attempts = n as u64;
        let mut pending = n;
        let mut fatal: Option<ExecError> = None;
        while pending > 0 {
            let Ok((i, outcome)) = done_rx.recv() else {
                // Every worker hung up mid-stage: the pool is gone. Surface
                // a typed error instead of panicking the driver thread.
                return Err(ExecError::TaskPanicked {
                    stage: label.to_string(),
                    task: 0,
                    worker: 0,
                    message: "worker pool disconnected mid-stage".into(),
                });
            };
            match outcome {
                TaskOutcome::Done(r) => {
                    t_first.get_or_insert_with(Instant::now);
                    results[i] = Some(r);
                    pending -= 1;
                }
                TaskOutcome::Panicked { worker, message } => {
                    pending -= 1;
                    if fatal.is_none() {
                        fatal = Some(ExecError::TaskPanicked {
                            stage: label.to_string(),
                            task: i,
                            worker,
                            message,
                        });
                    }
                }
                TaskOutcome::Faulted {
                    body,
                    fault,
                    worker,
                } => {
                    Metrics::add(&self.metrics.task_failures, 1);
                    if self.note_failure(worker) {
                        Metrics::add(&self.metrics.worker_blacklists, 1);
                        if let Some(sink) = sink {
                            sink.record_recovery(RecoveryEvent {
                                kind: RecoveryKind::Blacklist,
                                stage: label.to_string(),
                                round: 0,
                                detail: format!(
                                    "worker {worker} blacklisted after {} injected failures",
                                    self.config.blacklist_after
                                ),
                            });
                        }
                    }
                    // Once the stage is doomed, drain instead of retrying.
                    if fatal.is_some() || attempts[i] > self.config.max_task_retries {
                        pending -= 1;
                        if fatal.is_none() {
                            fatal = Some(ExecError::RetriesExhausted {
                                stage: label.to_string(),
                                task: i,
                                attempts: attempts[i],
                                fault: fault.name().to_string(),
                            });
                        }
                        continue;
                    }
                    let prior = attempts[i];
                    attempts[i] += 1;
                    total_attempts += 1;
                    Metrics::add(&self.metrics.task_retries, 1);
                    if let Some(sink) = sink {
                        sink.record_recovery(RecoveryEvent {
                            kind: RecoveryKind::TaskRetry,
                            stage: label.to_string(),
                            round: 0,
                            detail: format!(
                                "task {i} attempt {} after injected {} on worker {worker}",
                                attempts[i],
                                fault.name()
                            ),
                        });
                    }
                    // Bounded exponential backoff: base × 2^(retries so far).
                    let backoff = self
                        .config
                        .retry_backoff
                        .saturating_mul(1u32 << (prior - 1).min(10));
                    if !backoff.is_zero() {
                        // lint: allow(RL0004, bounded retry backoff between task attempts)
                        std::thread::sleep(backoff.min(Duration::from_millis(100)));
                    }
                    let target = self.retry_worker(prefs[i], attempts[i]);
                    self.dispatch(target, i, seq, attempts[i], body, &done_tx)?;
                }
            }
        }
        if let Some(err) = fatal {
            return Err(err);
        }
        if let Some(sink) = sink {
            let t_end = Instant::now();
            let first = t_first.unwrap_or(t_dispatched);
            sink.record_stage(StageSpan {
                label: label.to_string(),
                kind,
                tasks: n as u64,
                attempts: total_attempts,
                dispatch_us: (t_dispatched - t_start).as_micros() as u64,
                run_us: (first - t_dispatched).as_micros() as u64,
                barrier_us: (t_end - first).as_micros() as u64,
                total_us: (t_end - t_start).as_micros() as u64,
            });
        }
        let mut out = Vec::with_capacity(n);
        for (i, slot) in results.into_iter().enumerate() {
            // A missing result with no fatal error means the accounting above
            // is broken; keep the invariant typed rather than panicking.
            out.push(slot.ok_or_else(|| ExecError::TaskPanicked {
                stage: label.to_string(),
                task: i,
                worker: 0,
                message: "task completed without producing a result".into(),
            })?);
        }
        Ok(out)
    }

    /// Enqueue one attempt of a task on `worker`. The fault fate is decided
    /// *here* from `(stage, task, attempt)` — never from placement — so the
    /// injected schedule is identical across runs regardless of blacklisting.
    fn dispatch<R: Send + 'static>(
        &self,
        worker: usize,
        i: usize,
        seq: u64,
        attempt: u32,
        body: TaskBody<R>,
        done_tx: &Sender<(usize, TaskOutcome<R>)>,
    ) -> Result<(), ExecError> {
        let fault = self
            .injector
            .as_ref()
            .map(|inj| inj.decide(seq, i as u64, attempt))
            .unwrap_or(TaskFault::None);
        let tx = done_tx.clone();
        self.senders[worker]
            .send(Box::new(move |w| {
                let outcome = match fault {
                    TaskFault::Kill | TaskFault::LoseOutput => TaskOutcome::Faulted {
                        body,
                        fault,
                        worker: w,
                    },
                    TaskFault::None | TaskFault::Delay(_) => {
                        if let TaskFault::Delay(d) = fault {
                            // lint: allow(RL0004, injected Delay fault IS a sleep by definition)
                            std::thread::sleep(d);
                        }
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                            body(w)
                        })) {
                            Ok(r) => TaskOutcome::Done(r),
                            Err(payload) => TaskOutcome::Panicked {
                                worker: w,
                                message: panic_message(payload.as_ref()),
                            },
                        }
                    }
                };
                let _ = tx.send((i, outcome));
            }))
            .map_err(|_| ExecError::WorkerUnavailable { task: i, worker })
    }

    /// Record an injected failure on `worker`; true if this crossed the
    /// blacklist threshold (a worker is never blacklisted if it would leave
    /// no eligible workers).
    fn note_failure(&self, worker: usize) -> bool {
        let mut h = self.health.lock();
        h.failures[worker] += 1;
        let eligible = h.blacklisted.iter().filter(|&&b| !b).count();
        if !h.blacklisted[worker]
            && h.failures[worker] >= self.config.blacklist_after
            && eligible > 1
        {
            h.blacklisted[worker] = true;
            return true;
        }
        false
    }

    /// Placement for a retry: scan from `preferred + attempt` for the first
    /// non-blacklisted worker, falling back to the preferred worker.
    fn retry_worker(&self, preferred: usize, attempt: u32) -> usize {
        let w = self.config.workers;
        let h = self.health.lock();
        let start = (preferred + attempt as usize) % w;
        let preferred = preferred % w;
        // Prefer home if healthy; otherwise the first healthy worker from a
        // drifted start so consecutive retries spread out.
        if !h.blacklisted[preferred] {
            return preferred;
        }
        for off in 0..w {
            let c = (start + off) % w;
            if !h.blacklisted[c] {
                return c;
            }
        }
        preferred
    }

    /// Run one closure per worker (e.g. installing a broadcast value).
    pub fn run_on_all_workers<R: Send + 'static>(
        &self,
        f: impl Fn(usize) -> R + Send + Sync + 'static,
    ) -> Result<Vec<R>, ExecError> {
        self.run_on_all_workers_traced(None, "all-workers", StageKind::Generic, f)
    }

    /// [`Cluster::run_on_all_workers`] with stage-span recording.
    pub fn run_on_all_workers_traced<R: Send + 'static>(
        &self,
        sink: Option<&TraceSink>,
        label: &str,
        kind: StageKind,
        f: impl Fn(usize) -> R + Send + Sync + 'static,
    ) -> Result<Vec<R>, ExecError> {
        let f = Arc::new(f);
        let tasks = (0..self.config.workers)
            .map(|w| {
                let f = Arc::clone(&f);
                StageTask::new(w, move |wid| f(wid))
            })
            .collect();
        self.run_stage_traced(sink, label, kind, tasks)
    }
}

/// Stringify a panic payload (the common `&str` / `String` cases).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Close channels so workers exit, then join.
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_runs_all_tasks_in_order() {
        let c = Cluster::new(ClusterConfig::with_workers(4));
        let results = c
            .run_stage(
                (0..16)
                    .map(|i| StageTask::new(i, move |_w| i * 2))
                    .collect(),
            )
            .unwrap();
        assert_eq!(results, (0..16).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(c.metrics.snapshot().stages, 1);
        assert_eq!(c.metrics.snapshot().tasks, 16);
    }

    #[test]
    fn partition_aware_runs_on_preferred_worker() {
        let c = Cluster::new(ClusterConfig::with_workers(4));
        let placements = c
            .run_stage(
                (0..8)
                    .map(|p| StageTask::new(p % 4, move |w| w))
                    .collect::<Vec<StageTask<usize>>>(),
            )
            .unwrap();
        for (p, w) in placements.iter().enumerate() {
            assert_eq!(*w, p % 4);
        }
    }

    #[test]
    fn non_aware_drifts_across_stages() {
        let c = Cluster::new(ClusterConfig {
            workers: 4,
            partition_aware: false,
            ..Default::default()
        });
        let a = c.run_stage(vec![StageTask::new(0, |w| w)]).unwrap();
        let b = c.run_stage(vec![StageTask::new(0, |w| w)]).unwrap();
        assert_ne!(a[0], b[0], "drift expected between stages");
    }

    #[test]
    fn run_on_all_workers_covers_each() {
        let c = Cluster::new(ClusterConfig::with_workers(3));
        let mut ws = c.run_on_all_workers(|w| w).unwrap();
        ws.sort_unstable();
        assert_eq!(ws, vec![0, 1, 2]);
    }

    #[test]
    fn traced_stage_records_span() {
        let c = Cluster::new(ClusterConfig::with_workers(2));
        let sink = TraceSink::new();
        let out = c
            .run_stage_traced(
                Some(&sink),
                "unit",
                StageKind::Map,
                (0..4)
                    .map(|i| StageTask::new(i, move |_w| i + 1))
                    .collect::<Vec<StageTask<usize>>>(),
            )
            .unwrap();
        assert_eq!(out, vec![1, 2, 3, 4]);
        let t = sink.finish(Duration::from_millis(1), c.metrics.snapshot());
        assert_eq!(t.stages.len(), 1);
        let s = &t.stages[0];
        assert_eq!(s.label, "unit");
        assert_eq!(s.kind, StageKind::Map);
        assert_eq!(s.tasks, 4);
        assert_eq!(s.attempts, 4);
        // Dispatch includes the configured 2ms stage latency.
        assert!(s.dispatch_us >= 1000, "dispatch {}us", s.dispatch_us);
        assert!(s.total_us >= s.dispatch_us);
    }

    #[test]
    fn task_panic_is_a_typed_error() {
        let c = Cluster::new(ClusterConfig::with_workers(2));
        let tasks: Vec<StageTask<usize>> = (0..4)
            .map(|i| {
                StageTask::new(i, move |_w| {
                    if i == 2 {
                        panic!("boom {i}");
                    }
                    i
                })
            })
            .collect();
        match c.run_stage(tasks) {
            Err(ExecError::TaskPanicked { task, message, .. }) => {
                assert_eq!(task, 2);
                assert!(message.contains("boom"), "{message}");
            }
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
        // The cluster survives: a later stage still works.
        let ok = c.run_stage(vec![StageTask::new(0, |_w| 7usize)]).unwrap();
        assert_eq!(ok, vec![7]);
    }

    #[test]
    fn injected_kills_are_retried_to_success() {
        let c = Cluster::new(ClusterConfig {
            workers: 4,
            stage_latency: Duration::ZERO,
            fault_spec: Some(FaultSpec {
                kill: 0.4,
                seed: 11,
                ..Default::default()
            }),
            max_task_retries: 8,
            ..ClusterConfig::default()
        });
        for _ in 0..10 {
            let out = c
                .run_stage((0..8).map(|i| StageTask::new(i, move |_w| i)).collect())
                .expect("retries absorb injected kills");
            assert_eq!(out, (0..8).collect::<Vec<_>>());
        }
        let m = c.metrics.snapshot();
        assert!(m.task_failures > 0, "faults should have fired: {m}");
        assert_eq!(m.task_failures, m.task_retries);
    }

    #[test]
    fn zero_retries_surface_exhaustion() {
        let c = Cluster::new(ClusterConfig {
            workers: 2,
            stage_latency: Duration::ZERO,
            fault_spec: Some(FaultSpec {
                kill: 1.0,
                seed: 1,
                ..Default::default()
            }),
            max_task_retries: 0,
            ..ClusterConfig::default()
        });
        match c.run_stage((0..2).map(|i| StageTask::new(i, move |_w| i)).collect()) {
            Err(ExecError::RetriesExhausted {
                attempts, fault, ..
            }) => {
                assert_eq!(attempts, 1);
                assert_eq!(fault, "kill");
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn fault_schedule_is_reproducible() {
        let run = || {
            let c = Cluster::new(ClusterConfig {
                workers: 4,
                stage_latency: Duration::ZERO,
                fault_spec: Some(FaultSpec {
                    kill: 0.3,
                    loss: 0.1,
                    seed: 77,
                    ..Default::default()
                }),
                max_task_retries: 10,
                ..ClusterConfig::default()
            });
            for _ in 0..5 {
                c.run_stage((0..8).map(|i| StageTask::new(i, move |_w| i)).collect())
                    .unwrap();
            }
            let m = c.metrics.snapshot();
            (m.task_failures, m.task_retries)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn repeated_failures_blacklist_a_worker() {
        let c = Cluster::new(ClusterConfig {
            workers: 4,
            stage_latency: Duration::ZERO,
            fault_spec: Some(FaultSpec {
                kill: 0.5,
                seed: 3,
                ..Default::default()
            }),
            max_task_retries: 12,
            blacklist_after: 2,
            ..ClusterConfig::default()
        });
        for _ in 0..10 {
            c.run_stage(
                (0..8)
                    .map(|i| StageTask::new(i, move |_w| i))
                    .collect::<Vec<StageTask<usize>>>(),
            )
            .unwrap();
        }
        assert!(
            !c.blacklisted_workers().is_empty(),
            "kill=0.5 over 80 tasks should blacklist someone"
        );
        assert!(c.metrics.snapshot().worker_blacklists > 0);
        // Blacklisting never removes the last eligible worker.
        assert!(c.blacklisted_workers().len() < 4);
    }

    #[test]
    fn parallel_speedup_is_real() {
        // Sanity check that tasks actually run concurrently: 4 tasks of ~20ms
        // on 4 workers should take well under 4×20ms. Timing is only
        // meaningful with real parallelism, so skip on single-core hosts.
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            < 2
        {
            return;
        }
        let c = Cluster::new(ClusterConfig::with_workers(4));
        let t0 = std::time::Instant::now();
        c.run_stage(
            (0..4)
                .map(|i| {
                    StageTask::new(i, |_w| {
                        let mut acc = 0u64;
                        for x in 0..4_000_000u64 {
                            acc = acc.wrapping_add(x * x);
                        }
                        acc
                    })
                })
                .collect::<Vec<StageTask<u64>>>(),
        )
        .unwrap();
        let par = t0.elapsed();
        let t1 = std::time::Instant::now();
        for _ in 0..4 {
            let mut acc = 0u64;
            for x in 0..4_000_000u64 {
                acc = acc.wrapping_add(x * x);
            }
            std::hint::black_box(acc);
        }
        let ser = t1.elapsed();
        assert!(par < ser, "parallel {par:?} not faster than serial {ser:?}");
    }
}
