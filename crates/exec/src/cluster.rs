//! The cluster: a pool of worker threads executing *stages* of tasks with a
//! pluggable locality policy.
//!
//! A stage is a set of tasks separated from the next stage by a barrier —
//! exactly Spark's ShuffleMap/Result stage model. With `partition_aware`
//! scheduling (paper §6.1) each task runs on its preferred worker (the home of
//! its input partition); otherwise a drifting round-robin models Spark's
//! default hybrid policy, which ignores inter-iteration locality and thereby
//! forces remote fetches.

use crate::metrics::Metrics;
use crate::trace::{StageKind, StageSpan, TraceSink};
use crossbeam::channel::{unbounded, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated workers (threads). The paper's cluster had 15
    /// worker nodes; the laptop default is the physical core count.
    pub workers: usize,
    /// Partition-aware scheduling (§6.1). When off, tasks drift across
    /// workers between stages and pay deep-copy "remote fetches".
    pub partition_aware: bool,
    /// Fixed per-stage scheduling latency. A real Spark driver pays
    /// milliseconds per stage for task serialization, dispatch and barrier
    /// bookkeeping — the cost the paper's stage-combination optimization
    /// (§7.1) halves. A local simulator's dispatch is near-free, so the
    /// latency is modeled explicitly (and can be zeroed for pure-compute
    /// microbenchmarks).
    pub stage_latency: Duration,
}

/// Default per-stage scheduler latency (a conservative Spark-like figure).
pub const DEFAULT_STAGE_LATENCY: Duration = Duration::from_millis(2);

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            partition_aware: true,
            stage_latency: DEFAULT_STAGE_LATENCY,
        }
    }
}

impl ClusterConfig {
    /// Config with a fixed worker count.
    pub fn with_workers(workers: usize) -> Self {
        ClusterConfig {
            workers: workers.max(1),
            ..Default::default()
        }
    }
}

type Job = Box<dyn FnOnce(usize) + Send + 'static>;

/// One task of a stage: a closure plus the worker that owns its input.
pub struct StageTask<R> {
    /// The worker that holds this task's input partition.
    pub preferred_worker: usize,
    /// The task body; receives the worker id it actually runs on.
    pub run: Box<dyn FnOnce(usize) -> R + Send + 'static>,
}

impl<R> StageTask<R> {
    /// Build a task.
    pub fn new(preferred_worker: usize, run: impl FnOnce(usize) -> R + Send + 'static) -> Self {
        StageTask {
            preferred_worker,
            run: Box::new(run),
        }
    }
}

/// The simulated cluster.
pub struct Cluster {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    /// Shared metrics.
    pub metrics: Arc<Metrics>,
    config: ClusterConfig,
    stage_seq: AtomicU64,
}

impl Cluster {
    /// Start a cluster.
    pub fn new(config: ClusterConfig) -> Self {
        let mut senders = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let (tx, rx) = unbounded::<Job>();
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rasql-worker-{w}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job(w);
                        }
                    })
                    .expect("spawn worker"),
            );
        }
        Cluster {
            senders,
            handles,
            metrics: Arc::new(Metrics::new()),
            config,
            stage_seq: AtomicU64::new(0),
        }
    }

    /// Start a cluster with default config.
    pub fn default_local() -> Self {
        Cluster::new(ClusterConfig::default())
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Whether partition-aware scheduling is active.
    pub fn partition_aware(&self) -> bool {
        self.config.partition_aware
    }

    /// The home worker of a partition id.
    #[inline]
    pub fn owner_of(&self, partition: usize) -> usize {
        partition % self.config.workers
    }

    /// Run one stage: execute all tasks (respecting the locality policy),
    /// barrier, and return results in task order.
    pub fn run_stage<R: Send + 'static>(&self, tasks: Vec<StageTask<R>>) -> Vec<R> {
        self.run_stage_traced(None, "stage", StageKind::Generic, tasks)
    }

    /// [`Cluster::run_stage`] that additionally records a [`StageSpan`] into
    /// `sink` (when given): dispatch time (scheduler latency + task enqueue),
    /// run time (dispatch end to first task result), and barrier time (first
    /// result to last — the straggler wait).
    pub fn run_stage_traced<R: Send + 'static>(
        &self,
        sink: Option<&TraceSink>,
        label: &str,
        kind: StageKind,
        tasks: Vec<StageTask<R>>,
    ) -> Vec<R> {
        let n = tasks.len();
        let t_start = Instant::now();
        if !self.config.stage_latency.is_zero() {
            std::thread::sleep(self.config.stage_latency);
        }
        Metrics::add(&self.metrics.stages, 1);
        Metrics::add(&self.metrics.tasks, n as u64);
        let seq = self.stage_seq.fetch_add(1, Ordering::Relaxed);

        let (done_tx, done_rx) = unbounded::<(usize, R)>();
        for (i, task) in tasks.into_iter().enumerate() {
            let worker = if self.config.partition_aware {
                task.preferred_worker % self.config.workers
            } else {
                // Spark's default hybrid policy is oblivious to iteration
                // locality: model it as a per-stage drift so a partition's
                // task lands on a different worker each stage.
                (task.preferred_worker + 1 + seq as usize) % self.config.workers
            };
            let tx = done_tx.clone();
            let body = task.run;
            self.senders[worker]
                .send(Box::new(move |w| {
                    let r = body(w);
                    let _ = tx.send((i, r));
                }))
                .expect("worker alive");
        }
        drop(done_tx);
        let t_dispatched = Instant::now();
        let mut t_first: Option<Instant> = None;
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, r) = done_rx.recv().expect("task result");
            t_first.get_or_insert_with(Instant::now);
            results[i] = Some(r);
        }
        if let Some(sink) = sink {
            let t_end = Instant::now();
            let first = t_first.unwrap_or(t_dispatched);
            sink.record_stage(StageSpan {
                label: label.to_string(),
                kind,
                tasks: n as u64,
                dispatch_us: (t_dispatched - t_start).as_micros() as u64,
                run_us: (first - t_dispatched).as_micros() as u64,
                barrier_us: (t_end - first).as_micros() as u64,
                total_us: (t_end - t_start).as_micros() as u64,
            });
        }
        results.into_iter().map(Option::unwrap).collect()
    }

    /// Run one closure per worker (e.g. installing a broadcast value).
    pub fn run_on_all_workers<R: Send + 'static>(
        &self,
        f: impl Fn(usize) -> R + Send + Sync + 'static,
    ) -> Vec<R> {
        self.run_on_all_workers_traced(None, "all-workers", StageKind::Generic, f)
    }

    /// [`Cluster::run_on_all_workers`] with stage-span recording.
    pub fn run_on_all_workers_traced<R: Send + 'static>(
        &self,
        sink: Option<&TraceSink>,
        label: &str,
        kind: StageKind,
        f: impl Fn(usize) -> R + Send + Sync + 'static,
    ) -> Vec<R> {
        let f = Arc::new(f);
        let tasks = (0..self.config.workers)
            .map(|w| {
                let f = Arc::clone(&f);
                StageTask::new(w, move |wid| f(wid))
            })
            .collect();
        self.run_stage_traced(sink, label, kind, tasks)
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Close channels so workers exit, then join.
        self.senders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_runs_all_tasks_in_order() {
        let c = Cluster::new(ClusterConfig::with_workers(4));
        let results = c.run_stage(
            (0..16)
                .map(|i| StageTask::new(i, move |_w| i * 2))
                .collect(),
        );
        assert_eq!(results, (0..16).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(c.metrics.snapshot().stages, 1);
        assert_eq!(c.metrics.snapshot().tasks, 16);
    }

    #[test]
    fn partition_aware_runs_on_preferred_worker() {
        let c = Cluster::new(ClusterConfig::with_workers(4));
        let placements = c.run_stage(
            (0..8)
                .map(|p| StageTask::new(p % 4, move |w| w))
                .collect::<Vec<StageTask<usize>>>(),
        );
        for (p, w) in placements.iter().enumerate() {
            assert_eq!(*w, p % 4);
        }
    }

    #[test]
    fn non_aware_drifts_across_stages() {
        let c = Cluster::new(ClusterConfig {
            workers: 4,
            partition_aware: false,
            ..Default::default()
        });
        let a = c.run_stage(vec![StageTask::new(0, |w| w)]);
        let b = c.run_stage(vec![StageTask::new(0, |w| w)]);
        assert_ne!(a[0], b[0], "drift expected between stages");
    }

    #[test]
    fn run_on_all_workers_covers_each() {
        let c = Cluster::new(ClusterConfig::with_workers(3));
        let mut ws = c.run_on_all_workers(|w| w);
        ws.sort_unstable();
        assert_eq!(ws, vec![0, 1, 2]);
    }

    #[test]
    fn traced_stage_records_span() {
        let c = Cluster::new(ClusterConfig::with_workers(2));
        let sink = TraceSink::new();
        let out = c.run_stage_traced(
            Some(&sink),
            "unit",
            StageKind::Map,
            (0..4)
                .map(|i| StageTask::new(i, move |_w| i + 1))
                .collect::<Vec<StageTask<usize>>>(),
        );
        assert_eq!(out, vec![1, 2, 3, 4]);
        let t = sink.finish(Duration::from_millis(1), c.metrics.snapshot());
        assert_eq!(t.stages.len(), 1);
        let s = &t.stages[0];
        assert_eq!(s.label, "unit");
        assert_eq!(s.kind, StageKind::Map);
        assert_eq!(s.tasks, 4);
        // Dispatch includes the configured 2ms stage latency.
        assert!(s.dispatch_us >= 1000, "dispatch {}us", s.dispatch_us);
        assert!(s.total_us >= s.dispatch_us);
    }

    #[test]
    fn parallel_speedup_is_real() {
        // Sanity check that tasks actually run concurrently: 4 tasks of ~20ms
        // on 4 workers should take well under 4×20ms. Timing is only
        // meaningful with real parallelism, so skip on single-core hosts.
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            < 2
        {
            return;
        }
        let c = Cluster::new(ClusterConfig::with_workers(4));
        let t0 = std::time::Instant::now();
        c.run_stage(
            (0..4)
                .map(|i| {
                    StageTask::new(i, |_w| {
                        let mut acc = 0u64;
                        for x in 0..4_000_000u64 {
                            acc = acc.wrapping_add(x * x);
                        }
                        acc
                    })
                })
                .collect::<Vec<StageTask<u64>>>(),
        );
        let par = t0.elapsed();
        let t1 = std::time::Instant::now();
        for _ in 0..4 {
            let mut acc = 0u64;
            for x in 0..4_000_000u64 {
                acc = acc.wrapping_add(x * x);
            }
            std::hint::black_box(acc);
        }
        let ser = t1.elapsed();
        assert!(par < ser, "parallel {par:?} not faster than serial {ser:?}");
    }
}
