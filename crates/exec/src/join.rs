//! Join kernels (paper Appendix D).
//!
//! - **Hash join**: the base/build side is hashed once and cached across
//!   fixpoint iterations (the paper always builds on the base relation);
//!   the delta streams and probes.
//! - **Sort-merge join**: both sides sorted by key, merged; the base side's
//!   sorted run is likewise built once and reused.

use rasql_storage::{FxHashMap, Row, Value};

/// A multimap hash table over `key_cols` of the build rows.
#[derive(Debug, Clone, Default)]
pub struct HashTable {
    map: FxHashMap<Box<[Value]>, Vec<Row>>,
    key_cols: Vec<usize>,
}

impl HashTable {
    /// Build from rows.
    pub fn build(rows: &[Row], key_cols: &[usize]) -> Self {
        let mut map: FxHashMap<Box<[Value]>, Vec<Row>> = FxHashMap::default();
        for row in rows {
            let key: Box<[Value]> = key_cols.iter().map(|&c| row[c].clone()).collect();
            map.entry(key).or_default().push(row.clone());
        }
        HashTable {
            map,
            key_cols: key_cols.to_vec(),
        }
    }

    /// Key columns this table is built on.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Probe with key values.
    #[inline]
    pub fn probe(&self, key: &[Value]) -> &[Row] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn keys(&self) -> usize {
        self.map.len()
    }

    /// Total rows stored.
    pub fn len(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate memory footprint: the paper notes a hashed relation is
    /// typically 2-3x the raw data — this is what broadcast compression avoids
    /// shipping.
    pub fn size_bytes(&self) -> usize {
        self.map
            .iter()
            .map(|(k, v)| {
                32 + k.iter().map(Value::size_bytes).sum::<usize>()
                    + v.iter().map(Row::size_bytes).sum::<usize>()
            })
            .sum()
    }
}

/// A build side pre-sorted on its key columns, reusable across iterations.
#[derive(Debug, Clone)]
pub struct SortedRun {
    rows: Vec<Row>,
    key_cols: Vec<usize>,
}

impl SortedRun {
    /// Sort rows by key columns.
    pub fn build(mut rows: Vec<Row>, key_cols: &[usize]) -> Self {
        rows.sort_unstable_by(|a, b| cmp_keys(a, b, key_cols, key_cols));
        SortedRun {
            rows,
            key_cols: key_cols.to_vec(),
        }
    }

    /// The sorted rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Key columns.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }
}

fn cmp_keys(a: &Row, b: &Row, a_cols: &[usize], b_cols: &[usize]) -> std::cmp::Ordering {
    for (&ca, &cb) in a_cols.iter().zip(b_cols) {
        let o = a[ca].cmp(&b[cb]);
        if o != std::cmp::Ordering::Equal {
            return o;
        }
    }
    std::cmp::Ordering::Equal
}

/// Sort-merge join: sorts the probe side, merges against the pre-sorted build
/// run, and emits `probe ++ build` rows through `emit`.
pub fn merge_join(
    probe: &mut [Row],
    probe_keys: &[usize],
    build: &SortedRun,
    mut emit: impl FnMut(Row),
) {
    probe.sort_unstable_by(|a, b| cmp_keys(a, b, probe_keys, probe_keys));
    let build_rows = build.rows();
    let bk = build.key_cols();
    let mut bi = 0usize;
    let mut pi = 0usize;
    while pi < probe.len() && bi < build_rows.len() {
        match cmp_keys(&probe[pi], &build_rows[bi], probe_keys, bk) {
            std::cmp::Ordering::Less => pi += 1,
            std::cmp::Ordering::Greater => bi += 1,
            std::cmp::Ordering::Equal => {
                // Find the full runs of equal keys on both sides.
                let b_start = bi;
                let mut b_end = bi + 1;
                while b_end < build_rows.len()
                    && cmp_keys(&build_rows[b_start], &build_rows[b_end], bk, bk)
                        == std::cmp::Ordering::Equal
                {
                    b_end += 1;
                }
                let p_start = pi;
                let mut p_end = pi + 1;
                while p_end < probe.len()
                    && cmp_keys(&probe[p_start], &probe[p_end], probe_keys, probe_keys)
                        == std::cmp::Ordering::Equal
                {
                    p_end += 1;
                }
                for p in &probe[p_start..p_end] {
                    for b in &build_rows[b_start..b_end] {
                        emit(p.concat(b));
                    }
                }
                pi = p_end;
                bi = b_end;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasql_storage::row::int_row;

    #[test]
    fn hash_table_build_and_probe() {
        let rows = vec![int_row(&[1, 10]), int_row(&[1, 11]), int_row(&[2, 20])];
        let ht = HashTable::build(&rows, &[0]);
        assert_eq!(ht.keys(), 2);
        assert_eq!(ht.len(), 3);
        assert_eq!(ht.probe(&[Value::Int(1)]).len(), 2);
        assert_eq!(ht.probe(&[Value::Int(3)]).len(), 0);
    }

    #[test]
    fn hash_table_is_larger_than_raw() {
        let rows: Vec<Row> = (0..1000).map(|i| int_row(&[i, i])).collect();
        let raw: usize = rows.iter().map(Row::size_bytes).sum();
        let ht = HashTable::build(&rows, &[0]);
        assert!(ht.size_bytes() > raw, "{} !> {raw}", ht.size_bytes());
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let build_rows: Vec<Row> = (0..50).map(|i| int_row(&[i % 10, i])).collect();
        let probe_rows: Vec<Row> = (0..30).map(|i| int_row(&[i % 15, i * 100])).collect();

        // Hash join reference.
        let ht = HashTable::build(&build_rows, &[0]);
        let mut expected = Vec::new();
        for p in &probe_rows {
            for b in ht.probe(std::slice::from_ref(&p[0])) {
                expected.push(p.concat(b));
            }
        }
        expected.sort_unstable();

        // Merge join.
        let run = SortedRun::build(build_rows, &[0]);
        let mut got = Vec::new();
        let mut probe = probe_rows;
        merge_join(&mut probe, &[0], &run, |r| got.push(r));
        got.sort_unstable();

        assert_eq!(got, expected);
        assert!(!got.is_empty());
    }

    #[test]
    fn merge_join_empty_sides() {
        let run = SortedRun::build(vec![], &[0]);
        let mut probe = vec![int_row(&[1])];
        let mut n = 0;
        merge_join(&mut probe, &[0], &run, |_| n += 1);
        assert_eq!(n, 0);
    }

    use rasql_storage::Value;
}
