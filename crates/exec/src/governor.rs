//! Per-query resource governance: memory accounting, deadlines, cooperative
//! cancellation, and concurrent-query admission control.
//!
//! The paper's engine inherited memory management, task cancellation, and fair
//! scheduling from Spark; the cluster simulator reproduces the same guarantees
//! here. A [`QueryGovernor`] is created per query and threaded through the
//! evaluator the same way a [`crate::TraceSink`] is — as an `Option<&_>`
//! parameter — so ungoverned callers pay nothing.
//!
//! Three cooperating pieces:
//!
//! - [`MemoryTracker`]: per-query byte accounting against a configurable
//!   budget. Charges come from shuffle exchange buckets, recursive
//!   aggregate/set state, dense kernel slabs, and broadcast builds. Going
//!   over budget is not itself an error — it is the signal for the two
//!   unbounded structures (shuffle buckets, the all-relation aggregate map)
//!   to spill to disk via [`crate::spill`]. Only an allocation that cannot
//!   fit even after spilling raises [`ExecError::MemoryExceeded`].
//! - [`CancellationToken`]: a cancel flag plus an optional deadline, checked
//!   cooperatively at stage and fixpoint-round boundaries (interpreter and
//!   CSR kernels both). A failed check unwinds as a typed
//!   [`ExecError::Cancelled`] / [`ExecError::DeadlineExceeded`] through the
//!   normal error path, so workers drain and RAII guards remove temp files.
//! - [`AdmissionController`]: bounds concurrent queries with a bounded wait
//!   queue. At the concurrency cap callers block; when the wait queue is
//!   also full they are rejected immediately with
//!   [`ExecError::AdmissionRejected`] (backpressure, not unbounded queueing).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rasql_storage::sync::{LockRank, RankedCondvarMutex, RankedMutex};

use crate::error::ExecError;
use crate::spill::SpillDir;

// --------------------------------------------------------------------
// Memory accounting
// --------------------------------------------------------------------

/// Per-query byte accounting against a configurable budget.
///
/// A budget of `0` means unlimited: charges are still tracked (so
/// `peak_memory` is reported) but nothing ever spills. The tracker is shared
/// across worker threads, hence the atomics; accounting is an estimate
/// (deep-size of rows and state), not an allocator hook.
#[derive(Debug)]
pub struct MemoryTracker {
    budget: u64,
    used: AtomicU64,
    peak: AtomicU64,
}

impl MemoryTracker {
    /// A tracker with the given budget in bytes (`0` = unlimited).
    #[must_use]
    pub fn new(budget: u64) -> Self {
        MemoryTracker {
            budget,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Record `bytes` as allocated. Never fails: over-budget is a spill
    /// signal, not an error (see [`MemoryTracker::over_budget`]).
    pub fn charge(&self, bytes: u64) {
        let now = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Record `bytes` as freed.
    pub fn release(&self, bytes: u64) {
        // Saturating: release must not underflow if an estimate was revised.
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Bytes currently charged.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of charged bytes.
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// The configured budget (`0` = unlimited).
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// True when a budget is set and current usage exceeds it — the signal
    /// for spillable structures to page out.
    #[must_use]
    pub fn over_budget(&self) -> bool {
        self.budget > 0 && self.used() > self.budget
    }

    /// True when charging `bytes` on top of current usage would go over a
    /// configured budget.
    #[must_use]
    pub fn would_exceed(&self, bytes: u64) -> bool {
        self.budget > 0 && self.used().saturating_add(bytes) > self.budget
    }
}

// --------------------------------------------------------------------
// Cancellation
// --------------------------------------------------------------------

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    timeout_ms: u64,
    query_id: u64,
    /// Cancelling a parent cancels every child (used by server sessions:
    /// one session-scoped token parents each query's token, so a client
    /// disconnect fires every in-flight query of that session at once).
    parent: Option<Arc<CancelInner>>,
}

impl CancelInner {
    fn flag_raised(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        self.parent.as_ref().is_some_and(|p| p.flag_raised())
    }
}

/// Shared cancel flag plus optional deadline for one query.
///
/// Clones share state: the handle registered with the context (for `\kill`)
/// and the one threaded through the evaluator observe the same flag.
/// Cancellation is cooperative — [`CancellationToken::check`] is called at
/// stage and fixpoint-round boundaries and returns a typed error that
/// unwinds through the normal [`Result`] path.
///
/// Tokens can be linked: [`CancellationToken::child`] makes a token that
/// also observes its parent's flag, so one session-level cancel reaches
/// every query started under it.
#[derive(Debug, Clone)]
pub struct CancellationToken {
    inner: Arc<CancelInner>,
}

impl CancellationToken {
    /// A token for `query_id`, with an optional deadline measured from now.
    #[must_use]
    pub fn new(query_id: u64, timeout: Option<Duration>) -> Self {
        CancellationToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: timeout.map(|t| Instant::now() + t),
                timeout_ms: timeout.map_or(0, |t| t.as_millis() as u64),
                query_id,
                parent: None,
            }),
        }
    }

    /// A token for `query_id` that is also cancelled whenever `self` is.
    /// The deadline is the child's own; the parent contributes only its
    /// cancel flag.
    #[must_use]
    pub fn child(&self, query_id: u64, timeout: Option<Duration>) -> Self {
        CancellationToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: timeout.map(|t| Instant::now() + t),
                timeout_ms: timeout.map_or(0, |t| t.as_millis() as u64),
                query_id,
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Request cancellation. Takes effect at the next cooperative check
    /// (of this token and of every token derived from it via
    /// [`CancellationToken::child`]).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once [`CancellationToken::cancel`] has been called on this token
    /// or any ancestor.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag_raised()
    }

    /// The query this token governs.
    #[must_use]
    pub fn query_id(&self) -> u64 {
        self.inner.query_id
    }

    /// Cooperative checkpoint: errors if the query was cancelled or its
    /// deadline has passed.
    ///
    /// # Errors
    /// [`ExecError::Cancelled`] or [`ExecError::DeadlineExceeded`].
    pub fn check(&self) -> Result<(), ExecError> {
        if self.is_cancelled() {
            return Err(ExecError::Cancelled {
                query_id: self.inner.query_id,
            });
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() > deadline {
                return Err(ExecError::DeadlineExceeded {
                    query_id: self.inner.query_id,
                    timeout_ms: self.inner.timeout_ms,
                });
            }
        }
        Ok(())
    }
}

// --------------------------------------------------------------------
// The per-query governor
// --------------------------------------------------------------------

/// Per-query resource governor: one memory tracker, one cancellation token,
/// and a lazily-created spill directory, bundled so the evaluator threads a
/// single `Option<&QueryGovernor>` everywhere (mirroring `TraceSink`).
#[derive(Debug)]
pub struct QueryGovernor {
    query_id: u64,
    tracker: MemoryTracker,
    token: CancellationToken,
    spill_root: PathBuf,
    spill: RankedMutex<Option<Arc<SpillDir>>>,
    spilled_bytes: AtomicU64,
    spill_files: AtomicU64,
}

impl QueryGovernor {
    /// A governor for `query_id` with the given budget (bytes, `0` =
    /// unlimited) and optional deadline. Spill files, if any, are created
    /// under `spill_root` (the directory itself is only created on first
    /// spill and removed when the governor drops).
    #[must_use]
    pub fn new(
        query_id: u64,
        memory_budget: u64,
        timeout: Option<Duration>,
        spill_root: &Path,
    ) -> Self {
        Self::with_token(
            query_id,
            memory_budget,
            CancellationToken::new(query_id, timeout),
            spill_root,
        )
    }

    /// A governor that enforces an externally-created [`CancellationToken`]
    /// (e.g. a child of a server session's token, so a client disconnect
    /// cancels the query mid-fixpoint).
    #[must_use]
    pub fn with_token(
        query_id: u64,
        memory_budget: u64,
        token: CancellationToken,
        spill_root: &Path,
    ) -> Self {
        QueryGovernor {
            query_id,
            tracker: MemoryTracker::new(memory_budget),
            token,
            spill_root: spill_root.to_path_buf(),
            spill: RankedMutex::new(LockRank::GovernorSpill, None),
            spilled_bytes: AtomicU64::new(0),
            spill_files: AtomicU64::new(0),
        }
    }

    /// The query this governor governs.
    #[must_use]
    pub fn query_id(&self) -> u64 {
        self.query_id
    }

    /// The byte accountant.
    #[must_use]
    pub fn tracker(&self) -> &MemoryTracker {
        &self.tracker
    }

    /// The shared cancel handle (clone it to register with a kill registry).
    #[must_use]
    pub fn token(&self) -> &CancellationToken {
        &self.token
    }

    /// Cooperative cancellation/deadline checkpoint.
    ///
    /// # Errors
    /// [`ExecError::Cancelled`] or [`ExecError::DeadlineExceeded`].
    pub fn check(&self) -> Result<(), ExecError> {
        self.token.check()
    }

    /// The spill directory for this query, created on first use. The
    /// returned handle is RAII: the directory and everything in it are
    /// removed when the last `Arc` drops (normally when the governor does).
    ///
    /// # Errors
    /// [`ExecError::SpillIo`] if the directory cannot be created.
    pub fn spill_dir(&self) -> Result<Arc<SpillDir>, ExecError> {
        let mut slot = self.spill.lock();
        if let Some(dir) = slot.as_ref() {
            return Ok(Arc::clone(dir));
        }
        let dir = Arc::new(SpillDir::create(&self.spill_root, self.query_id)?);
        *slot = Some(Arc::clone(&dir));
        Ok(dir)
    }

    /// Record a completed spill write for governance reporting.
    pub fn note_spill(&self, bytes: u64, files: u64) {
        self.spilled_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.spill_files.fetch_add(files, Ordering::Relaxed);
    }

    /// Total bytes written to spill files by this query.
    #[must_use]
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes.load(Ordering::Relaxed)
    }

    /// Number of spill files written by this query.
    #[must_use]
    pub fn spill_files(&self) -> u64 {
        self.spill_files.load(Ordering::Relaxed)
    }
}

// --------------------------------------------------------------------
// Admission control
// --------------------------------------------------------------------

#[derive(Debug, Default)]
struct AdmissionState {
    running: usize,
    waiting: usize,
}

/// Bounds concurrent queries with a bounded wait queue.
///
/// `max_concurrent == 0` disables the controller entirely (every admit
/// succeeds immediately). Otherwise up to `max_concurrent` queries run; the
/// next `max_queue` block in [`AdmissionController::admit`] until a slot
/// frees; any beyond that are rejected with
/// [`ExecError::AdmissionRejected`].
///
/// The counters live behind a [`RankedCondvarMutex`] (the `parking_lot`
/// shim has no condvar); poisoning is deliberately ignored — a panicking
/// query must not wedge admission for every query after it.
#[derive(Debug)]
pub struct AdmissionController {
    max_concurrent: usize,
    max_queue: usize,
    state: RankedCondvarMutex<AdmissionState>,
}

impl AdmissionController {
    /// A controller admitting `max_concurrent` queries (`0` = unlimited)
    /// with room for `max_queue` waiters.
    #[must_use]
    pub fn new(max_concurrent: usize, max_queue: usize) -> Self {
        AdmissionController {
            max_concurrent,
            max_queue,
            state: RankedCondvarMutex::new(LockRank::AdmissionState, AdmissionState::default()),
        }
    }

    /// Admit one query, blocking while the engine is at its concurrency cap.
    /// The returned permit releases the slot on drop (any exit path).
    ///
    /// # Errors
    /// [`ExecError::AdmissionRejected`] when the wait queue is full.
    pub fn admit(self: &Arc<Self>) -> Result<AdmissionPermit, ExecError> {
        if self.max_concurrent == 0 {
            return Ok(AdmissionPermit {
                ctl: None,
                admitted: true,
            });
        }
        let mut state = self.state.lock();
        if state.running < self.max_concurrent {
            state.running += 1;
            return Ok(AdmissionPermit {
                ctl: Some(Arc::clone(self)),
                admitted: true,
            });
        }
        if state.waiting >= self.max_queue {
            return Err(ExecError::AdmissionRejected {
                running: state.running,
                waiting: state.waiting,
            });
        }
        state.waiting += 1;
        while state.running >= self.max_concurrent {
            state = self.state.wait(state);
        }
        state.waiting -= 1;
        state.running += 1;
        Ok(AdmissionPermit {
            ctl: Some(Arc::clone(self)),
            admitted: true,
        })
    }

    /// Queries currently holding a slot.
    #[must_use]
    pub fn running(&self) -> usize {
        self.state.lock().running
    }

    /// Queries currently blocked waiting for a slot.
    #[must_use]
    pub fn waiting(&self) -> usize {
        self.state.lock().waiting
    }

    fn release(&self) {
        let mut state = self.state.lock();
        state.running = state.running.saturating_sub(1);
        drop(state);
        self.state.notify_one();
    }
}

/// RAII admission slot: dropping it (success, error, or panic) frees the
/// slot and wakes one waiter.
#[derive(Debug)]
pub struct AdmissionPermit {
    ctl: Option<Arc<AdmissionController>>,
    admitted: bool,
}

impl AdmissionPermit {
    /// Whether this permit represents a real slot (false only for the
    /// unlimited-controller fast path, where nothing is counted).
    #[must_use]
    pub fn is_counted(&self) -> bool {
        self.ctl.is_some() && self.admitted
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        if let Some(ctl) = self.ctl.take() {
            ctl.release();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_charge_release_peak() {
        let t = MemoryTracker::new(100);
        t.charge(60);
        t.charge(60);
        assert_eq!(t.used(), 120);
        assert_eq!(t.peak(), 120);
        assert!(t.over_budget());
        t.release(80);
        assert_eq!(t.used(), 40);
        assert_eq!(t.peak(), 120);
        assert!(!t.over_budget());
        assert!(t.would_exceed(61));
        assert!(!t.would_exceed(60));
        // Release never underflows.
        t.release(1000);
        assert_eq!(t.used(), 0);
    }

    #[test]
    fn unlimited_tracker_never_over() {
        let t = MemoryTracker::new(0);
        t.charge(u64::MAX / 2);
        assert!(!t.over_budget());
        assert!(!t.would_exceed(u64::MAX / 2));
        assert_eq!(t.peak(), u64::MAX / 2);
    }

    #[test]
    fn token_cancel_and_deadline() {
        let t = CancellationToken::new(7, None);
        assert!(t.check().is_ok());
        let clone = t.clone();
        clone.cancel();
        assert_eq!(t.check(), Err(ExecError::Cancelled { query_id: 7 }));

        let d = CancellationToken::new(8, Some(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(
            d.check(),
            Err(ExecError::DeadlineExceeded {
                query_id: 8,
                timeout_ms: 0
            })
        );
    }

    #[test]
    fn child_token_observes_parent_cancel() {
        let session = CancellationToken::new(0, None);
        let q1 = session.child(1, None);
        let q2 = session.child(2, None);
        assert!(q1.check().is_ok());
        session.cancel();
        assert_eq!(q1.check(), Err(ExecError::Cancelled { query_id: 1 }));
        assert_eq!(q2.check(), Err(ExecError::Cancelled { query_id: 2 }));
        // Child cancel does not propagate upward or sideways.
        let fresh = CancellationToken::new(0, None);
        let child = fresh.child(3, None);
        child.cancel();
        assert!(fresh.check().is_ok());
        assert!(fresh.child(4, None).check().is_ok());
    }

    #[test]
    fn admission_caps_and_rejects() {
        let ctl = Arc::new(AdmissionController::new(1, 0));
        let p1 = ctl.admit().expect("first query admitted");
        assert_eq!(ctl.running(), 1);
        let rejected = ctl.admit();
        assert!(matches!(
            rejected,
            Err(ExecError::AdmissionRejected {
                running: 1,
                waiting: 0
            })
        ));
        drop(p1);
        assert_eq!(ctl.running(), 0);
        let p2 = ctl.admit().expect("slot freed");
        drop(p2);
    }

    #[test]
    fn admission_queue_blocks_until_slot_frees() {
        let ctl = Arc::new(AdmissionController::new(1, 4));
        let p1 = ctl.admit().expect("admitted");
        let ctl2 = Arc::clone(&ctl);
        let waiter = std::thread::spawn(move || {
            let p = ctl2.admit().expect("waited then admitted");
            drop(p);
        });
        // Give the waiter time to enqueue, then free the slot.
        while ctl.waiting() == 0 {
            std::thread::yield_now();
        }
        drop(p1);
        waiter.join().expect("waiter thread");
        assert_eq!(ctl.running(), 0);
    }

    #[test]
    fn unlimited_admission_is_free() {
        let ctl = Arc::new(AdmissionController::new(0, 0));
        let permits: Vec<_> = (0..64).map(|_| ctl.admit().expect("free")).collect();
        assert_eq!(ctl.running(), 0);
        drop(permits);
    }
}
