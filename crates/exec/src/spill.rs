//! Spill-to-disk for memory-governed execution.
//!
//! Two unbounded structures can outgrow a query's memory budget: shuffle
//! exchange buckets gathered on the driver, and the all-relation aggregate
//! map the fixpoint accumulates across rounds. When the
//! [`crate::governor::MemoryTracker`] reports over-budget, those structures
//! page out here and page back in when needed.
//!
//! The on-disk format reuses the varint value codec the checkpoint module is
//! built on ([`rasql_storage::codec`]) but deliberately **not**
//! [`crate::checkpoint::encode_rows`]: that encoding canonicalises by
//! sorting, which is right for checkpoint digests and wrong for a spill —
//! shuffle buckets must be merged back in the exact order they were written
//! so a spilled run stays bit-identical to an in-memory one. A spill file is
//! a sequence of batches, each `varint row-count`, then per row
//! `varint arity` + tagged values; reading concatenates batches in file
//! order.
//!
//! Every spill file lives inside a per-query [`SpillDir`], an RAII guard
//! that removes the whole directory on drop — success, error, cancellation,
//! or panic all take the same cleanup path.

use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::{Buf, Bytes, BytesMut};
use rasql_storage::codec::{decode_value, encode_value, read_varint, write_varint};
use rasql_storage::Row;

use crate::error::ExecError;

/// Distinguishes spill dirs created by concurrent queries (and by the same
/// query id across reused contexts) within one process.
static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> ExecError {
    ExecError::SpillIo {
        detail: format!("{what} {}: {e}", path.display()),
    }
}

/// Encode rows in **input order** (no canonicalisation) as one batch:
/// `varint count`, then per row `varint arity` + tagged values.
#[must_use]
pub fn encode_row_batch(rows: &[Row]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    write_varint(&mut buf, rows.len() as u64);
    for row in rows {
        write_varint(&mut buf, row.values().len() as u64);
        for v in row.values() {
            encode_value(&mut buf, v);
        }
    }
    buf.freeze().as_ref().to_vec()
}

/// Decode a whole spill file: a concatenation of [`encode_row_batch`]
/// outputs, yielding rows in the exact order they were appended.
///
/// # Errors
/// [`ExecError::SpillIo`] on a truncated or corrupt stream.
pub fn decode_row_stream(bytes: &[u8]) -> Result<Vec<Row>, ExecError> {
    let corrupt = |e: &dyn std::fmt::Display| ExecError::SpillIo {
        detail: format!("corrupt spill stream: {e}"),
    };
    let mut buf = Bytes::from(bytes.to_vec());
    let mut rows = Vec::new();
    while buf.has_remaining() {
        let count = read_varint(&mut buf).map_err(|e| corrupt(&e))?;
        for _ in 0..count {
            let arity = read_varint(&mut buf).map_err(|e| corrupt(&e))? as usize;
            let mut values = Vec::with_capacity(arity);
            for _ in 0..arity {
                values.push(decode_value(&mut buf).map_err(|e| corrupt(&e))?);
            }
            rows.push(Row::new(values));
        }
    }
    Ok(rows)
}

/// A per-query spill directory with RAII cleanup.
///
/// Created lazily by [`crate::governor::QueryGovernor::spill_dir`] on the
/// first spill; `Drop` removes the directory and every file in it, so no
/// exit path — success, typed error, cancellation, or panic unwind — leaks
/// temp files.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Create `root/rasql-spill-q{query_id}-{seq}` (and `root` itself if
    /// missing).
    ///
    /// # Errors
    /// [`ExecError::SpillIo`] if the directory cannot be created.
    pub fn create(root: &Path, query_id: u64) -> Result<SpillDir, ExecError> {
        let seq = SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = root.join(format!(
            "rasql-spill-q{query_id}-p{}-{seq}",
            std::process::id()
        ));
        fs::create_dir_all(&path).map_err(|e| io_err("creating spill dir", &path, &e))?;
        Ok(SpillDir { path })
    }

    /// Where the spill files live.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one batch of rows (in order) to the named spill file,
    /// creating it on first use. Returns the bytes written.
    ///
    /// # Errors
    /// [`ExecError::SpillIo`] on any filesystem failure.
    pub fn append_rows(&self, name: &str, rows: &[Row]) -> Result<u64, ExecError> {
        let encoded = encode_row_batch(rows);
        let path = self.file_path(name);
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("opening spill file", &path, &e))?;
        f.write_all(&encoded)
            .map_err(|e| io_err("writing spill file", &path, &e))?;
        Ok(encoded.len() as u64)
    }

    /// Read every row ever appended to the named spill file, in append
    /// order, then delete the file (a spill is consumed exactly once).
    ///
    /// # Errors
    /// [`ExecError::SpillIo`] on filesystem failure or a corrupt stream.
    pub fn take_rows(&self, name: &str) -> Result<Vec<Row>, ExecError> {
        let path = self.file_path(name);
        let bytes = read_file(&path)?;
        let rows = decode_row_stream(&bytes)?;
        fs::remove_file(&path).map_err(|e| io_err("removing spill file", &path, &e))?;
        Ok(rows)
    }

    /// Write an opaque blob (e.g. a checkpoint-codec state image),
    /// replacing any previous content. Returns the bytes written.
    ///
    /// # Errors
    /// [`ExecError::SpillIo`] on any filesystem failure.
    pub fn write_blob(&self, name: &str, bytes: &[u8]) -> Result<u64, ExecError> {
        let path = self.file_path(name);
        fs::write(&path, bytes).map_err(|e| io_err("writing spill file", &path, &e))?;
        Ok(bytes.len() as u64)
    }

    /// Read back a blob written with [`SpillDir::write_blob`] and delete it.
    ///
    /// # Errors
    /// [`ExecError::SpillIo`] if the file is missing or unreadable.
    pub fn take_blob(&self, name: &str) -> Result<Vec<u8>, ExecError> {
        let path = self.file_path(name);
        let bytes = read_file(&path)?;
        fs::remove_file(&path).map_err(|e| io_err("removing spill file", &path, &e))?;
        Ok(bytes)
    }

    /// Whether the named spill file currently exists.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.file_path(name).exists()
    }

    fn file_path(&self, name: &str) -> PathBuf {
        let safe: String = name
            .chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.path.join(format!("{safe}.spill"))
    }
}

fn read_file(path: &Path) -> Result<Vec<u8>, ExecError> {
    let mut f = fs::File::open(path).map_err(|e| io_err("opening spill file", path, &e))?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)
        .map_err(|e| io_err("reading spill file", path, &e))?;
    Ok(bytes)
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Best-effort: cleanup must not panic during unwind.
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasql_storage::Value;

    fn row(vals: &[i64]) -> Row {
        Row::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn row_stream_preserves_order_across_batches() {
        let dir = SpillDir::create(&std::env::temp_dir(), 1).expect("spill dir");
        let a = vec![row(&[3, 1]), row(&[1, 2])];
        let b = vec![row(&[2, 9]), row(&[0, 0])];
        dir.append_rows("bucket-0", &a).expect("append a");
        dir.append_rows("bucket-0", &b).expect("append b");
        let back = dir.take_rows("bucket-0").expect("read back");
        let want: Vec<Row> = a.into_iter().chain(b).collect();
        assert_eq!(back, want, "spill must preserve append order");
        assert!(!dir.contains("bucket-0"), "take consumes the file");
    }

    #[test]
    fn mixed_value_types_round_trip() {
        let dir = SpillDir::create(&std::env::temp_dir(), 2).expect("spill dir");
        let rows = vec![
            Row::new(vec![
                Value::Null,
                Value::Bool(true),
                Value::Int(-42),
                Value::Double(2.5),
                Value::from("spill".to_string()),
            ]),
            Row::new(vec![Value::Int(i64::MIN)]),
        ];
        dir.append_rows("mixed", &rows).expect("append");
        assert_eq!(dir.take_rows("mixed").expect("read"), rows);
    }

    #[test]
    fn blob_round_trip() {
        let dir = SpillDir::create(&std::env::temp_dir(), 3).expect("spill dir");
        let blob = vec![0u8, 1, 2, 255, 7];
        dir.write_blob("state-v0-p1", &blob).expect("write");
        assert!(dir.contains("state-v0-p1"));
        assert_eq!(dir.take_blob("state-v0-p1").expect("read"), blob);
        assert!(!dir.contains("state-v0-p1"));
    }

    #[test]
    fn drop_removes_directory() {
        let path;
        {
            let dir = SpillDir::create(&std::env::temp_dir(), 4).expect("spill dir");
            dir.append_rows("x", &[row(&[1])]).expect("append");
            path = dir.path().to_path_buf();
            assert!(path.exists());
        }
        assert!(!path.exists(), "Drop must remove the spill dir");
    }

    #[test]
    fn decode_rejects_corrupt_stream() {
        let mut bytes = encode_row_batch(&[row(&[1, 2, 3])]);
        bytes.truncate(bytes.len() - 2);
        assert!(decode_row_stream(&bytes).is_err());
    }
}
