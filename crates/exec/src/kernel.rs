//! Dense vertex-indexed fixpoint state and monomorphized delta-join kernels.
//!
//! This is the compiled fast path for the dominant recursive-query shape —
//! `(Int vertex key, Int/Double monotone aggregate)` over a static edge
//! relation (SSSP, CC, reachability, path counting). Instead of
//! `FxHashMap<Row, Value>` with dynamic [`crate::MonotoneOp`] dispatch per
//! candidate, aggregate state lives in flat `Vec` slabs indexed by the dense
//! vertex ids of a [`rasql_storage::CsrGraph`], and the per-round
//! delta-join-aggregate loop is monomorphized over a [`MergeOp`] so the
//! compiler emits one tight loop per (op, type) pair — the whole-stage
//! code-generation analog of paper §7.3.
//!
//! **Semantics contract**: every structure here mirrors the generic
//! [`crate::AggState`] / [`crate::SetState`] behavior bit-for-bit —
//! vacant slots accept any first contribution (even a zero `sum`
//! contribution counts as a change), `min`/`max` move only on *strictly*
//! better values (`f64` compared with `total_cmp`, exactly like
//! `Value::cmp`), and a zero `sum` contribution onto an occupied slot is a
//! no-op. The differential proptests in `rasql-core` enforce this against
//! the interpreter on random graphs.

use rasql_storage::CsrGraph;

/// Scalar types the kernels are monomorphized over.
///
/// `lt`/`gt` define the same total order as `Value::cmp` (`f64` uses
/// `total_cmp`); `add`/`sub` are the slab-local analogs of
/// `Value::add`/`Value::sub` for in-domain values.
pub trait KernelValue: Copy + PartialEq + Send + Sync + std::fmt::Debug + 'static {
    /// Additive identity (the generic path's vacant-`sum` `prev` of `Int(0)`).
    fn zero() -> Self;
    /// Strict total-order less-than.
    fn lt(a: Self, b: Self) -> bool;
    /// Strict total-order greater-than.
    fn gt(a: Self, b: Self) -> bool;
    /// Addition. `i64` wraps rather than panicking; kernel selection only
    /// fires on workloads whose sums stay in range (the generic path would
    /// promote to `Double` on overflow, which the kernels cannot mirror).
    fn add(a: Self, b: Self) -> Self;
    /// Subtraction (used to form per-round `sum` increments).
    fn sub(a: Self, b: Self) -> Self;
    /// True for the additive identity (a `sum` contribution that cannot
    /// change an occupied slot).
    fn is_zero(self) -> bool;
}

impl KernelValue for i64 {
    #[inline]
    fn zero() -> Self {
        0
    }
    #[inline]
    fn lt(a: Self, b: Self) -> bool {
        a < b
    }
    #[inline]
    fn gt(a: Self, b: Self) -> bool {
        a > b
    }
    #[inline]
    fn add(a: Self, b: Self) -> Self {
        a.wrapping_add(b)
    }
    #[inline]
    fn sub(a: Self, b: Self) -> Self {
        a.wrapping_sub(b)
    }
    #[inline]
    fn is_zero(self) -> bool {
        self == 0
    }
}

impl KernelValue for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn lt(a: Self, b: Self) -> bool {
        a.total_cmp(&b) == std::cmp::Ordering::Less
    }
    #[inline]
    fn gt(a: Self, b: Self) -> bool {
        a.total_cmp(&b) == std::cmp::Ordering::Greater
    }
    #[inline]
    fn add(a: Self, b: Self) -> Self {
        a + b
    }
    #[inline]
    fn sub(a: Self, b: Self) -> Self {
        a - b
    }
    #[inline]
    fn is_zero(self) -> bool {
        self == 0.0
    }
}

/// A monotone merge operator, monomorphized per scalar type.
///
/// `merge` returns `Some(updated)` when the contribution strictly improves
/// the current total, `None` when the slot is unchanged — the exact
/// changed/unchanged split [`crate::MonotoneOp::merge`] reports.
pub trait MergeOp<T: KernelValue>: Send + Sync + 'static {
    /// Operator name as it appears in kernel labels (`min`, `max`, `sum`).
    const NAME: &'static str;
    /// Merge `new` into `cur`.
    fn merge(cur: T, new: T) -> Option<T>;
}

/// `min`: move only on strictly smaller values.
#[derive(Debug, Clone, Copy)]
pub struct MinOp;
/// `max`: move only on strictly larger values.
#[derive(Debug, Clone, Copy)]
pub struct MaxOp;
/// `sum`: accumulate; zero contributions are no-ops.
#[derive(Debug, Clone, Copy)]
pub struct SumOp;

impl<T: KernelValue> MergeOp<T> for MinOp {
    const NAME: &'static str = "min";
    #[inline]
    fn merge(cur: T, new: T) -> Option<T> {
        if T::lt(new, cur) {
            Some(new)
        } else {
            None
        }
    }
}

impl<T: KernelValue> MergeOp<T> for MaxOp {
    const NAME: &'static str = "max";
    #[inline]
    fn merge(cur: T, new: T) -> Option<T> {
        if T::gt(new, cur) {
            Some(new)
        } else {
            None
        }
    }
}

impl<T: KernelValue> MergeOp<T> for SumOp {
    const NAME: &'static str = "sum";
    #[inline]
    fn merge(cur: T, new: T) -> Option<T> {
        if new.is_zero() {
            None
        } else {
            Some(T::add(cur, new))
        }
    }
}

/// Dense vertex-indexed aggregate state — the flat-slab sibling of
/// [`crate::AggState`] for single-`Int`-key, single-aggregate views.
///
/// Slabs are sized to the vertex universe of the query's CSR graph. A
/// round-tagged stamp array dedups the dirty list (each vertex enters a
/// round's delta at most once) and records the pre-round total so `sum`
/// increments can be formed without a second map.
#[derive(Debug, Clone)]
pub struct DenseAggState<T> {
    vals: Vec<T>,
    occupied: Vec<bool>,
    /// `round + 1` when the slot is already dirty this round; 0 = never.
    stamp: Vec<u32>,
    /// Total at the moment the slot first became dirty this round (zero for
    /// slots that were vacant), so `increment = vals[v] - inc_base[v]`.
    inc_base: Vec<T>,
    dirty: Vec<u32>,
    rows: usize,
}

impl<T: KernelValue> DenseAggState<T> {
    /// State for a universe of `n` dense vertex ids, all vacant.
    pub fn new(n: usize) -> Self {
        DenseAggState {
            vals: vec![T::zero(); n],
            occupied: vec![false; n],
            stamp: vec![0; n],
            inc_base: vec![T::zero(); n],
            dirty: Vec::new(),
            rows: 0,
        }
    }

    /// Merge one contribution for dense vertex `v` during 1-based `round`.
    /// Returns true when the slot changed (mirrors `MergeOutcome::Changed`):
    /// always on first occupancy, otherwise per `Op::merge`.
    #[inline]
    pub fn merge<Op: MergeOp<T>>(&mut self, v: u32, c: T, round: u32) -> bool {
        let i = v as usize;
        if !self.occupied[i] {
            self.occupied[i] = true;
            self.vals[i] = c;
            self.rows += 1;
            self.mark_dirty(i, round, T::zero());
            return true;
        }
        match Op::merge(self.vals[i], c) {
            Some(updated) => {
                let before = self.vals[i];
                self.mark_dirty(i, round, before);
                self.vals[i] = updated;
                true
            }
            None => false,
        }
    }

    #[inline]
    fn mark_dirty(&mut self, i: usize, round: u32, base: T) {
        if self.stamp[i] != round + 1 {
            self.stamp[i] = round + 1;
            self.inc_base[i] = base;
            #[allow(clippy::cast_possible_truncation)]
            self.dirty.push(i as u32);
        }
    }

    /// Drain this round's delta. With `totals` the pairs carry the current
    /// totals (min/max driver mode — where increments *are* totals);
    /// otherwise per-round increments (`sum` increment driver mode).
    pub fn take_delta(&mut self, totals: bool) -> Vec<(u32, T)> {
        let dirty = std::mem::take(&mut self.dirty);
        dirty
            .into_iter()
            .map(|v| {
                let i = v as usize;
                let out = if totals {
                    self.vals[i]
                } else {
                    T::sub(self.vals[i], self.inc_base[i])
                };
                (v, out)
            })
            .collect()
    }

    /// Number of occupied slots (the view's row count in this partition).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no slot is occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Current total for dense vertex `v`, if occupied.
    #[inline]
    pub fn get(&self, v: u32) -> Option<T> {
        self.occupied[v as usize].then(|| self.vals[v as usize])
    }

    /// Iterate occupied `(dense id, total)` pairs in dense-id order.
    #[allow(clippy::cast_possible_truncation)]
    pub fn iter(&self) -> impl Iterator<Item = (u32, T)> + '_ {
        self.occupied
            .iter()
            .enumerate()
            .filter(|&(_, &occ)| occ)
            .map(|(i, _)| (i as u32, self.vals[i]))
    }

    /// Reset every slot to vacant (the reset-and-rerun recovery path).
    pub fn clear(&mut self) {
        self.vals.iter_mut().for_each(|v| *v = T::zero());
        self.occupied.iter_mut().for_each(|o| *o = false);
        self.stamp.iter_mut().for_each(|s| *s = 0);
        self.inc_base.iter_mut().for_each(|b| *b = T::zero());
        self.dirty.clear();
        self.rows = 0;
    }

    /// Slab footprint in bytes, for memory-budget accounting. Dense slabs
    /// are allocated up front to the vertex universe, so this is a constant
    /// charge per partition for the fixpoint's lifetime.
    pub fn size_bytes(&self) -> u64 {
        (self.vals.len() * (2 * std::mem::size_of::<T>() + 1 + 4) + self.dirty.capacity() * 4)
            as u64
    }
}

/// Dense vertex membership state — the flat sibling of [`crate::SetState`]
/// for single-`Int`-key set views (reachability).
#[derive(Debug, Clone, Default)]
pub struct DenseSetState {
    present: Vec<bool>,
    dirty: Vec<u32>,
    rows: usize,
}

impl DenseSetState {
    /// State for a universe of `n` dense vertex ids, all absent.
    pub fn new(n: usize) -> Self {
        DenseSetState {
            present: vec![false; n],
            dirty: Vec::new(),
            rows: 0,
        }
    }

    /// Insert dense vertex `v`; true (and queued for the delta) when new.
    #[inline]
    pub fn insert(&mut self, v: u32) -> bool {
        let i = v as usize;
        if self.present[i] {
            return false;
        }
        self.present[i] = true;
        self.rows += 1;
        self.dirty.push(v);
        true
    }

    /// Drain this round's newly inserted vertices.
    pub fn take_delta(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.dirty)
    }

    /// Number of present vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no vertex is present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Iterate present dense ids in ascending order.
    #[allow(clippy::cast_possible_truncation)]
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.present
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p)
            .map(|(i, _)| i as u32)
    }

    /// Reset every vertex to absent (the reset-and-rerun recovery path).
    pub fn clear(&mut self) {
        self.present.iter_mut().for_each(|p| *p = false);
        self.dirty.clear();
        self.rows = 0;
    }

    /// Slab footprint in bytes, for memory-budget accounting.
    pub fn size_bytes(&self) -> u64 {
        (self.present.len() + self.dirty.capacity() * 4) as u64
    }
}

/// Scan one delta against CSR adjacency, routing derived contributions to
/// per-partition output buckets. `edge_fn(value, edge_index)` computes the
/// contribution carried along edge `edge_index` — monomorphized per query
/// shape (identity, `+ weight`, `+ const`, `least(value, weight)`), so the
/// whole loop compiles to straight-line code with no `Row` allocation.
#[inline]
pub fn scan_delta<T, E>(csr: &CsrGraph, delta: &[(u32, T)], edge_fn: E, out: &mut [Vec<(u32, T)>])
where
    T: KernelValue,
    E: Fn(T, usize) -> T,
{
    for &(v, val) in delta {
        for e in csr.adjacency(v) {
            let dst = csr.targets[e];
            out[csr.part_of[dst as usize] as usize].push((dst, edge_fn(val, e)));
        }
    }
}

/// Set-kernel analog of [`scan_delta`]: propagate membership along edges.
#[inline]
pub fn scan_delta_set(csr: &CsrGraph, delta: &[u32], out: &mut [Vec<u32>]) {
    for &v in delta {
        for e in csr.adjacency(v) {
            let dst = csr.targets[e];
            out[csr.part_of[dst as usize] as usize].push(dst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vacant_insert_always_changes() {
        let mut s: DenseAggState<i64> = DenseAggState::new(4);
        // Even a zero sum contribution occupies the slot and is "changed".
        assert!(s.merge::<SumOp>(2, 0, 1));
        assert_eq!(s.get(2), Some(0));
        assert_eq!(s.len(), 1);
        let d = s.take_delta(false);
        assert_eq!(d, vec![(2, 0)]);
    }

    #[test]
    fn min_strictness_and_delta_dedup() {
        let mut s: DenseAggState<i64> = DenseAggState::new(4);
        assert!(s.merge::<MinOp>(1, 10, 1));
        assert!(!s.merge::<MinOp>(1, 10, 1)); // equal — not strictly better
        assert!(s.merge::<MinOp>(1, 7, 1));
        assert!(s.merge::<MinOp>(1, 3, 1));
        let d = s.take_delta(true);
        assert_eq!(d, vec![(1, 3)]); // one delta entry despite three changes
        assert!(!s.merge::<MinOp>(1, 5, 2));
        assert!(s.take_delta(true).is_empty());
    }

    #[test]
    fn sum_increments_per_round() {
        let mut s: DenseAggState<i64> = DenseAggState::new(2);
        assert!(s.merge::<SumOp>(0, 5, 1));
        assert!(s.merge::<SumOp>(0, 3, 1));
        assert!(!s.merge::<SumOp>(0, 0, 1)); // zero onto occupied: no-op
        assert_eq!(s.take_delta(false), vec![(0, 8)]);
        assert!(s.merge::<SumOp>(0, 2, 2));
        assert_eq!(s.get(0), Some(10));
        assert_eq!(s.take_delta(false), vec![(0, 2)]); // increment, not total
        assert!(s.merge::<SumOp>(0, 4, 3));
        assert_eq!(s.take_delta(true), vec![(0, 14)]); // totals mode
    }

    #[test]
    fn f64_total_order_matches_value_cmp() {
        let mut s: DenseAggState<f64> = DenseAggState::new(2);
        assert!(s.merge::<MinOp>(0, f64::NAN, 1));
        // total_cmp puts every number below NaN, like Value::cmp.
        assert!(s.merge::<MinOp>(0, f64::INFINITY, 1));
        assert!(s.merge::<MinOp>(0, 1.5, 1));
        assert!(!s.merge::<MinOp>(0, 1.5, 1));
        assert_eq!(s.get(0), Some(1.5));
        let mut m: DenseAggState<f64> = DenseAggState::new(1);
        assert!(m.merge::<MaxOp>(0, -0.0, 1));
        assert!(m.merge::<MaxOp>(0, 0.0, 1)); // total_cmp: +0.0 > -0.0
    }

    #[test]
    fn set_state_dedups() {
        let mut s = DenseSetState::new(3);
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.insert(2));
        assert_eq!(s.take_delta(), vec![1, 2]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2]);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn scan_routes_by_partition() {
        use rasql_storage::{row::int_row, CsrGraph, CsrWeight};
        let rows: Vec<_> = [(0i64, 1i64, 10i64), (0, 2, 20), (1, 2, 30)]
            .iter()
            .map(|&(s, d, w)| int_row(&[s, d, w]))
            .collect();
        let csr = CsrGraph::build(&rows, 0, 1, CsrWeight::Int { col: 2 }, [], 3).unwrap();
        let v0 = csr.dense_id(0).unwrap();
        let mut out: Vec<Vec<(u32, i64)>> = vec![Vec::new(); 3];
        let w = csr.weights_i.clone();
        scan_delta(&csr, &[(v0, 100)], |val, e| val + w[e], &mut out);
        let mut pairs: Vec<(i64, i64)> = out
            .iter()
            .flatten()
            .map(|&(d, v)| (csr.orig_id(d), v))
            .collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 110), (2, 120)]);
        // Each pair landed in the partition the generic path would pick.
        for (p, bucket) in out.iter().enumerate() {
            for &(d, _) in bucket {
                assert_eq!(csr.part_of[d as usize] as usize, p);
            }
        }
    }
}
