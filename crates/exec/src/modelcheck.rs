//! Interleaving model checker for the engine's critical-section protocols.
//!
//! The rank-checked locks in [`crate::sync`] make lock-order deadlocks fail
//! fast, but they say nothing about *logical* races — protocols that take
//! every lock in the right order and still publish torn state. PR 7's
//! review found two of those in the shared-`Arc<RaSqlContext>` server path:
//! two concurrent refreshes of one materialized view could pair one
//! refresh's contents with the other's dependency records, and `DELETE`
//! could clobber rows inserted between its snapshot and its publish. Both
//! were fixed (per-view serialization guards; version-checked
//! `replace_rows_if`), but the fixes were argued by hand.
//!
//! This module replaces the hand argument with enumeration. Each protocol
//! is written as a small state machine: a shared state type plus a handful
//! of [`Thread`]s whose `step` functions advance a program counter through
//! the protocol's atomic sections (one step = one critical section = the
//! span of one lock hold in the real code). The checker then explores
//! thread interleavings — exhaustively up to a bound, or randomly from a
//! seeded splitmix64 stream — checking an invariant after every step and
//! flagging deadlock when every unfinished thread is blocked.
//!
//! [`protocols`] holds the four shipped models (matview publish, DELETE vs
//! INSERT, admission handoff, result-cache invalidation), each in a *fixed*
//! variant mirroring HEAD and a *reverted* variant that mechanically undoes
//! the fix. The test suite asserts the checker finds the PR-7 races on the
//! reverted variants and nothing on the fixed ones — so the models are
//! demonstrably sharp enough to see the bugs they guard against, and
//! `scripts/tier1.sh` keeps them that way.

use std::fmt;

// --------------------------------------------------------------------
// The modeling vocabulary
// --------------------------------------------------------------------

/// What one atomic step of a thread did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The step ran; advance to the next program counter.
    Next,
    /// The step ran; jump to this program counter (loops, retries).
    Goto(usize),
    /// The step could not run (waiting on a lock or condition). The state
    /// must be unmodified — the checker restores it from a clone and will
    /// retry the same program counter later in the schedule.
    Block,
    /// The thread finished.
    Done,
}

/// One modeled thread: a name for traces and a step function driven by a
/// program counter. Each call must model exactly one atomic section of the
/// real protocol (the span of one lock hold).
pub struct Thread<S> {
    /// Shown in violation traces.
    pub name: &'static str,
    /// Advance the thread by one atomic step from program counter `pc`.
    pub step: fn(&mut S, usize) -> Step,
}

/// A protocol model: shared state, threads, and an invariant checked after
/// every step (receiving which threads have finished, so end-state-only
/// conditions can gate on `done.iter().all(|d| *d)`).
pub struct Model<S> {
    /// Protocol name, shown in reports.
    pub name: &'static str,
    /// The initial shared state of every schedule.
    pub initial: S,
    /// The concurrent threads.
    pub threads: Vec<Thread<S>>,
    /// Checked after every step; an `Err` is a violation.
    pub invariant: fn(&S, &[bool]) -> Result<(), String>,
}

/// How a schedule went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// The invariant failed after a step.
    Invariant,
    /// Unfinished threads exist and every one of them is blocked.
    Deadlock,
}

/// A counterexample: the failure, and the exact schedule that reaches it
/// (each entry is `thread-name@pc`).
#[derive(Debug, Clone)]
pub struct Violation {
    /// What kind of failure this is.
    pub kind: ViolationKind,
    /// The invariant's error message, or a deadlock description.
    pub message: String,
    /// The interleaving that produced it, in execution order.
    pub schedule: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [schedule: {}]",
            match self.kind {
                ViolationKind::Invariant => "invariant violated",
                ViolationKind::Deadlock => "deadlock",
            },
            self.message,
            self.schedule.join(" ")
        )
    }
}

/// Exploration counters for reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckStats {
    /// Complete schedules explored (every thread ran to Done).
    pub schedules: u64,
    /// Individual steps executed across all schedules.
    pub steps: u64,
    /// True when exploration stopped at a bound rather than exhausting the
    /// schedule space.
    pub truncated: bool,
}

/// The result of checking one model: the first violation found (if any)
/// plus exploration counters.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The first counterexample, or `None` if the explored space is clean.
    pub violation: Option<Violation>,
    /// How much was explored.
    pub stats: CheckStats,
}

/// Bounds for exhaustive exploration. The shipped protocols have a few
/// hundred to a few hundred thousand schedules; the defaults exhaust them.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Stop after this many complete schedules.
    pub max_schedules: u64,
    /// Stop after this many total steps.
    pub max_steps: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_schedules: 2_000_000,
            max_steps: 50_000_000,
        }
    }
}

// --------------------------------------------------------------------
// Exhaustive enumeration
// --------------------------------------------------------------------

struct Explorer<'m, S: Clone> {
    model: &'m Model<S>,
    limits: Limits,
    stats: CheckStats,
}

impl<S: Clone> Explorer<'_, S> {
    /// Depth-first over every runnable thread at every point. Returns the
    /// first violation, or `None` when the (bounded) space is clean.
    fn explore(
        &mut self,
        state: &S,
        pcs: &[usize],
        done: &[bool],
        trace: &mut Vec<String>,
    ) -> Option<Violation> {
        if done.iter().all(|d| *d) {
            self.stats.schedules += 1;
            return None;
        }
        if self.stats.schedules >= self.limits.max_schedules
            || self.stats.steps >= self.limits.max_steps
        {
            self.stats.truncated = true;
            return None;
        }
        let mut any_ran = false;
        for (i, thread) in self.model.threads.iter().enumerate() {
            if done[i] {
                continue;
            }
            let mut next_state = state.clone();
            let step = (thread.step)(&mut next_state, pcs[i]);
            self.stats.steps += 1;
            if step == Step::Block {
                continue; // state untouched by contract; clone discarded
            }
            any_ran = true;
            let mut next_pcs = pcs.to_vec();
            let mut next_done = done.to_vec();
            match step {
                Step::Next => next_pcs[i] += 1,
                Step::Goto(pc) => next_pcs[i] = pc,
                Step::Done => next_done[i] = true,
                Step::Block => unreachable!(),
            }
            trace.push(format!("{}@{}", thread.name, pcs[i]));
            if let Err(msg) = (self.model.invariant)(&next_state, &next_done) {
                return Some(Violation {
                    kind: ViolationKind::Invariant,
                    message: msg,
                    schedule: trace.clone(),
                });
            }
            let found = self.explore(&next_state, &next_pcs, &next_done, trace);
            trace.pop();
            if found.is_some() {
                return found;
            }
        }
        if !any_ran {
            // Unfinished threads exist (checked on entry) and none could
            // take a step: every one is blocked on every schedule from here.
            let stuck: Vec<String> = self
                .model
                .threads
                .iter()
                .enumerate()
                .filter(|(i, _)| !done[*i])
                .map(|(i, t)| format!("{}@{}", t.name, pcs[i]))
                .collect();
            return Some(Violation {
                kind: ViolationKind::Deadlock,
                message: format!("all unfinished threads blocked: {}", stuck.join(", ")),
                schedule: trace.clone(),
            });
        }
        None
    }
}

/// Exhaustively enumerate every interleaving of `model` up to `limits`.
pub fn check_exhaustive<S: Clone>(model: &Model<S>, limits: Limits) -> CheckOutcome {
    let mut ex = Explorer {
        model,
        limits,
        stats: CheckStats::default(),
    };
    let pcs = vec![0usize; model.threads.len()];
    let done = vec![false; model.threads.len()];
    let violation = ex.explore(&model.initial, &pcs, &done, &mut Vec::new());
    CheckOutcome {
        violation,
        stats: ex.stats,
    }
}

// --------------------------------------------------------------------
// Seeded random scheduling
// --------------------------------------------------------------------

/// The splitmix64 generator (same finalizer the fault injector uses): cheap,
/// seeded, and fully deterministic across runs and platforms.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = self.0;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Uniform draw in `[0, n)`.
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Run `schedules` random schedules of `model` from `seed`, picking a
/// uniformly random runnable thread at each step. Complements
/// [`check_exhaustive`]: it scales past the exhaustive bound (long retry
/// loops) at the price of completeness, and a reproduction seed can be
/// shared — the same seed explores the same schedules everywhere.
pub fn check_random<S: Clone>(model: &Model<S>, seed: u64, schedules: u64) -> CheckOutcome {
    let mut rng = SplitMix64(seed);
    let mut stats = CheckStats::default();
    // A schedule longer than this is wedged in a livelock; treat the bound
    // as "gave up on this schedule", not a violation.
    let max_steps_per_schedule = 10_000;
    for _ in 0..schedules {
        let mut state = model.initial.clone();
        let mut pcs = vec![0usize; model.threads.len()];
        let mut done = vec![false; model.threads.len()];
        let mut trace = Vec::new();
        let mut steps_this_schedule = 0;
        while !done.iter().all(|d| *d) {
            if steps_this_schedule >= max_steps_per_schedule {
                stats.truncated = true;
                break;
            }
            // Try runnable threads in a random rotation; the first that
            // doesn't block runs.
            let n = model.threads.len();
            let start = rng.below(n);
            let mut progressed = false;
            let mut blocked = Vec::new();
            for off in 0..n {
                let i = (start + off) % n;
                if done[i] {
                    continue;
                }
                let mut next_state = state.clone();
                let step = (model.threads[i].step)(&mut next_state, pcs[i]);
                stats.steps += 1;
                steps_this_schedule += 1;
                if step == Step::Block {
                    blocked.push(format!("{}@{}", model.threads[i].name, pcs[i]));
                    continue;
                }
                trace.push(format!("{}@{}", model.threads[i].name, pcs[i]));
                match step {
                    Step::Next => pcs[i] += 1,
                    Step::Goto(pc) => pcs[i] = pc,
                    Step::Done => done[i] = true,
                    Step::Block => unreachable!(),
                }
                state = next_state;
                progressed = true;
                break;
            }
            if !progressed {
                return CheckOutcome {
                    violation: Some(Violation {
                        kind: ViolationKind::Deadlock,
                        message: format!("all unfinished threads blocked: {}", blocked.join(", ")),
                        schedule: trace,
                    }),
                    stats,
                };
            }
            if let Err(msg) = (model.invariant)(&state, &done) {
                return CheckOutcome {
                    violation: Some(Violation {
                        kind: ViolationKind::Invariant,
                        message: msg,
                        schedule: trace,
                    }),
                    stats,
                };
            }
        }
        stats.schedules += 1;
    }
    CheckOutcome {
        violation: None,
        stats,
    }
}

// --------------------------------------------------------------------
// The shipped protocol models
// --------------------------------------------------------------------

pub mod protocols {
    //! The engine's critical-section protocols as checkable models, each in
    //! a `fixed` variant (mirroring HEAD) and a `reverted` variant that
    //! mechanically undoes the fix — the regression harness asserts the
    //! checker sees the bug in every `reverted` and nothing in any `fixed`.
    //!
    //! A step in these models corresponds to one lock-hold span in the real
    //! code: everything the engine does under one `lock()` is one atomic
    //! step here, and every lock release is a step boundary the scheduler
    //! may interleave at.

    use super::{check_exhaustive, CheckOutcome, Limits, Model, Step, Thread};

    // ----------------------------------------------------------------
    // 1. Matview refresh-vs-refresh publish (PR-7 race #1)
    // ----------------------------------------------------------------

    /// The observable publish state of one materialized view: which
    /// refresh's data each of the three publish sites currently holds
    /// (0 = the original, n = refresher n), plus the per-view serialization
    /// guard (`None` = free, `Some(t)` = held by thread t).
    #[derive(Clone)]
    pub struct MatViewPublish {
        guard: Option<usize>,
        contents: usize,
        dep_records: usize,
        warm_state: usize,
    }

    /// Refresh publishes in `core::context` order: table contents, then
    /// warm state, then dependency records. Coherence = all three carry the
    /// same refresh's data once everyone is done.
    fn matview_invariant(s: &MatViewPublish, done: &[bool]) -> Result<(), String> {
        if done.iter().all(|d| *d)
            && !(s.contents == s.dep_records && s.dep_records == s.warm_state)
        {
            return Err(format!(
                "torn publish: contents from refresh {}, warm state from {}, dep records from {}",
                s.contents, s.warm_state, s.dep_records
            ));
        }
        Ok(())
    }

    fn refresh_guarded(me: usize) -> fn(&mut MatViewPublish, usize) -> Step {
        // fn pointers can't capture; dispatch on a small fixed set instead.
        match me {
            1 => |s: &mut MatViewPublish, pc: usize| refresh_guarded_step(s, pc, 1),
            _ => |s: &mut MatViewPublish, pc: usize| refresh_guarded_step(s, pc, 2),
        }
    }

    fn refresh_guarded_step(s: &mut MatViewPublish, pc: usize, me: usize) -> Step {
        match pc {
            // Acquire the per-view serialization guard (context::view_lock).
            0 => {
                if s.guard.is_some() {
                    return Step::Block;
                }
                s.guard = Some(me);
                Step::Next
            }
            1 => {
                s.contents = me;
                Step::Next
            }
            2 => {
                s.warm_state = me;
                Step::Next
            }
            3 => {
                s.dep_records = me;
                Step::Next
            }
            _ => {
                s.guard = None;
                Step::Done
            }
        }
    }

    fn refresh_unguarded(me: usize) -> fn(&mut MatViewPublish, usize) -> Step {
        match me {
            1 => |s: &mut MatViewPublish, pc: usize| refresh_unguarded_step(s, pc, 1),
            _ => |s: &mut MatViewPublish, pc: usize| refresh_unguarded_step(s, pc, 2),
        }
    }

    fn refresh_unguarded_step(s: &mut MatViewPublish, pc: usize, me: usize) -> Step {
        // The PR-7 bug: each publish site is individually locked, but
        // nothing serializes the whole refresh.
        match pc {
            0 => {
                s.contents = me;
                Step::Next
            }
            1 => {
                s.warm_state = me;
                Step::Next
            }
            _ => {
                s.dep_records = me;
                Step::Done
            }
        }
    }

    /// Two concurrent refreshes of one view, serialized by the per-view
    /// guard (HEAD behavior).
    pub fn matview_publish_fixed() -> Model<MatViewPublish> {
        Model {
            name: "matview-publish/fixed",
            initial: MatViewPublish {
                guard: None,
                contents: 0,
                dep_records: 0,
                warm_state: 0,
            },
            threads: vec![
                Thread {
                    name: "refresh-1",
                    step: refresh_guarded(1),
                },
                Thread {
                    name: "refresh-2",
                    step: refresh_guarded(2),
                },
            ],
            invariant: matview_invariant,
        }
    }

    /// The same two refreshes with the per-view guard mechanically removed
    /// (the pre-PR-7 protocol). The checker finds a torn publish.
    pub fn matview_publish_reverted() -> Model<MatViewPublish> {
        Model {
            name: "matview-publish/reverted",
            initial: MatViewPublish {
                guard: None,
                contents: 0,
                dep_records: 0,
                warm_state: 0,
            },
            threads: vec![
                Thread {
                    name: "refresh-1",
                    step: refresh_unguarded(1),
                },
                Thread {
                    name: "refresh-2",
                    step: refresh_unguarded(2),
                },
            ],
            invariant: matview_invariant,
        }
    }

    // ----------------------------------------------------------------
    // 2. DELETE vs INSERT via replace_rows_if (PR-7 race #2)
    // ----------------------------------------------------------------

    /// One catalog table under a concurrent DELETE and INSERT. Rows are a
    /// bitmask (bit n = row n present); the version counter bumps on every
    /// mutation, exactly like `Catalog`.
    #[derive(Clone)]
    pub struct DeleteInsert {
        version: u64,
        rows: u32,
        /// DELETE's private snapshot: (version, kept-rows) captured by
        /// `get_versioned`.
        snapshot: Option<(u64, u32)>,
    }

    /// Rows 0 and 1 preexist; DELETE drops odd rows; INSERT adds row 2.
    /// Row 2 is even, so it must survive no matter how the two interleave.
    const PREEXISTING: u32 = 0b011;
    const INSERTED: u32 = 0b100;
    const ODD_ROWS: u32 = 0b010;

    fn delete_insert_invariant(s: &DeleteInsert, done: &[bool]) -> Result<(), String> {
        if done.iter().all(|d| *d) {
            if s.rows & INSERTED == 0 {
                return Err(
                    "lost insert: DELETE's publish clobbered the concurrently inserted row".into(),
                );
            }
            if s.rows & ODD_ROWS != 0 {
                return Err("DELETE failed to remove its target rows".into());
            }
        }
        Ok(())
    }

    fn insert_step(s: &mut DeleteInsert, _pc: usize) -> Step {
        // Catalog::insert_rows — one step, it holds the tables lock
        // throughout.
        s.rows |= INSERTED;
        s.version += 1;
        Step::Done
    }

    fn delete_checked_step(s: &mut DeleteInsert, pc: usize) -> Step {
        match pc {
            // get_versioned: snapshot rows + version, then evaluate the
            // keep-predicate against the snapshot (outside the lock).
            0 => {
                s.snapshot = Some((s.version, s.rows & !ODD_ROWS));
                Step::Next
            }
            // replace_rows_if: publish only if the version is unchanged;
            // otherwise loop back to re-snapshot (HEAD's retry loop).
            _ => {
                let (v, kept) = s.snapshot.expect("snapshot taken at pc 0");
                if s.version == v {
                    s.rows = kept;
                    s.version += 1;
                    Step::Done
                } else {
                    Step::Goto(0)
                }
            }
        }
    }

    fn delete_unchecked_step(s: &mut DeleteInsert, pc: usize) -> Step {
        // The PR-7 bug: replace_rows publishes the stale snapshot
        // unconditionally.
        match pc {
            0 => {
                s.snapshot = Some((s.version, s.rows & !ODD_ROWS));
                Step::Next
            }
            _ => {
                let (_, kept) = s.snapshot.expect("snapshot taken at pc 0");
                s.rows = kept;
                s.version += 1;
                Step::Done
            }
        }
    }

    fn delete_insert_initial() -> DeleteInsert {
        DeleteInsert {
            version: 1,
            rows: PREEXISTING,
            snapshot: None,
        }
    }

    /// DELETE publishes through version-checked `replace_rows_if` with a
    /// retry loop (HEAD behavior).
    pub fn delete_insert_fixed() -> Model<DeleteInsert> {
        Model {
            name: "delete-insert/fixed",
            initial: delete_insert_initial(),
            threads: vec![
                Thread {
                    name: "delete",
                    step: delete_checked_step,
                },
                Thread {
                    name: "insert",
                    step: insert_step,
                },
            ],
            invariant: delete_insert_invariant,
        }
    }

    /// DELETE publishes through unconditional `replace_rows` (the pre-PR-7
    /// protocol). The checker finds the lost insert.
    pub fn delete_insert_reverted() -> Model<DeleteInsert> {
        Model {
            name: "delete-insert/reverted",
            initial: delete_insert_initial(),
            threads: vec![
                Thread {
                    name: "delete",
                    step: delete_unchecked_step,
                },
                Thread {
                    name: "insert",
                    step: insert_step,
                },
            ],
            invariant: delete_insert_invariant,
        }
    }

    // ----------------------------------------------------------------
    // 3. Admission queue handoff
    // ----------------------------------------------------------------

    /// The admission controller's counters plus an explicit wakeup token,
    /// modeling the condvar (a waiter only re-checks after a notify).
    #[derive(Clone)]
    pub struct Admission {
        running: usize,
        waiting: usize,
        wakeups: usize,
        admitted: usize,
    }

    const MAX_CONCURRENT: usize = 1;

    fn admission_invariant(s: &Admission, done: &[bool]) -> Result<(), String> {
        if s.running > MAX_CONCURRENT {
            return Err(format!(
                "admission over cap: {} running > {} allowed",
                s.running, MAX_CONCURRENT
            ));
        }
        if done.iter().all(|d| *d) && s.admitted != 2 {
            return Err(format!("only {} of 2 queries ever admitted", s.admitted));
        }
        Ok(())
    }

    fn holder_release_notify(s: &mut Admission, _pc: usize) -> Step {
        // AdmissionPermit::drop: decrement under the lock, then notify.
        s.running -= 1;
        if s.waiting > 0 {
            s.wakeups += 1;
        }
        Step::Done
    }

    fn holder_release_silent(s: &mut Admission, _pc: usize) -> Step {
        // Reverted variant: the release forgets to notify the condvar.
        s.running -= 1;
        Step::Done
    }

    fn waiter_step(s: &mut Admission, pc: usize) -> Step {
        match pc {
            // admit(): fast path or enqueue, one lock hold.
            0 => {
                if s.running < MAX_CONCURRENT {
                    s.running += 1;
                    s.admitted += 1;
                    return Step::Goto(2);
                }
                s.waiting += 1;
                Step::Next
            }
            // cond.wait(): block until a wakeup token exists, then consume
            // it and re-check the admission condition.
            1 => {
                if s.wakeups == 0 {
                    return Step::Block;
                }
                s.wakeups -= 1;
                if s.running < MAX_CONCURRENT {
                    s.waiting -= 1;
                    s.running += 1;
                    s.admitted += 1;
                    return Step::Goto(2);
                }
                Step::Block
            }
            // Run the query, then release the slot (permit drop).
            _ => {
                s.running -= 1;
                Step::Done
            }
        }
    }

    fn admission_initial() -> Admission {
        Admission {
            // One query already holds the single slot; one will arrive.
            running: 1,
            waiting: 0,
            wakeups: 0,
            admitted: 1,
        }
    }

    /// A full slot handoff: the holder releases-and-notifies, the waiter
    /// wakes and admits (HEAD behavior).
    pub fn admission_handoff_fixed() -> Model<Admission> {
        Model {
            name: "admission-handoff/fixed",
            initial: admission_initial(),
            threads: vec![
                Thread {
                    name: "holder",
                    step: holder_release_notify,
                },
                Thread {
                    name: "waiter",
                    step: waiter_step,
                },
            ],
            invariant: admission_invariant,
        }
    }

    /// The release with the notify mechanically removed: the waiter sleeps
    /// forever on the condvar. The checker reports a deadlock.
    pub fn admission_handoff_reverted() -> Model<Admission> {
        Model {
            name: "admission-handoff/reverted",
            initial: admission_initial(),
            threads: vec![
                Thread {
                    name: "holder",
                    step: holder_release_silent,
                },
                Thread {
                    name: "waiter",
                    step: waiter_step,
                },
            ],
            invariant: admission_invariant,
        }
    }

    // ----------------------------------------------------------------
    // 4. Result-cache invalidation
    // ----------------------------------------------------------------

    /// A one-entry result cache in front of a versioned table. An entry
    /// records the data version its result was computed at; a cache hit is
    /// a *stale serve* when, at the moment of the serve, that version is no
    /// longer the table's current one. (A write landing *after* a serve is
    /// a legal serialization — the read simply ordered first.)
    #[derive(Clone)]
    pub struct ResultCacheProto {
        table_version: u64,
        /// `(keyed_version, computed_at)`: `keyed_version` is what lookup
        /// compares against (the version fingerprint in the key on HEAD;
        /// ignored in the reverted variant), `computed_at` is the data the
        /// entry actually holds.
        entry: Option<(u64, u64)>,
        /// Most recent executed-read version (keys the entry it populates).
        executed: u64,
        /// Set at the moment a cache hit serves outdated data.
        stale: Option<String>,
    }

    fn result_cache_invariant(s: &ResultCacheProto, _done: &[bool]) -> Result<(), String> {
        match &s.stale {
            Some(msg) => Err(msg.clone()),
            None => Ok(()),
        }
    }

    /// Record a cache-hit serve, flagging it when the served data is no
    /// longer current at serve time.
    fn serve_from_cache(s: &mut ResultCacheProto, computed: u64) {
        if computed != s.table_version {
            s.stale = Some(format!(
                "stale serve: cache hit returned data of version {computed} while the table \
                 is at version {}",
                s.table_version
            ));
        }
    }

    fn writer_step(s: &mut ResultCacheProto, _pc: usize) -> Step {
        // One catalog mutation; version-keyed entries stop matching at the
        // moment this commits (their fingerprint is stale).
        s.table_version += 1;
        Step::Done
    }

    fn reader_versioned_step(s: &mut ResultCacheProto, pc: usize) -> Step {
        match pc {
            // Lookup: an entry hits only if its keyed version matches the
            // current fingerprint (the fingerprint is part of the key).
            0 => match s.entry {
                Some((keyed, computed)) if keyed == s.table_version => {
                    serve_from_cache(s, computed);
                    Step::Done
                }
                _ => Step::Next,
            },
            // Miss: execute against the current version...
            1 => {
                s.executed = s.table_version;
                Step::Next
            }
            // ...and populate the cache, keyed by the version it read.
            _ => {
                s.entry = Some((s.executed, s.executed));
                Step::Done
            }
        }
    }

    fn reader_unversioned_step(s: &mut ResultCacheProto, pc: usize) -> Step {
        // Reverted variant: the key omits the version fingerprint, so any
        // entry hits regardless of the table's current version.
        match pc {
            0 => match s.entry {
                Some((_, computed)) => {
                    serve_from_cache(s, computed);
                    Step::Done
                }
                None => Step::Next,
            },
            1 => {
                s.executed = s.table_version;
                Step::Next
            }
            _ => {
                s.entry = Some((s.executed, s.executed));
                Step::Done
            }
        }
    }

    fn result_cache_initial() -> ResultCacheProto {
        ResultCacheProto {
            table_version: 1,
            entry: None,
            executed: 0,
            stale: None,
        }
    }

    /// Two sequential readers around a concurrent writer, cache keyed by
    /// version fingerprint (HEAD behavior): a stale entry can never hit.
    pub fn result_cache_fixed() -> Model<ResultCacheProto> {
        Model {
            name: "result-cache/fixed",
            initial: result_cache_initial(),
            threads: vec![
                Thread {
                    name: "reader-1",
                    step: reader_versioned_step,
                },
                Thread {
                    name: "writer",
                    step: writer_step,
                },
                Thread {
                    name: "reader-2",
                    step: reader_versioned_step,
                },
            ],
            invariant: result_cache_invariant,
        }
    }

    /// The same threads with the version fingerprint mechanically dropped
    /// from the cache key. The checker finds a stale serve.
    pub fn result_cache_reverted() -> Model<ResultCacheProto> {
        Model {
            name: "result-cache/reverted",
            initial: result_cache_initial(),
            threads: vec![
                Thread {
                    name: "reader-1",
                    step: reader_unversioned_step,
                },
                Thread {
                    name: "writer",
                    step: writer_step,
                },
                Thread {
                    name: "reader-2",
                    step: reader_unversioned_step,
                },
            ],
            invariant: result_cache_invariant,
        }
    }

    // ----------------------------------------------------------------
    // The suite
    // ----------------------------------------------------------------

    /// One protocol's fixed/reverted pair, checked exhaustively.
    pub struct ProtocolReport {
        /// The protocol name (without the variant suffix).
        pub protocol: &'static str,
        /// Exhaustive check of the HEAD-mirroring variant.
        pub fixed: CheckOutcome,
        /// Exhaustive check of the fix-reverted variant.
        pub reverted: CheckOutcome,
    }

    impl ProtocolReport {
        /// The pass condition: HEAD clean, revert caught, neither truncated.
        pub fn ok(&self) -> bool {
            self.fixed.violation.is_none()
                && self.reverted.violation.is_some()
                && !self.fixed.stats.truncated
                && !self.reverted.stats.truncated
        }
    }

    /// Exhaustively check every shipped protocol, fixed and reverted.
    pub fn check_all() -> Vec<ProtocolReport> {
        let limits = Limits::default();
        vec![
            ProtocolReport {
                protocol: "matview-publish",
                fixed: check_exhaustive(&matview_publish_fixed(), limits),
                reverted: check_exhaustive(&matview_publish_reverted(), limits),
            },
            ProtocolReport {
                protocol: "delete-insert",
                fixed: check_exhaustive(&delete_insert_fixed(), limits),
                reverted: check_exhaustive(&delete_insert_reverted(), limits),
            },
            ProtocolReport {
                protocol: "admission-handoff",
                fixed: check_exhaustive(&admission_handoff_fixed(), limits),
                reverted: check_exhaustive(&admission_handoff_reverted(), limits),
            },
            ProtocolReport {
                protocol: "result-cache",
                fixed: check_exhaustive(&result_cache_fixed(), limits),
                reverted: check_exhaustive(&result_cache_reverted(), limits),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two incrementers with a read-modify-write torn across two steps —
    /// the canonical lost update, to exercise the checker itself.
    #[derive(Clone)]
    struct Counter {
        value: u64,
        stash: [u64; 2],
    }

    fn torn_inc(me: usize) -> fn(&mut Counter, usize) -> Step {
        match me {
            0 => |s: &mut Counter, pc: usize| torn_inc_step(s, pc, 0),
            _ => |s: &mut Counter, pc: usize| torn_inc_step(s, pc, 1),
        }
    }

    fn torn_inc_step(s: &mut Counter, pc: usize, me: usize) -> Step {
        match pc {
            0 => {
                s.stash[me] = s.value;
                Step::Next
            }
            _ => {
                s.value = s.stash[me] + 1;
                Step::Done
            }
        }
    }

    fn counter_model() -> Model<Counter> {
        Model {
            name: "torn-counter",
            initial: Counter {
                value: 0,
                stash: [0, 0],
            },
            threads: vec![
                Thread {
                    name: "inc-0",
                    step: torn_inc(0),
                },
                Thread {
                    name: "inc-1",
                    step: torn_inc(1),
                },
            ],
            invariant: |s, done| {
                if done.iter().all(|d| *d) && s.value != 2 {
                    Err(format!("lost update: counter is {}, expected 2", s.value))
                } else {
                    Ok(())
                }
            },
        }
    }

    #[test]
    fn exhaustive_finds_lost_update() {
        let out = check_exhaustive(&counter_model(), Limits::default());
        let v = out.violation.expect("lost update must be found");
        assert_eq!(v.kind, ViolationKind::Invariant);
        assert!(v.message.contains("lost update"), "{v}");
        // The counterexample schedule interleaves the two reads before
        // either write.
        assert!(v.schedule.len() >= 3, "{v}");
    }

    #[test]
    fn random_finds_lost_update_deterministically() {
        let a = check_random(&counter_model(), 42, 200);
        let b = check_random(&counter_model(), 42, 200);
        assert!(a.violation.is_some());
        // Same seed, same counterexample.
        assert_eq!(a.violation.unwrap().schedule, b.violation.unwrap().schedule);
    }

    #[test]
    fn deadlock_detected() {
        // Two threads each waiting for the other's flag: a pure deadlock.
        #[derive(Clone)]
        struct TwoFlags([bool; 2]);
        let model = Model {
            name: "cross-wait",
            initial: TwoFlags([false, false]),
            threads: vec![
                Thread {
                    name: "a",
                    step: |s: &mut TwoFlags, _| if s.0[1] { Step::Done } else { Step::Block },
                },
                Thread {
                    name: "b",
                    step: |s: &mut TwoFlags, _| if s.0[0] { Step::Done } else { Step::Block },
                },
            ],
            invariant: |_, _| Ok(()),
        };
        let out = check_exhaustive(&model, Limits::default());
        assert_eq!(
            out.violation.expect("deadlock").kind,
            ViolationKind::Deadlock
        );
    }

    #[test]
    fn clean_model_reports_schedule_count() {
        // Two independent two-step threads: C(4,2) = 6 interleavings.
        #[derive(Clone)]
        struct Nothing;
        let step = |_: &mut Nothing, pc: usize| if pc == 0 { Step::Next } else { Step::Done };
        let model = Model {
            name: "independent",
            initial: Nothing,
            threads: vec![Thread { name: "a", step }, Thread { name: "b", step }],
            invariant: |_, _| Ok(()),
        };
        let out = check_exhaustive(&model, Limits::default());
        assert!(out.violation.is_none());
        assert_eq!(out.stats.schedules, 6);
        assert!(!out.stats.truncated);
    }

    #[test]
    fn truncation_is_reported() {
        #[derive(Clone)]
        struct Nothing;
        let step = |_: &mut Nothing, pc: usize| if pc < 8 { Step::Next } else { Step::Done };
        let model = Model {
            name: "wide",
            initial: Nothing,
            threads: (0..4).map(|_| Thread { name: "t", step }).collect(),
            invariant: |_, _| Ok(()),
        };
        let out = check_exhaustive(
            &model,
            Limits {
                max_schedules: 5,
                max_steps: u64::MAX,
            },
        );
        assert!(out.stats.truncated);
        assert!(out.violation.is_none());
    }
}
