//! Deterministic fault injection for the cluster simulator.
//!
//! A [`FaultSpec`] gives per-task probabilities for three failure modes —
//! worker kill, straggler delay, and lost shuffle output — plus a seed. The
//! [`FaultInjector`] turns the spec into a *pure function* of
//! `(seed, stage, task, attempt)`: the same seeded run always injects the
//! same faults, so recovery soak tests are exactly reproducible. The decision
//! deliberately ignores which worker the task lands on, so retry placement
//! and blacklisting never perturb the fault schedule.
//!
//! Faults fire at task *receipt*, before the task body runs (a worker
//! crashing as it picks up the task). This models the recoverable failure
//! class for mutable SetRDD-style state: a task that has started merging into
//! a partition cannot be blindly re-run, but one that never started can.

use std::time::Duration;

/// Default straggler delay injected by `delay` faults.
pub const DEFAULT_DELAY_US: u64 = 500;

/// Seeded per-task failure probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability a task's worker "crashes" at task receipt.
    pub kill: f64,
    /// Probability a task is delayed (straggler) before running.
    pub delay: f64,
    /// Probability a task's output is "lost in transit" (it must re-run).
    pub loss: f64,
    /// Straggler delay duration, µs.
    pub delay_us: u64,
    /// Seed for the deterministic decision hash.
    pub seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            kill: 0.0,
            delay: 0.0,
            loss: 0.0,
            delay_us: DEFAULT_DELAY_US,
            seed: 0,
        }
    }
}

impl FaultSpec {
    /// True if any fault has a non-zero probability.
    pub fn is_active(&self) -> bool {
        self.kill > 0.0 || self.delay > 0.0 || self.loss > 0.0
    }

    /// Parse a comma- or whitespace-separated `key=value` list, e.g.
    /// `"kill=0.05,delay=0.01,loss=0.02,delay_us=500,seed=42"`. Unknown keys
    /// are an error; probabilities are clamped to `[0, 1]`.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for token in s.split([',', ' ']).filter(|t| !t.is_empty()) {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("fault spec token '{token}' is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                v.parse::<f64>()
                    .map_err(|e| format!("bad probability '{v}': {e}"))
                    .map(|p| p.clamp(0.0, 1.0))
            };
            match key {
                "kill" => spec.kill = prob(value)?,
                "delay" => spec.delay = prob(value)?,
                "loss" => spec.loss = prob(value)?,
                "delay_us" => {
                    spec.delay_us = value
                        .parse::<u64>()
                        .map_err(|e| format!("bad delay_us '{value}': {e}"))?;
                }
                "seed" => {
                    spec.seed = value
                        .parse::<u64>()
                        .map_err(|e| format!("bad seed '{value}': {e}"))?;
                }
                other => return Err(format!("unknown fault spec key '{other}'")),
            }
        }
        Ok(spec)
    }
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kill={},delay={},loss={},delay_us={},seed={}",
            self.kill, self.delay, self.loss, self.delay_us, self.seed
        )
    }
}

/// The fate decided for one task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskFault {
    /// Run normally.
    None,
    /// Worker crashes at task receipt; the task must be retried.
    Kill,
    /// The task's output is lost in transit; the task must be retried.
    LoseOutput,
    /// The task runs, but only after a straggler delay.
    Delay(Duration),
}

impl TaskFault {
    /// Short name for metrics/trace labels.
    pub fn name(&self) -> &'static str {
        match self {
            TaskFault::None => "none",
            TaskFault::Kill => "kill",
            TaskFault::LoseOutput => "lost_output",
            TaskFault::Delay(_) => "delay",
        }
    }
}

/// Deterministic per-task fault decisions derived from a [`FaultSpec`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    spec: FaultSpec,
}

impl FaultInjector {
    /// Build an injector for a spec.
    pub fn new(spec: FaultSpec) -> Self {
        FaultInjector { spec }
    }

    /// The spec this injector was built from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Decide the fate of `(stage, task, attempt)`. Pure: identical inputs
    /// always produce identical decisions, independent of placement/timing.
    pub fn decide(&self, stage: u64, task: u64, attempt: u32) -> TaskFault {
        let u = self.draw(stage, task, attempt, 0);
        if u < self.spec.kill {
            return TaskFault::Kill;
        }
        if u < self.spec.kill + self.spec.loss {
            return TaskFault::LoseOutput;
        }
        if self.spec.delay > 0.0 && self.draw(stage, task, attempt, 1) < self.spec.delay {
            return TaskFault::Delay(Duration::from_micros(self.spec.delay_us));
        }
        TaskFault::None
    }

    /// A uniform draw in `[0, 1)` from the decision hash.
    fn draw(&self, stage: u64, task: u64, attempt: u32, salt: u64) -> f64 {
        let mut h = self
            .spec
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(stage.wrapping_add(1)));
        h = splitmix(h ^ task.wrapping_mul(0xd134_2543_de82_ef95));
        h = splitmix(h ^ ((attempt as u64) << 32) ^ salt);
        // 53 high bits → an exactly representable double in [0, 1).
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
#[inline]
fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        let spec = FaultSpec::parse("kill=0.05,delay=0.01,loss=0.02,delay_us=700,seed=42").unwrap();
        assert_eq!(spec.kill, 0.05);
        assert_eq!(spec.delay, 0.01);
        assert_eq!(spec.loss, 0.02);
        assert_eq!(spec.delay_us, 700);
        assert_eq!(spec.seed, 42);
        assert_eq!(FaultSpec::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn parse_accepts_spaces_and_clamps() {
        let spec = FaultSpec::parse("kill=2.0 seed=7").unwrap();
        assert_eq!(spec.kill, 1.0);
        assert_eq!(spec.seed, 7);
        assert!(spec.is_active());
        assert!(!FaultSpec::parse("").unwrap().is_active());
    }

    #[test]
    fn parse_rejects_unknown_keys_and_bad_numbers() {
        assert!(FaultSpec::parse("frob=1").is_err());
        assert!(FaultSpec::parse("kill=abc").is_err());
        assert!(FaultSpec::parse("kill").is_err());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let spec = FaultSpec {
            kill: 0.3,
            delay: 0.2,
            loss: 0.1,
            ..Default::default()
        };
        let a = FaultInjector::new(FaultSpec { seed: 1, ..spec });
        let b = FaultInjector::new(FaultSpec { seed: 1, ..spec });
        let c = FaultInjector::new(FaultSpec { seed: 2, ..spec });
        let mut diverged = false;
        for stage in 0..20u64 {
            for task in 0..8u64 {
                assert_eq!(a.decide(stage, task, 1), b.decide(stage, task, 1));
                diverged |= a.decide(stage, task, 1) != c.decide(stage, task, 1);
            }
        }
        assert!(diverged, "different seeds should give different schedules");
    }

    #[test]
    fn retry_attempts_see_fresh_decisions() {
        // With kill=0.5 some (stage, task) must flip between attempts;
        // otherwise a killed task could never succeed on retry.
        let inj = FaultInjector::new(FaultSpec {
            kill: 0.5,
            seed: 9,
            ..Default::default()
        });
        let flipped = (0..50u64).any(|t| inj.decide(0, t, 1) != inj.decide(0, t, 2));
        assert!(flipped);
    }

    #[test]
    fn rates_match_probabilities_roughly() {
        let inj = FaultInjector::new(FaultSpec {
            kill: 0.2,
            seed: 123,
            ..Default::default()
        });
        let n = 10_000u64;
        let kills = (0..n)
            .filter(|&t| inj.decide(0, t, 1) == TaskFault::Kill)
            .count() as f64;
        let rate = kills / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "kill rate {rate}");
    }
}
