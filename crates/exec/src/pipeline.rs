//! Operator pipelines: the whole-stage code-generation analog (paper §7.3).
//!
//! Spark's codegen collapses the operators of a stage into one generated
//! function, eliminating per-tuple virtual calls and intermediate
//! materialization. A Rust reproduction cannot JIT, but the same axis exists:
//!
//! - [`run_unfused`] executes each step as its own pass, materializing an
//!   intermediate row vector between operators (the volcano/RDD-chain model);
//! - [`run_fused`] pushes every input row through all steps in one pass with
//!   no intermediate collections.
//!
//! Both produce identical results; Fig 7 measures the difference.

use crate::join::HashTable;
use rasql_storage::{Row, Value};
use std::sync::Arc;

/// A row-level predicate.
pub type PredFn = Arc<dyn Fn(&Row) -> bool + Send + Sync>;
/// A key extractor producing the probe key for a hash join.
pub type KeyFn = Arc<dyn Fn(&Row) -> Vec<Value> + Send + Sync>;
/// A row transform (final projection).
pub type MapFn = Arc<dyn Fn(&Row) -> Row + Send + Sync>;

/// One step of a pipeline.
#[derive(Clone)]
pub enum PipelineStep {
    /// Keep rows satisfying the predicate.
    Filter(PredFn),
    /// Hash-join: for each input row, probe `table` with `key(row)` and emit
    /// `row ++ match` for every match. An empty key = cross join (emit against
    /// every build row).
    HashJoin {
        /// The (cached) build-side table.
        table: Arc<HashTable>,
        /// Probe-key extractor.
        key: KeyFn,
    },
    /// Hash-join against a stack of build layers: each probe visits every
    /// layer in order and emits `row ++ match` for every match in every
    /// layer. An incremental-view refresh retains the converged build table
    /// and stacks small delta-only tables on top instead of rebuilding.
    HashJoinLayered {
        /// Build layers, oldest first.
        tables: Vec<Arc<HashTable>>,
        /// Probe-key extractor.
        key: KeyFn,
    },
}

/// A pipeline: steps then a final projection.
#[derive(Clone)]
pub struct Pipeline {
    /// Steps in order.
    pub steps: Vec<PipelineStep>,
    /// Final row transform.
    pub project: MapFn,
}

impl Pipeline {
    /// Identity-projection pipeline.
    pub fn new(steps: Vec<PipelineStep>) -> Self {
        Pipeline {
            steps,
            project: Arc::new(|r: &Row| r.clone()),
        }
    }

    /// Pipeline with a final projection.
    pub fn with_project(steps: Vec<PipelineStep>, project: MapFn) -> Self {
        Pipeline { steps, project }
    }
}

/// Unfused execution: one full pass (and one intermediate `Vec<Row>`) per
/// operator — the cost model of chained RDD transformations without codegen.
pub fn run_unfused(input: &[Row], pipeline: &Pipeline) -> Vec<Row> {
    let mut current: Vec<Row> = input.to_vec();
    for step in &pipeline.steps {
        let mut next = Vec::with_capacity(current.len());
        match step {
            PipelineStep::Filter(p) => {
                for row in &current {
                    if p(row) {
                        next.push(row.clone());
                    }
                }
            }
            PipelineStep::HashJoin { table, key } => {
                for row in &current {
                    let k = key(row);
                    for m in table.probe(&k) {
                        next.push(row.concat(m));
                    }
                }
            }
            PipelineStep::HashJoinLayered { tables, key } => {
                for row in &current {
                    let k = key(row);
                    for table in tables {
                        for m in table.probe(&k) {
                            next.push(row.concat(m));
                        }
                    }
                }
            }
        }
        current = next;
    }
    current.iter().map(|r| (pipeline.project)(r)).collect()
}

/// Fused execution: every row flows through all steps in one pass, no
/// intermediate collections (the "collapsed single function" of §7.3).
pub fn run_fused(input: &[Row], pipeline: &Pipeline) -> Vec<Row> {
    let mut out = Vec::new();
    for row in input {
        push_row(row, &pipeline.steps, &pipeline.project, &mut out);
    }
    out
}

fn push_row(row: &Row, steps: &[PipelineStep], project: &MapFn, out: &mut Vec<Row>) {
    match steps.first() {
        None => out.push(project(row)),
        Some(PipelineStep::Filter(p)) => {
            if p(row) {
                push_row(row, &steps[1..], project, out);
            }
        }
        Some(PipelineStep::HashJoin { table, key }) => {
            let k = key(row);
            for m in table.probe(&k) {
                let joined = row.concat(m);
                push_row(&joined, &steps[1..], project, out);
            }
        }
        Some(PipelineStep::HashJoinLayered { tables, key }) => {
            let k = key(row);
            for table in tables {
                for m in table.probe(&k) {
                    let joined = row.concat(m);
                    push_row(&joined, &steps[1..], project, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasql_storage::row::int_row;

    fn pipeline_fixture() -> (Vec<Row>, Pipeline) {
        let input: Vec<Row> = (0..100).map(|i| int_row(&[i, i % 7])).collect();
        let build: Vec<Row> = (0..7).map(|i| int_row(&[i, i * 100])).collect();
        let table = Arc::new(HashTable::build(&build, &[0]));
        let steps = vec![
            PipelineStep::Filter(Arc::new(|r: &Row| r[0].as_int().unwrap() % 2 == 0)),
            PipelineStep::HashJoin {
                table,
                key: Arc::new(|r: &Row| vec![r[1].clone()]),
            },
            PipelineStep::Filter(Arc::new(|r: &Row| r[3].as_int().unwrap() >= 100)),
        ];
        let project: MapFn = Arc::new(|r: &Row| r.project(&[0, 3]));
        (input, Pipeline::with_project(steps, project))
    }

    #[test]
    fn fused_and_unfused_agree() {
        let (input, p) = pipeline_fixture();
        let mut a = run_fused(&input, &p);
        let mut b = run_unfused(&input, &p);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn empty_pipeline_is_projection() {
        let input = vec![int_row(&[1, 2])];
        let p = Pipeline::with_project(vec![], Arc::new(|r: &Row| r.project(&[1])));
        assert_eq!(run_fused(&input, &p), vec![int_row(&[2])]);
        assert_eq!(run_unfused(&input, &p), vec![int_row(&[2])]);
    }

    #[test]
    fn layered_join_matches_single_build() {
        let input: Vec<Row> = (0..50).map(|i| int_row(&[i % 9])).collect();
        let build: Vec<Row> = (0..9).map(|i| int_row(&[i, i * 10])).collect();
        let key: KeyFn = Arc::new(|r: &Row| vec![r[0].clone()]);
        let merged = Pipeline::new(vec![PipelineStep::HashJoin {
            table: Arc::new(HashTable::build(&build, &[0])),
            key: Arc::clone(&key),
        }]);
        let layered = Pipeline::new(vec![PipelineStep::HashJoinLayered {
            tables: vec![
                Arc::new(HashTable::build(&build[..6], &[0])),
                Arc::new(HashTable::build(&build[6..], &[0])),
            ],
            key,
        }]);
        for run in [run_fused, run_unfused] {
            let mut a = run(&input, &merged);
            let mut b = run(&input, &layered);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn filter_drops_everything() {
        let input = vec![int_row(&[1]), int_row(&[2])];
        let p = Pipeline::new(vec![PipelineStep::Filter(Arc::new(|_| false))]);
        assert!(run_fused(&input, &p).is_empty());
        assert!(run_unfused(&input, &p).is_empty());
    }
}
