#![warn(missing_docs)]

//! # rasql-exec
//!
//! The distributed-runtime substrate of the RaSQL reproduction: a
//! **cluster simulator** standing in for Apache Spark (see DESIGN.md for the
//! substitution argument). It provides:
//!
//! - a pool of worker threads with **stage-granular scheduling** and a
//!   pluggable **locality policy** (partition-aware vs. Spark's default hybrid
//!   policy, §6.1 of the paper);
//! - hash-partitioned [`Dataset`]s whose partitions live on owning workers;
//!   running a task away from its partition's home incurs a *real* deep copy,
//!   so locality effects show up in wall-clock time and in [`Metrics`];
//! - shuffle exchanges with byte accounting;
//! - broadcast variables with byte accounting (compressed payloads are the
//!   caller's choice — §7.2);
//! - the mutable per-partition fixpoint state of §6.1/§6.2: [`SetState`]
//!   (the SetRDD analog) and [`AggState`] (monotone aggregate maps);
//! - hash-join and sort-merge-join kernels (Appendix D);
//! - **fused vs. unfused operator pipelines** — the code-generation analog
//!   (§7.3): the unfused backend materializes an intermediate collection per
//!   operator, the fused backend collapses all steps into one pass;
//! - a **fault-tolerance layer**: deterministic seeded fault injection
//!   ([`FaultSpec`]), task retry with backoff and worker blacklisting, typed
//!   stage errors ([`ExecError`]), and round-boundary checkpoint stores
//!   ([`CheckpointStore`]) for the fixpoint's mutable state (which forfeits
//!   Spark's lineage recovery — see DESIGN.md "Fault tolerance");
//! - a **resource-governance layer**: per-query memory budgets with
//!   spill-to-disk ([`MemoryTracker`], [`crate::spill`]), deadlines and
//!   cooperative cancellation ([`CancellationToken`]), and concurrent-query
//!   admission control ([`AdmissionController`]) — the Spark facilities the
//!   paper's engine inherited for free (see DESIGN.md "Resource
//!   governance").

pub mod broadcast;
pub mod checkpoint;
pub mod cluster;
pub mod dataset;
pub mod error;
pub mod fault;
pub mod governor;
pub mod join;
pub mod kernel;
pub mod metrics;
pub mod modelcheck;
pub mod pipeline;
pub mod spill;
pub mod state;
pub mod trace;

/// Rank-checked lock wrappers (re-export of [`rasql_storage::sync`], which
/// defines the engine's single global lock-rank table).
pub mod sync {
    pub use rasql_storage::sync::*;
}

pub use broadcast::Broadcast;
pub use checkpoint::{
    decode_agg_state, decode_rows, decode_set_state, encode_agg_state, encode_rows,
    encode_set_state, CheckpointStore,
};
pub use cluster::{Cluster, ClusterConfig, StageTask};
pub use dataset::{Dataset, RowCombiner};
pub use error::ExecError;
pub use fault::{FaultInjector, FaultSpec, TaskFault};
pub use governor::{
    AdmissionController, AdmissionPermit, CancellationToken, MemoryTracker, QueryGovernor,
};
pub use join::{merge_join, HashTable};
pub use kernel::{
    scan_delta, scan_delta_set, DenseAggState, DenseSetState, KernelValue, MaxOp, MergeOp, MinOp,
    SumOp,
};
pub use metrics::{Metrics, MetricsSnapshot};
pub use pipeline::{run_fused, run_unfused, Pipeline, PipelineStep};
pub use spill::SpillDir;
pub use state::{AggState, MergeOutcome, MonotoneOp, SetState};
pub use trace::{
    CliqueTrace, IterationTrace, JsonValue, OperatorTrace, QueryTrace, RecoveryEvent, RecoveryKind,
    StageKind, StageSpan, TraceSink,
};
