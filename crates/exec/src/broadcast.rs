//! Broadcast variables (paper §7.2).
//!
//! The decomposed-plan optimization ships the base relation to every worker.
//! Spark's default builds the hash table on the master and broadcasts the
//! hashed relation (2-3x larger); RaSQL broadcasts a compressed payload and
//! has each worker build its own hash table. The simulator models the network
//! cost as `payload_bytes × workers` charged to `broadcast_bytes`, and the
//! per-worker rebuild runs as a real stage on each worker.

use crate::cluster::Cluster;
use crate::error::ExecError;
use crate::metrics::Metrics;
use crate::trace::{StageKind, TraceSink};
use parking_lot::Mutex;
use std::sync::Arc;

/// A value replicated to every worker.
///
/// Per-worker copies are materialized via [`Broadcast::distribute`], which
/// runs the provided decode/build closure *on each worker* (one task per
/// worker) — exactly the paper's "ask each worker to build the hash table on
/// its own".
pub struct Broadcast<T> {
    copies: Vec<Arc<T>>,
}

impl<T: Send + Sync + 'static> Broadcast<T> {
    /// Distribute `payload_bytes` worth of data to all workers, building the
    /// per-worker value with `build` (e.g. decompress + hash). The build cost
    /// is paid once per worker, in parallel, on the workers.
    pub fn distribute(
        cluster: &Cluster,
        payload_bytes: usize,
        build: impl Fn(usize) -> T + Send + Sync + 'static,
    ) -> Result<Self, ExecError> {
        Broadcast::distribute_traced(cluster, None, payload_bytes, build)
    }

    /// [`Broadcast::distribute`] that records the per-worker build stage as a
    /// `broadcast build` span into `sink` (when given).
    pub fn distribute_traced(
        cluster: &Cluster,
        sink: Option<&TraceSink>,
        payload_bytes: usize,
        build: impl Fn(usize) -> T + Send + Sync + 'static,
    ) -> Result<Self, ExecError> {
        Metrics::add(
            &cluster.metrics.broadcast_bytes,
            (payload_bytes * cluster.workers()) as u64,
        );
        let built: Arc<Mutex<Vec<Option<Arc<T>>>>> =
            Arc::new(Mutex::new((0..cluster.workers()).map(|_| None).collect()));
        let built2 = Arc::clone(&built);
        let build = Arc::new(build);
        cluster.run_on_all_workers_traced(
            sink,
            "broadcast build",
            StageKind::Broadcast,
            move |w| {
                let v = Arc::new(build(w));
                built2.lock()[w] = Some(v);
            },
        )?;
        let copies = Arc::try_unwrap(built)
            .ok()
            .expect("stage complete")
            .into_inner()
            .into_iter()
            .map(Option::unwrap)
            .collect();
        Ok(Broadcast { copies })
    }

    /// The copy local to `worker`.
    #[inline]
    pub fn on_worker(&self, worker: usize) -> &Arc<T> {
        &self.copies[worker]
    }

    /// Number of replicas.
    pub fn copies(&self) -> usize {
        self.copies.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;

    #[test]
    fn distribute_builds_one_copy_per_worker() {
        let c = Cluster::new(ClusterConfig::with_workers(3));
        let b = Broadcast::distribute(&c, 1000, |w| w * 10).unwrap();
        assert_eq!(b.copies(), 3);
        for w in 0..3 {
            assert_eq!(*b.on_worker(w).as_ref(), w * 10);
        }
        assert_eq!(c.metrics.snapshot().broadcast_bytes, 3000);
    }
}
