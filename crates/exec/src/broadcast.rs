//! Broadcast variables (paper §7.2).
//!
//! The decomposed-plan optimization ships the base relation to every worker.
//! Spark's default builds the hash table on the master and broadcasts the
//! hashed relation (2-3x larger); RaSQL broadcasts a compressed payload and
//! has each worker build its own hash table. The simulator models the network
//! cost as `payload_bytes × workers` charged to `broadcast_bytes`, and the
//! per-worker rebuild runs as a real stage on each worker.

use crate::cluster::{Cluster, StageTask};
use crate::error::ExecError;
use crate::governor::QueryGovernor;
use crate::metrics::Metrics;
use crate::trace::{StageKind, TraceSink};
use std::sync::Arc;

/// A value replicated to every worker.
///
/// Per-worker copies are materialized via [`Broadcast::distribute`], which
/// runs the provided decode/build closure *on each worker* (one task per
/// worker) — exactly the paper's "ask each worker to build the hash table on
/// its own".
pub struct Broadcast<T> {
    copies: Vec<Arc<T>>,
}

impl<T: Send + Sync + 'static> Broadcast<T> {
    /// Distribute `payload_bytes` worth of data to all workers, building the
    /// per-worker value with `build` (e.g. decompress + hash). The build cost
    /// is paid once per worker, in parallel, on the workers.
    pub fn distribute(
        cluster: &Cluster,
        payload_bytes: usize,
        build: impl Fn(usize) -> T + Send + Sync + 'static,
    ) -> Result<Self, ExecError> {
        Broadcast::distribute_traced(cluster, None, payload_bytes, build, None)
    }

    /// [`Broadcast::distribute`] that records the per-worker build stage as a
    /// `broadcast build` span into `sink` (when given).
    ///
    /// When a `governor` is given, the replicated payload
    /// (`payload_bytes × workers`) is charged to its memory tracker for the
    /// broadcast's build; a payload that alone cannot fit in the budget is a
    /// hard [`ExecError::MemoryExceeded`] — replicas are pinned on every
    /// worker for the fixpoint's lifetime, so there is nothing to spill.
    pub fn distribute_traced(
        cluster: &Cluster,
        sink: Option<&TraceSink>,
        payload_bytes: usize,
        build: impl Fn(usize) -> T + Send + Sync + 'static,
        governor: Option<&QueryGovernor>,
    ) -> Result<Self, ExecError> {
        let replicated = (payload_bytes * cluster.workers()) as u64;
        if let Some(g) = governor {
            g.check()?;
            let budget = g.tracker().budget();
            if budget > 0 && replicated > budget {
                return Err(ExecError::MemoryExceeded {
                    query_id: g.query_id(),
                    requested: replicated,
                    budget,
                });
            }
            g.tracker().charge(replicated);
        }
        Metrics::add(&cluster.metrics.broadcast_bytes, replicated);
        // One task per replica, indexed by the worker the copy is FOR. The
        // stage returns results in task order, so a task retried on a
        // different worker (fault injection, blacklisting) still lands its
        // copy in the right slot — the executing worker only pays the build
        // cost.
        let build = Arc::new(build);
        let tasks = (0..cluster.workers())
            .map(|w| {
                let build = Arc::clone(&build);
                StageTask::new(w, move |_wid| Arc::new(build(w)))
            })
            .collect();
        let stage = cluster.run_stage_traced(sink, "broadcast build", StageKind::Broadcast, tasks);
        if let Some(g) = governor {
            // The build stage is done (or failed): the transient charge ends
            // here; the live replicas are the consumer's to account.
            g.tracker().release(replicated);
        }
        Ok(Broadcast { copies: stage? })
    }

    /// The copy local to `worker`.
    #[inline]
    pub fn on_worker(&self, worker: usize) -> &Arc<T> {
        &self.copies[worker]
    }

    /// Number of replicas.
    pub fn copies(&self) -> usize {
        self.copies.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;

    #[test]
    fn distribute_builds_one_copy_per_worker() {
        let c = Cluster::new(ClusterConfig::with_workers(3));
        let b = Broadcast::distribute(&c, 1000, |w| w * 10).unwrap();
        assert_eq!(b.copies(), 3);
        for w in 0..3 {
            assert_eq!(*b.on_worker(w).as_ref(), w * 10);
        }
        assert_eq!(c.metrics.snapshot().broadcast_bytes, 3000);
    }
}
