//! Broadcast variables (paper §7.2).
//!
//! The decomposed-plan optimization ships the base relation to every worker.
//! Spark's default builds the hash table on the master and broadcasts the
//! hashed relation (2-3x larger); RaSQL broadcasts a compressed payload and
//! has each worker build its own hash table. The simulator models the network
//! cost as `payload_bytes × workers` charged to `broadcast_bytes`, and the
//! per-worker rebuild runs as a real stage on each worker.

use crate::cluster::Cluster;
use crate::error::ExecError;
use crate::governor::QueryGovernor;
use crate::metrics::Metrics;
use crate::trace::{StageKind, TraceSink};
use parking_lot::Mutex;
use std::sync::Arc;

/// A value replicated to every worker.
///
/// Per-worker copies are materialized via [`Broadcast::distribute`], which
/// runs the provided decode/build closure *on each worker* (one task per
/// worker) — exactly the paper's "ask each worker to build the hash table on
/// its own".
pub struct Broadcast<T> {
    copies: Vec<Arc<T>>,
}

impl<T: Send + Sync + 'static> Broadcast<T> {
    /// Distribute `payload_bytes` worth of data to all workers, building the
    /// per-worker value with `build` (e.g. decompress + hash). The build cost
    /// is paid once per worker, in parallel, on the workers.
    pub fn distribute(
        cluster: &Cluster,
        payload_bytes: usize,
        build: impl Fn(usize) -> T + Send + Sync + 'static,
    ) -> Result<Self, ExecError> {
        Broadcast::distribute_traced(cluster, None, payload_bytes, build, None)
    }

    /// [`Broadcast::distribute`] that records the per-worker build stage as a
    /// `broadcast build` span into `sink` (when given).
    ///
    /// When a `governor` is given, the replicated payload
    /// (`payload_bytes × workers`) is charged to its memory tracker for the
    /// broadcast's build; a payload that alone cannot fit in the budget is a
    /// hard [`ExecError::MemoryExceeded`] — replicas are pinned on every
    /// worker for the fixpoint's lifetime, so there is nothing to spill.
    pub fn distribute_traced(
        cluster: &Cluster,
        sink: Option<&TraceSink>,
        payload_bytes: usize,
        build: impl Fn(usize) -> T + Send + Sync + 'static,
        governor: Option<&QueryGovernor>,
    ) -> Result<Self, ExecError> {
        let replicated = (payload_bytes * cluster.workers()) as u64;
        if let Some(g) = governor {
            g.check()?;
            let budget = g.tracker().budget();
            if budget > 0 && replicated > budget {
                return Err(ExecError::MemoryExceeded {
                    query_id: g.query_id(),
                    requested: replicated,
                    budget,
                });
            }
            g.tracker().charge(replicated);
        }
        Metrics::add(&cluster.metrics.broadcast_bytes, replicated);
        let built: Arc<Mutex<Vec<Option<Arc<T>>>>> =
            Arc::new(Mutex::new((0..cluster.workers()).map(|_| None).collect()));
        let built2 = Arc::clone(&built);
        let build = Arc::new(build);
        let stage = cluster.run_on_all_workers_traced(
            sink,
            "broadcast build",
            StageKind::Broadcast,
            move |w| {
                let v = Arc::new(build(w));
                built2.lock()[w] = Some(v);
            },
        );
        if let Some(g) = governor {
            // The build stage is done (or failed): the transient charge ends
            // here; the live replicas are the consumer's to account.
            g.tracker().release(replicated);
        }
        stage?;
        let slots = Arc::try_unwrap(built)
            .map_err(|_| ExecError::TaskPanicked {
                stage: "broadcast build".into(),
                task: 0,
                worker: 0,
                message: "broadcast slots still shared after the build stage".into(),
            })?
            .into_inner();
        let mut copies = Vec::with_capacity(slots.len());
        for (w, slot) in slots.into_iter().enumerate() {
            copies.push(slot.ok_or_else(|| ExecError::TaskPanicked {
                stage: "broadcast build".into(),
                task: w,
                worker: w,
                message: "worker produced no broadcast copy".into(),
            })?);
        }
        Ok(Broadcast { copies })
    }

    /// The copy local to `worker`.
    #[inline]
    pub fn on_worker(&self, worker: usize) -> &Arc<T> {
        &self.copies[worker]
    }

    /// Number of replicas.
    pub fn copies(&self) -> usize {
        self.copies.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;

    #[test]
    fn distribute_builds_one_copy_per_worker() {
        let c = Cluster::new(ClusterConfig::with_workers(3));
        let b = Broadcast::distribute(&c, 1000, |w| w * 10).unwrap();
        assert_eq!(b.copies(), 3);
        for w in 0..3 {
            assert_eq!(*b.on_worker(w).as_ref(), w * 10);
        }
        assert_eq!(c.metrics.snapshot().broadcast_bytes, 3000);
    }
}
