//! Partitioned datasets: the RDD analog.
//!
//! A `Dataset` is a vector of immutable row partitions, each with a *home*
//! worker. Reading a partition from its home worker is free (an `Arc` clone);
//! reading it from elsewhere performs a deep copy and is charged to
//! `remote_fetch_bytes` — making the partition-aware-scheduling ablation
//! measurable in both metrics and wall-clock.

use crate::cluster::{Cluster, StageTask};
use crate::error::ExecError;
use crate::governor::QueryGovernor;
use crate::metrics::Metrics;
use crate::trace::{RecoveryEvent, RecoveryKind, StageKind, StageSpan, TraceSink};
use rasql_storage::{partition::row_partition, Partitioning, Relation, Row, Schema};
use std::sync::Arc;
use std::time::Instant;

/// A map-side combine function: collapses a shuffle bucket's rows into an
/// equivalent (for the downstream consumer) smaller set — e.g. merging
/// monotone-aggregate contributions that share a group key (paper §7.1).
pub type RowCombiner = Arc<dyn Fn(Vec<Row>) -> Vec<Row> + Send + Sync>;

/// A hash-partitioned, distributed (simulated) collection of rows.
#[derive(Clone)]
pub struct Dataset {
    /// Partition data; `Arc` so local access is zero-copy.
    pub partitions: Vec<Arc<Vec<Row>>>,
    /// How the data is partitioned.
    pub partitioning: Partitioning,
}

impl Dataset {
    /// Create from pre-built partitions.
    pub fn from_partitions(partitions: Vec<Vec<Row>>, partitioning: Partitioning) -> Self {
        Dataset {
            partitions: partitions.into_iter().map(Arc::new).collect(),
            partitioning,
        }
    }

    /// Hash-partition rows on `key` columns into `n` partitions.
    pub fn hash_partitioned(rows: Vec<Row>, key: &[usize], n: usize) -> Self {
        let cap = rows.len() / n.max(1) + 1;
        let mut parts: Vec<Vec<Row>> = (0..n).map(|_| Vec::with_capacity(cap)).collect();
        for row in rows {
            let p = row_partition(&row, key, n);
            parts[p].push(row);
        }
        Dataset::from_partitions(
            parts,
            Partitioning::Hash {
                key: key.to_vec(),
                partitions: n,
            },
        )
    }

    /// A single-partition dataset.
    pub fn single(rows: Vec<Row>) -> Self {
        Dataset::from_partitions(vec![rows], Partitioning::Single)
    }

    /// Split rows round-robin into `n` partitions with no partitioning
    /// guarantee (freshly loaded data).
    pub fn round_robin(rows: Vec<Row>, n: usize) -> Self {
        let cap = rows.len() / n.max(1) + 1;
        let mut parts: Vec<Vec<Row>> = (0..n).map(|_| Vec::with_capacity(cap)).collect();
        for (i, row) in rows.into_iter().enumerate() {
            parts[i % n].push(row);
        }
        Dataset::from_partitions(parts, Partitioning::Unknown { partitions: n })
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total row count.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// True if all partitions are empty.
    pub fn is_empty(&self) -> bool {
        self.partitions.iter().all(|p| p.is_empty())
    }

    /// Gather all rows to the driver.
    pub fn collect(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.len());
        for p in &self.partitions {
            out.extend(p.iter().cloned());
        }
        out
    }

    /// Gather all rows to the driver, consuming the dataset. Uniquely-owned
    /// partitions are moved, not cloned — the fast path for the end-of-query
    /// materialization where no other stage holds the data.
    pub fn into_rows(self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.len());
        for p in self.partitions {
            match Arc::try_unwrap(p) {
                Ok(rows) => out.extend(rows),
                Err(shared) => out.extend(shared.iter().cloned()),
            }
        }
        out
    }

    /// Materialize into a [`Relation`], consuming the dataset (see
    /// [`Dataset::into_rows`]).
    pub fn into_relation(self, schema: Schema) -> Relation {
        Relation::new_unchecked(schema, self.into_rows())
    }

    /// Access partition `p` from worker `worker`: zero-copy if local,
    /// deep-copied (and metered) if remote.
    pub fn read_partition(&self, cluster: &Cluster, p: usize, worker: usize) -> Arc<Vec<Row>> {
        let data = Arc::clone(&self.partitions[p]);
        if cluster.owner_of(p) == worker {
            data
        } else {
            let bytes: usize = data.iter().map(Row::size_bytes).sum();
            Metrics::add(&cluster.metrics.remote_fetches, 1);
            Metrics::add(&cluster.metrics.remote_fetch_bytes, bytes as u64);
            // The deep copy is the simulated network transfer.
            Arc::new(data.as_ref().clone())
        }
    }

    /// Run `f` over every partition as one stage; produces a new dataset with
    /// the same partition count and `Unknown` partitioning (caller may
    /// reassert a partitioning it knows is preserved).
    pub fn map_partitions(
        &self,
        cluster: &Cluster,
        f: impl Fn(usize, &[Row]) -> Vec<Row> + Send + Sync + 'static,
    ) -> Result<Dataset, ExecError> {
        self.map_partitions_traced(cluster, None, "map", f)
    }

    /// [`Dataset::map_partitions`] that records a labelled stage span into
    /// `sink` (when given).
    pub fn map_partitions_traced(
        &self,
        cluster: &Cluster,
        sink: Option<&TraceSink>,
        label: &str,
        f: impl Fn(usize, &[Row]) -> Vec<Row> + Send + Sync + 'static,
    ) -> Result<Dataset, ExecError> {
        let f = Arc::new(f);
        let n = self.num_partitions();
        let tasks: Vec<StageTask<Vec<Row>>> = (0..n)
            .map(|p| {
                let f = Arc::clone(&f);
                let this = self.clone();
                let cluster_metrics = Arc::clone(&cluster.metrics);
                let owner = cluster.owner_of(p);
                StageTask::new(owner, move |w| {
                    let data = Arc::clone(&this.partitions[p]);
                    let data = if w != owner {
                        let bytes: usize = data.iter().map(Row::size_bytes).sum();
                        Metrics::add(&cluster_metrics.remote_fetches, 1);
                        Metrics::add(&cluster_metrics.remote_fetch_bytes, bytes as u64);
                        Arc::new(data.as_ref().clone())
                    } else {
                        data
                    };
                    f(p, &data)
                })
            })
            .collect();
        let parts = cluster.run_stage_traced(sink, label, StageKind::Map, tasks)?;
        Ok(Dataset::from_partitions(
            parts,
            Partitioning::Unknown { partitions: n },
        ))
    }

    /// Shuffle into `n` partitions hash-keyed on `key` columns, as a
    /// map-exchange stage pair. Bytes that cross worker boundaries are charged
    /// to `shuffle_bytes`.
    pub fn shuffle(
        &self,
        cluster: &Cluster,
        key: &[usize],
        n: usize,
    ) -> Result<Dataset, ExecError> {
        self.shuffle_traced(cluster, None, "shuffle", key, n)
    }

    /// [`Dataset::shuffle`] that records the map side as a `shuffle write`
    /// span and the exchange/gather side as a `shuffle read` span.
    pub fn shuffle_traced(
        &self,
        cluster: &Cluster,
        sink: Option<&TraceSink>,
        label: &str,
        key: &[usize],
        n: usize,
    ) -> Result<Dataset, ExecError> {
        self.shuffle_combined_traced(cluster, sink, label, key, n, None, None)
    }

    /// [`Dataset::shuffle_traced`] with an optional **map-side combiner**
    /// (paper §7.1, Map side of stage combination): each write task runs the
    /// combiner over its per-target buckets *before* the exchange, shrinking
    /// the shuffled volume. The combiner must be semantics-preserving for the
    /// downstream consumer (e.g. pre-merging monotone-aggregate rows that
    /// share a group key); rows eliminated are charged to `combined_rows`.
    ///
    /// When a `governor` with a memory budget is given, the driver-side
    /// gather charges its working set to the tracker and **spills** gathered
    /// partitions to disk whenever the query goes over budget, merging them
    /// back (in exact arrival order, so results stay bit-identical) before
    /// the dataset is returned. The governor's cancellation token is checked
    /// at the stage boundary.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    pub fn shuffle_combined_traced(
        &self,
        cluster: &Cluster,
        sink: Option<&TraceSink>,
        label: &str,
        key: &[usize],
        n: usize,
        combiner: Option<&RowCombiner>,
        governor: Option<&QueryGovernor>,
    ) -> Result<Dataset, ExecError> {
        if let Some(g) = governor {
            g.check()?;
        }
        let key_owned: Vec<usize> = key.to_vec();
        let src_parts = self.num_partitions();
        // Map side: bucket each source partition's rows by target partition.
        let key_for_task = key_owned.clone();
        let buckets: Vec<Vec<Vec<Row>>> = {
            let this = self.clone();
            let tasks: Vec<StageTask<Vec<Vec<Row>>>> = (0..src_parts)
                .map(|p| {
                    let this = this.clone();
                    let key = key_for_task.clone();
                    let owner = cluster.owner_of(p);
                    let combiner = combiner.cloned();
                    let metrics = Arc::clone(&cluster.metrics);
                    StageTask::new(owner, move |_w| {
                        let cap = this.partitions[p].len() / n.max(1) + 1;
                        let mut out: Vec<Vec<Row>> =
                            (0..n).map(|_| Vec::with_capacity(cap)).collect();
                        for row in this.partitions[p].iter() {
                            let t = row_partition(row, &key, n);
                            out[t].push(row.clone());
                        }
                        if let Some(combine) = &combiner {
                            let mut eliminated = 0u64;
                            for bucket in &mut out {
                                let before = bucket.len();
                                let combined = combine(std::mem::take(bucket));
                                eliminated += (before - combined.len()) as u64;
                                *bucket = combined;
                            }
                            Metrics::add(&metrics.combined_rows, eliminated);
                        }
                        out
                    })
                })
                .collect();
            cluster.run_stage_traced(
                sink,
                &format!("{label} write"),
                StageKind::ShuffleWrite,
                tasks,
            )?
        };
        // Exchange: gather bucket (src → dst) into dst partitions; count the
        // worker-crossing volume. Under a memory budget the per-dst gather
        // buffers are the unbounded structure: each dst accumulates rows
        // from every source partition, so once the tracker goes over budget
        // the current dst's buffer pages out to a spill file (preserving
        // arrival order) and its charge is released.
        let t_read = Instant::now();
        let cap = self.len() / n.max(1) + 1;
        let mut parts: Vec<Vec<Row>> = (0..n).map(|_| Vec::with_capacity(cap)).collect();
        let mut charged: Vec<u64> = vec![0; n];
        let mut spilled: Vec<bool> = vec![false; n];
        let mut moved_rows = 0u64;
        let mut moved_bytes = 0u64;
        let mut total_charged = 0u64;
        let spill_name = |dst: usize| format!("shuffle-{label}-d{dst}");
        for (src, mut src_buckets) in buckets.into_iter().enumerate() {
            for (dst, bucket) in src_buckets.drain(..).enumerate() {
                let bucket_bytes = bucket.iter().map(Row::size_bytes).sum::<usize>() as u64;
                if cluster.owner_of(src) != cluster.owner_of(dst) {
                    moved_rows += bucket.len() as u64;
                    moved_bytes += bucket_bytes;
                }
                parts[dst].extend(bucket);
                if let Some(g) = governor {
                    g.tracker().charge(bucket_bytes);
                    charged[dst] += bucket_bytes;
                    total_charged += bucket_bytes;
                    if g.tracker().over_budget() && !parts[dst].is_empty() {
                        let dir = g.spill_dir()?;
                        let first_write = !spilled[dst];
                        let written = dir.append_rows(&spill_name(dst), &parts[dst])?;
                        parts[dst].clear();
                        g.tracker().release(charged[dst]);
                        total_charged -= charged[dst];
                        charged[dst] = 0;
                        spilled[dst] = true;
                        g.note_spill(written, u64::from(first_write));
                        Metrics::add(&cluster.metrics.spilled_bytes, written);
                        Metrics::add(&cluster.metrics.spill_files, u64::from(first_write));
                        if let Some(s) = sink {
                            s.record_recovery(RecoveryEvent {
                                kind: RecoveryKind::Spill,
                                stage: format!("{label} read"),
                                round: 0,
                                detail: format!("partition {dst} spilled {written} B"),
                            });
                        }
                    }
                }
            }
        }
        // Merge spilled prefixes back: the spill file holds each dst's
        // earliest rows (in arrival order); rows still in memory arrived
        // after the last spill, so spilled ++ in-memory reproduces the
        // unbounded gather exactly.
        if let Some(g) = governor {
            for (dst, part) in parts.iter_mut().enumerate() {
                if spilled[dst] {
                    let dir = g.spill_dir()?;
                    let mut rows = dir.take_rows(&spill_name(dst))?;
                    rows.append(part);
                    *part = rows;
                }
            }
            // The gather's transient charges end with the function; the
            // returned dataset's footprint is the consumer's to account.
            g.tracker().release(total_charged);
        }
        Metrics::add(&cluster.metrics.shuffle_rows, moved_rows);
        Metrics::add(&cluster.metrics.shuffle_bytes, moved_bytes);
        if let Some(sink) = sink {
            // The gather runs on the driver, so the whole exchange is "run"
            // time — there is no dispatch or barrier component.
            let us = t_read.elapsed().as_micros() as u64;
            sink.record_stage(StageSpan {
                label: format!("{label} read"),
                kind: StageKind::ShuffleRead,
                tasks: n as u64,
                attempts: n as u64,
                dispatch_us: 0,
                run_us: us,
                barrier_us: 0,
                total_us: us,
            });
        }
        Ok(Dataset::from_partitions(
            parts,
            Partitioning::Hash {
                key: key_owned,
                partitions: n,
            },
        ))
    }

    /// Repartition to `n` partitions on `key` only if the current partitioning
    /// does not already satisfy it.
    pub fn shuffle_if_needed(
        &self,
        cluster: &Cluster,
        key: &[usize],
        n: usize,
    ) -> Result<Dataset, ExecError> {
        self.shuffle_if_needed_traced(cluster, None, "shuffle", key, n)
    }

    /// [`Dataset::shuffle_if_needed`] with stage-span recording.
    pub fn shuffle_if_needed_traced(
        &self,
        cluster: &Cluster,
        sink: Option<&TraceSink>,
        label: &str,
        key: &[usize],
        n: usize,
    ) -> Result<Dataset, ExecError> {
        if self.partitioning.satisfies_hash(key, n) {
            Ok(self.clone())
        } else {
            self.shuffle_traced(cluster, sink, label, key, n)
        }
    }

    /// [`Dataset::shuffle_if_needed_traced`] with a map-side combiner for the
    /// shuffle (no-op when the partitioning is already satisfied — there is
    /// no exchange to shrink).
    #[allow(clippy::too_many_arguments)]
    pub fn shuffle_if_needed_combined_traced(
        &self,
        cluster: &Cluster,
        sink: Option<&TraceSink>,
        label: &str,
        key: &[usize],
        n: usize,
        combiner: Option<&RowCombiner>,
        governor: Option<&QueryGovernor>,
    ) -> Result<Dataset, ExecError> {
        if self.partitioning.satisfies_hash(key, n) {
            Ok(self.clone())
        } else {
            self.shuffle_combined_traced(cluster, sink, label, key, n, combiner, governor)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use rasql_storage::row::int_row;

    fn rows(n: i64) -> Vec<Row> {
        (0..n).map(|i| int_row(&[i, i * 10])).collect()
    }

    #[test]
    fn hash_partitioning_groups_keys() {
        let d = Dataset::hash_partitioned(rows(100), &[0], 4);
        assert_eq!(d.len(), 100);
        // Every row in partition p hashes to p.
        for (p, part) in d.partitions.iter().enumerate() {
            for r in part.iter() {
                assert_eq!(row_partition(r, &[0], 4), p);
            }
        }
    }

    #[test]
    fn shuffle_repartitions_correctly() {
        let c = Cluster::new(ClusterConfig::with_workers(2));
        let d = Dataset::round_robin(rows(50), 4);
        let s = d.shuffle(&c, &[1], 4).unwrap();
        assert_eq!(s.len(), 50);
        assert!(s.partitioning.satisfies_hash(&[1], 4));
        assert!(c.metrics.snapshot().shuffle_rows > 0);
    }

    #[test]
    fn shuffle_if_needed_is_noop_when_satisfied() {
        let c = Cluster::new(ClusterConfig::with_workers(2));
        let d = Dataset::hash_partitioned(rows(10), &[0], 4);
        let before = c.metrics.snapshot().shuffle_rows;
        let s = d.shuffle_if_needed(&c, &[0], 4).unwrap();
        assert_eq!(c.metrics.snapshot().shuffle_rows, before);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn map_partitions_applies_per_partition() {
        let c = Cluster::new(ClusterConfig::with_workers(2));
        let d = Dataset::hash_partitioned(rows(20), &[0], 4);
        let doubled = d
            .map_partitions(&c, |_p, part| {
                part.iter()
                    .map(|r| int_row(&[r[0].as_int().unwrap() * 2]))
                    .collect()
            })
            .unwrap();
        assert_eq!(doubled.len(), 20);
        let mut all: Vec<i64> = doubled
            .collect()
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn non_aware_scheduling_pays_remote_fetches() {
        let aware = Cluster::new(ClusterConfig {
            workers: 4,
            partition_aware: true,
            ..Default::default()
        });
        let drift = Cluster::new(ClusterConfig {
            workers: 4,
            partition_aware: false,
            ..Default::default()
        });
        let d = Dataset::hash_partitioned(rows(100), &[0], 8);
        d.map_partitions(&aware, |_p, part| part.to_vec()).unwrap();
        d.map_partitions(&drift, |_p, part| part.to_vec()).unwrap();
        assert_eq!(aware.metrics.snapshot().remote_fetch_bytes, 0);
        assert!(drift.metrics.snapshot().remote_fetch_bytes > 0);
    }

    #[test]
    fn collect_round_trip() {
        let d = Dataset::hash_partitioned(rows(30), &[0], 4);
        let mut got = d.collect();
        got.sort_unstable();
        let mut want = rows(30);
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
