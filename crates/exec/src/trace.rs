//! Query-level observability: fixpoint iteration traces, stage spans, and
//! operator counters.
//!
//! A [`TraceSink`] is created per query (when tracing is enabled) and threaded
//! through the executor. The cluster records a [`StageSpan`] per stage
//! (dispatch / run / barrier timing), the fixpoint operator records one
//! [`IterationTrace`] per round per clique, and the plan evaluator records an
//! [`OperatorTrace`] per plan node. [`TraceSink::finish`] freezes everything
//! into an immutable [`QueryTrace`], which renders as text tables or exports
//! to JSON via the dependency-free [`JsonValue`] mini-codec (round-trippable
//! with [`QueryTrace::from_json`]).

use crate::metrics::MetricsSnapshot;
use rasql_storage::sync::{LockRank, RankedMutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

// --------------------------------------------------------------------
// JSON mini-codec (no external dependencies)
// --------------------------------------------------------------------

/// A JSON document. Objects preserve key order so exports are stable.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers render without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric payload as u64 (floors; negative → None).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            JsonValue::Str(s) => write_json_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let bytes: Vec<char> = s.chars().collect();
        let mut p = JsonParser {
            chars: bytes,
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing input at offset {}", p.pos));
        }
        Ok(v)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonParser {
    chars: Vec<char>,
    pos: usize,
}

impl JsonParser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(format!("expected '{c}' at offset {}", self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        for c in word.chars() {
            if self.bump() != Some(c) {
                return Err(format!("bad literal near offset {}", self.pos));
            }
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some('n') => self.literal("null", JsonValue::Null),
            Some('t') => self.literal("true", JsonValue::Bool(true)),
            Some('f') => self.literal("false", JsonValue::Bool(false)),
            Some('"') => Ok(JsonValue::Str(self.string()?)),
            Some('[') => {
                self.bump();
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(']') {
                    self.bump();
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(',') => continue,
                        Some(']') => return Ok(JsonValue::Arr(items)),
                        _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
                    }
                }
            }
            Some('{') => {
                self.bump();
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.bump();
                    return Ok(JsonValue::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(':')?;
                    pairs.push((key, self.value()?));
                    self.skip_ws();
                    match self.bump() {
                        Some(',') => continue,
                        Some('}') => return Ok(JsonValue::Obj(pairs)),
                        _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
                    }
                }
            }
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at offset {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err("bad escape".into()),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

// --------------------------------------------------------------------
// Trace records
// --------------------------------------------------------------------

/// What kind of work a stage performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Unlabelled stage (legacy `run_stage` callers).
    Generic,
    /// A fixpoint map stage (delta × build joins).
    Map,
    /// A fixpoint reduce stage (merge into partitioned state).
    Reduce,
    /// A combined ShuffleMap stage (reduce + map fused, §7.1).
    Combined,
    /// The single stage of decomposed evaluation (§7.2).
    Decomposed,
    /// Per-worker broadcast build (§7.2).
    Broadcast,
    /// The map side of a shuffle exchange (bucketing).
    ShuffleWrite,
    /// The exchange side of a shuffle (gathering buckets).
    ShuffleRead,
    /// A fixpoint checkpoint capture (round-boundary state snapshot).
    Checkpoint,
}

impl StageKind {
    /// Stable string form (used in JSON).
    pub fn as_str(&self) -> &'static str {
        match self {
            StageKind::Generic => "generic",
            StageKind::Map => "map",
            StageKind::Reduce => "reduce",
            StageKind::Combined => "combined",
            StageKind::Decomposed => "decomposed",
            StageKind::Broadcast => "broadcast",
            StageKind::ShuffleWrite => "shuffle_write",
            StageKind::ShuffleRead => "shuffle_read",
            StageKind::Checkpoint => "checkpoint",
        }
    }

    /// Inverse of [`StageKind::as_str`].
    pub fn from_name(s: &str) -> Option<StageKind> {
        Some(match s {
            "generic" => StageKind::Generic,
            "map" => StageKind::Map,
            "reduce" => StageKind::Reduce,
            "combined" => StageKind::Combined,
            "decomposed" => StageKind::Decomposed,
            "broadcast" => StageKind::Broadcast,
            "shuffle_write" => StageKind::ShuffleWrite,
            "shuffle_read" => StageKind::ShuffleRead,
            "checkpoint" => StageKind::Checkpoint,
            _ => return None,
        })
    }
}

/// Timing of one scheduled stage: dispatch (scheduler latency + task
/// enqueue), run (until the first task result arrives), and barrier (first
/// result until the last — the straggler wait).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpan {
    /// Human-readable stage label (e.g. `"fixpoint combined"`).
    pub label: String,
    /// Stage kind.
    pub kind: StageKind,
    /// Number of tasks in the stage.
    pub tasks: u64,
    /// Task attempts dispatched, including fault-injection retries (equals
    /// `tasks` on a fault-free stage).
    pub attempts: u64,
    /// Scheduler latency + task dispatch, µs.
    pub dispatch_us: u64,
    /// Dispatch end until first task result, µs.
    pub run_us: u64,
    /// First task result until barrier completion, µs.
    pub barrier_us: u64,
    /// Whole-stage wall clock, µs.
    pub total_us: u64,
}

/// One fixpoint round of one recursive clique.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationTrace {
    /// 1-based round number.
    pub round: u32,
    /// Rows in the delta consumed by this round (0 for the closing round that
    /// detects the fixpoint).
    pub delta_rows: u64,
    /// Total rows across all recursive relations of the clique after the
    /// round's merge.
    pub total_rows: u64,
    /// Cluster stages scheduled by the round.
    pub stages: u64,
    /// Contribution rows that crossed worker boundaries in the round's
    /// shuffle.
    pub shuffle_rows: u64,
    /// Bytes that crossed worker boundaries in the round's shuffle.
    pub shuffle_bytes: u64,
    /// Round wall clock, µs.
    pub elapsed_us: u64,
}

/// Trace of one recursive clique's fixpoint evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliqueTrace {
    /// View names of the clique, in declaration order.
    pub views: Vec<String>,
    /// Evaluation mode: `semi_naive_combined`, `semi_naive`, `naive`,
    /// `decomposed`, or `specialized`.
    pub mode: String,
    /// Inner-loop kernel the clique ran on: `generic` for the interpreter,
    /// or a monomorphized kernel label such as `csr_min_i64` / `csr_set`.
    pub kernel: String,
    /// Rounds until the fixpoint (max over partitions when decomposed).
    pub fixpoint_rounds: u32,
    /// Per-round records.
    pub iterations: Vec<IterationTrace>,
}

/// What kind of fault-tolerance action a [`RecoveryEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// A task was re-dispatched after an injected fault.
    TaskRetry,
    /// A worker was blacklisted for repeated injected failures.
    Blacklist,
    /// A fixpoint checkpoint was captured at a round boundary.
    Checkpoint,
    /// Fixpoint state was restored from the last checkpoint and replayed.
    Restore,
    /// Memory-governed state paged out to a spill file.
    Spill,
}

impl RecoveryKind {
    /// Stable string form (used in JSON).
    pub fn as_str(&self) -> &'static str {
        match self {
            RecoveryKind::TaskRetry => "task_retry",
            RecoveryKind::Blacklist => "blacklist",
            RecoveryKind::Checkpoint => "checkpoint",
            RecoveryKind::Restore => "restore",
            RecoveryKind::Spill => "spill",
        }
    }

    /// Inverse of [`RecoveryKind::as_str`].
    pub fn from_name(s: &str) -> Option<RecoveryKind> {
        Some(match s {
            "task_retry" => RecoveryKind::TaskRetry,
            "blacklist" => RecoveryKind::Blacklist,
            "checkpoint" => RecoveryKind::Checkpoint,
            "restore" => RecoveryKind::Restore,
            "spill" => RecoveryKind::Spill,
            _ => return None,
        })
    }
}

/// One fault-tolerance action taken during the query: a task retry, a worker
/// blacklist, a checkpoint capture, or a checkpoint restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// What happened.
    pub kind: RecoveryKind,
    /// Label of the stage it happened in (or the fixpoint's view list for
    /// checkpoint/restore events).
    pub stage: String,
    /// Fixpoint round the event belongs to (0 when not round-scoped).
    pub round: u32,
    /// Human-readable detail.
    pub detail: String,
}

/// Live counters of one (final-plan) operator. Times and counts are
/// *inclusive* of the operator's children, like `EXPLAIN ANALYZE` totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorTrace {
    /// Pre-order path of the node in the plan tree (`"0"`, `"0.1"`, ...).
    pub path: String,
    /// Operator label (e.g. `"HashJoin on [1]=[0]"`).
    pub label: String,
    /// Output rows.
    pub rows: u64,
    /// Output bytes.
    pub bytes: u64,
    /// Wall clock to produce the output, µs (inclusive of children).
    pub elapsed_us: u64,
}

/// The frozen trace of one executed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Query wall clock, µs.
    pub elapsed_us: u64,
    /// Metric deltas accumulated by the query.
    pub metrics: MetricsSnapshot,
    /// Per-clique fixpoint traces, in evaluation order.
    pub cliques: Vec<CliqueTrace>,
    /// Every stage the query scheduled, in order.
    pub stages: Vec<StageSpan>,
    /// Final-plan operator counters (pre-order).
    pub operators: Vec<OperatorTrace>,
    /// Fault-tolerance actions (retries, blacklists, checkpoints, restores),
    /// in occurrence order. Empty on a fault-free run.
    pub recovery: Vec<RecoveryEvent>,
}

// --------------------------------------------------------------------
// Recorder
// --------------------------------------------------------------------

#[derive(Default)]
struct TraceData {
    stages: Vec<StageSpan>,
    cliques: Vec<CliqueTrace>,
    current: Option<CliqueTrace>,
    operators: Vec<OperatorTrace>,
    recovery: Vec<RecoveryEvent>,
}

/// Per-query trace recorder, threaded through the executor by reference.
///
/// All recording methods take `&self`; the sink is internally synchronized so
/// stages recorded from helper code paths need no coordination.
pub struct TraceSink {
    ops_enabled: AtomicBool,
    inner: RankedMutex<TraceData>,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// A fresh sink.
    pub fn new() -> Self {
        TraceSink {
            ops_enabled: AtomicBool::new(false),
            inner: RankedMutex::new(LockRank::TraceSink, TraceData::default()),
        }
    }

    /// Gate operator recording (enabled only around the final plan, so base
    /// case and build-side evaluations don't pollute the operator table).
    pub fn enable_operators(&self, on: bool) {
        self.ops_enabled.store(on, Ordering::Relaxed);
    }

    /// Whether operator recording is currently enabled.
    pub fn operators_enabled(&self) -> bool {
        self.ops_enabled.load(Ordering::Relaxed)
    }

    /// Record a stage span.
    pub fn record_stage(&self, span: StageSpan) {
        self.inner.lock().stages.push(span);
    }

    /// Record a fault-tolerance action.
    pub fn record_recovery(&self, event: RecoveryEvent) {
        self.inner.lock().recovery.push(event);
    }

    /// Open a clique trace; subsequent iterations are recorded into it. The
    /// clique is tagged with the `generic` (interpreter) kernel; specialized
    /// paths use [`TraceSink::begin_clique_kernel`].
    pub fn begin_clique(&self, views: Vec<String>, mode: &str) {
        self.begin_clique_kernel(views, mode, "generic");
    }

    /// [`TraceSink::begin_clique`] with an explicit kernel label (e.g.
    /// `csr_min_i64` when a monomorphized fixpoint kernel was selected).
    pub fn begin_clique_kernel(&self, views: Vec<String>, mode: &str, kernel: &str) {
        let mut d = self.inner.lock();
        if let Some(open) = d.current.take() {
            d.cliques.push(open); // defensive: unterminated clique
        }
        d.current = Some(CliqueTrace {
            views,
            mode: mode.to_string(),
            kernel: kernel.to_string(),
            fixpoint_rounds: 0,
            iterations: Vec::new(),
        });
    }

    /// Record one fixpoint round of the open clique.
    pub fn record_iteration(&self, it: IterationTrace) {
        let mut d = self.inner.lock();
        match &mut d.current {
            Some(c) => c.iterations.push(it),
            None => {
                // Iteration without begin_clique: open an anonymous one.
                d.current = Some(CliqueTrace {
                    views: Vec::new(),
                    mode: "unknown".into(),
                    kernel: "generic".into(),
                    fixpoint_rounds: 0,
                    iterations: vec![it],
                });
            }
        }
    }

    /// Close the open clique with its final round count.
    pub fn end_clique(&self, fixpoint_rounds: u32) {
        let mut d = self.inner.lock();
        if let Some(mut c) = d.current.take() {
            c.fixpoint_rounds = fixpoint_rounds;
            d.cliques.push(c);
        }
    }

    /// Record one operator's output counters (no-op unless enabled).
    pub fn record_operator(
        &self,
        path: String,
        label: String,
        rows: u64,
        bytes: u64,
        elapsed: Duration,
    ) {
        if !self.operators_enabled() {
            return;
        }
        self.inner.lock().operators.push(OperatorTrace {
            path,
            label,
            rows,
            bytes,
            elapsed_us: elapsed.as_micros() as u64,
        });
    }

    /// Freeze into an immutable [`QueryTrace`].
    pub fn finish(self, elapsed: Duration, metrics: MetricsSnapshot) -> QueryTrace {
        let mut d = self.inner.into_inner();
        if let Some(open) = d.current.take() {
            d.cliques.push(open);
        }
        QueryTrace {
            elapsed_us: elapsed.as_micros() as u64,
            metrics,
            cliques: d.cliques,
            stages: d.stages,
            operators: d.operators,
            recovery: d.recovery,
        }
    }
}

// --------------------------------------------------------------------
// JSON (de)serialization
// --------------------------------------------------------------------

fn num(v: u64) -> JsonValue {
    JsonValue::Num(v as f64)
}

fn get_u64(obj: &JsonValue, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

/// Like [`get_u64`] but tolerates a missing field (older trace exports predate
/// the fault-tolerance counters).
fn get_u64_or(obj: &JsonValue, key: &str, default: u64) -> u64 {
    obj.get(key).and_then(JsonValue::as_u64).unwrap_or(default)
}

fn get_str(obj: &JsonValue, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

impl QueryTrace {
    /// Export as a compact JSON string. See DESIGN.md "Observability" for the
    /// schema; [`QueryTrace::from_json`] round-trips it.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Export as a [`JsonValue`] tree.
    pub fn to_json_value(&self) -> JsonValue {
        let m = &self.metrics;
        JsonValue::Obj(vec![
            ("elapsed_us".into(), num(self.elapsed_us)),
            (
                "metrics".into(),
                JsonValue::Obj(vec![
                    ("stages".into(), num(m.stages)),
                    ("tasks".into(), num(m.tasks)),
                    ("shuffle_rows".into(), num(m.shuffle_rows)),
                    ("shuffle_bytes".into(), num(m.shuffle_bytes)),
                    ("remote_fetch_bytes".into(), num(m.remote_fetch_bytes)),
                    ("broadcast_bytes".into(), num(m.broadcast_bytes)),
                    ("join_output_rows".into(), num(m.join_output_rows)),
                    ("iterations".into(), num(m.iterations)),
                    ("remote_fetches".into(), num(m.remote_fetches)),
                    ("task_failures".into(), num(m.task_failures)),
                    ("task_retries".into(), num(m.task_retries)),
                    ("worker_blacklists".into(), num(m.worker_blacklists)),
                    ("checkpoints".into(), num(m.checkpoints)),
                    ("checkpoint_bytes".into(), num(m.checkpoint_bytes)),
                    ("restores".into(), num(m.restores)),
                    ("combined_rows".into(), num(m.combined_rows)),
                    ("spilled_bytes".into(), num(m.spilled_bytes)),
                    ("spill_files".into(), num(m.spill_files)),
                    ("peak_memory".into(), num(m.peak_memory)),
                    ("cancellations".into(), num(m.cancellations)),
                    ("admitted".into(), num(m.admitted)),
                    ("rejected".into(), num(m.rejected)),
                ]),
            ),
            (
                "cliques".into(),
                JsonValue::Arr(
                    self.cliques
                        .iter()
                        .map(|c| {
                            JsonValue::Obj(vec![
                                (
                                    "views".into(),
                                    JsonValue::Arr(
                                        c.views.iter().map(|v| JsonValue::Str(v.clone())).collect(),
                                    ),
                                ),
                                ("mode".into(), JsonValue::Str(c.mode.clone())),
                                ("kernel".into(), JsonValue::Str(c.kernel.clone())),
                                ("fixpoint_rounds".into(), num(c.fixpoint_rounds as u64)),
                                (
                                    "iterations".into(),
                                    JsonValue::Arr(
                                        c.iterations
                                            .iter()
                                            .map(|it| {
                                                JsonValue::Obj(vec![
                                                    ("round".into(), num(it.round as u64)),
                                                    ("delta_rows".into(), num(it.delta_rows)),
                                                    ("total_rows".into(), num(it.total_rows)),
                                                    ("stages".into(), num(it.stages)),
                                                    ("shuffle_rows".into(), num(it.shuffle_rows)),
                                                    ("shuffle_bytes".into(), num(it.shuffle_bytes)),
                                                    ("elapsed_us".into(), num(it.elapsed_us)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "stages".into(),
                JsonValue::Arr(
                    self.stages
                        .iter()
                        .map(|s| {
                            JsonValue::Obj(vec![
                                ("label".into(), JsonValue::Str(s.label.clone())),
                                ("kind".into(), JsonValue::Str(s.kind.as_str().into())),
                                ("tasks".into(), num(s.tasks)),
                                ("attempts".into(), num(s.attempts)),
                                ("dispatch_us".into(), num(s.dispatch_us)),
                                ("run_us".into(), num(s.run_us)),
                                ("barrier_us".into(), num(s.barrier_us)),
                                ("total_us".into(), num(s.total_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "operators".into(),
                JsonValue::Arr(
                    self.operators
                        .iter()
                        .map(|o| {
                            JsonValue::Obj(vec![
                                ("path".into(), JsonValue::Str(o.path.clone())),
                                ("label".into(), JsonValue::Str(o.label.clone())),
                                ("rows".into(), num(o.rows)),
                                ("bytes".into(), num(o.bytes)),
                                ("elapsed_us".into(), num(o.elapsed_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "recovery".into(),
                JsonValue::Arr(
                    self.recovery
                        .iter()
                        .map(|e| {
                            JsonValue::Obj(vec![
                                ("kind".into(), JsonValue::Str(e.kind.as_str().into())),
                                ("stage".into(), JsonValue::Str(e.stage.clone())),
                                ("round".into(), num(e.round as u64)),
                                ("detail".into(), JsonValue::Str(e.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuild a trace from its JSON export.
    pub fn from_json(s: &str) -> Result<QueryTrace, String> {
        let root = JsonValue::parse(s)?;
        let m = root.get("metrics").ok_or("missing 'metrics'")?;
        let metrics = MetricsSnapshot {
            stages: get_u64(m, "stages")?,
            tasks: get_u64(m, "tasks")?,
            shuffle_rows: get_u64(m, "shuffle_rows")?,
            shuffle_bytes: get_u64(m, "shuffle_bytes")?,
            remote_fetch_bytes: get_u64(m, "remote_fetch_bytes")?,
            broadcast_bytes: get_u64(m, "broadcast_bytes")?,
            join_output_rows: get_u64(m, "join_output_rows")?,
            iterations: get_u64(m, "iterations")?,
            remote_fetches: get_u64_or(m, "remote_fetches", 0),
            task_failures: get_u64_or(m, "task_failures", 0),
            task_retries: get_u64_or(m, "task_retries", 0),
            worker_blacklists: get_u64_or(m, "worker_blacklists", 0),
            checkpoints: get_u64_or(m, "checkpoints", 0),
            checkpoint_bytes: get_u64_or(m, "checkpoint_bytes", 0),
            restores: get_u64_or(m, "restores", 0),
            combined_rows: get_u64_or(m, "combined_rows", 0),
            spilled_bytes: get_u64_or(m, "spilled_bytes", 0),
            spill_files: get_u64_or(m, "spill_files", 0),
            peak_memory: get_u64_or(m, "peak_memory", 0),
            cancellations: get_u64_or(m, "cancellations", 0),
            admitted: get_u64_or(m, "admitted", 0),
            rejected: get_u64_or(m, "rejected", 0),
            cache_hits: get_u64_or(m, "cache_hits", 0),
            cache_invalidations: get_u64_or(m, "cache_invalidations", 0),
            view_refreshes: get_u64_or(m, "view_refreshes", 0),
            view_refreshes_incremental: get_u64_or(m, "view_refreshes_incremental", 0),
            retained_bytes: get_u64_or(m, "retained_bytes", 0),
            connections_reaped: get_u64_or(m, "connections_reaped", 0),
        };
        let mut cliques = Vec::new();
        for c in root
            .get("cliques")
            .and_then(JsonValue::as_arr)
            .ok_or("missing 'cliques'")?
        {
            let views = c
                .get("views")
                .and_then(JsonValue::as_arr)
                .ok_or("missing 'views'")?
                .iter()
                .map(|v| v.as_str().map(str::to_string).ok_or("non-string view name"))
                .collect::<Result<Vec<_>, _>>()?;
            let mut iterations = Vec::new();
            for it in c
                .get("iterations")
                .and_then(JsonValue::as_arr)
                .ok_or("missing 'iterations'")?
            {
                iterations.push(IterationTrace {
                    round: get_u64(it, "round")? as u32,
                    delta_rows: get_u64(it, "delta_rows")?,
                    total_rows: get_u64(it, "total_rows")?,
                    stages: get_u64(it, "stages")?,
                    shuffle_rows: get_u64(it, "shuffle_rows")?,
                    shuffle_bytes: get_u64(it, "shuffle_bytes")?,
                    elapsed_us: get_u64(it, "elapsed_us")?,
                });
            }
            cliques.push(CliqueTrace {
                views,
                mode: get_str(c, "mode")?,
                // Older exports predate kernel selection; they all ran the
                // interpreter.
                kernel: get_str(c, "kernel").unwrap_or_else(|_| "generic".into()),
                fixpoint_rounds: get_u64(c, "fixpoint_rounds")? as u32,
                iterations,
            });
        }
        let mut stages = Vec::new();
        for s in root
            .get("stages")
            .and_then(JsonValue::as_arr)
            .ok_or("missing 'stages'")?
        {
            let kind_s = get_str(s, "kind")?;
            let tasks = get_u64(s, "tasks")?;
            stages.push(StageSpan {
                label: get_str(s, "label")?,
                kind: StageKind::from_name(&kind_s)
                    .ok_or_else(|| format!("unknown stage kind '{kind_s}'"))?,
                tasks,
                attempts: get_u64_or(s, "attempts", tasks),
                dispatch_us: get_u64(s, "dispatch_us")?,
                run_us: get_u64(s, "run_us")?,
                barrier_us: get_u64(s, "barrier_us")?,
                total_us: get_u64(s, "total_us")?,
            });
        }
        let mut operators = Vec::new();
        for o in root
            .get("operators")
            .and_then(JsonValue::as_arr)
            .ok_or("missing 'operators'")?
        {
            operators.push(OperatorTrace {
                path: get_str(o, "path")?,
                label: get_str(o, "label")?,
                rows: get_u64(o, "rows")?,
                bytes: get_u64(o, "bytes")?,
                elapsed_us: get_u64(o, "elapsed_us")?,
            });
        }
        let mut recovery = Vec::new();
        if let Some(events) = root.get("recovery").and_then(JsonValue::as_arr) {
            for e in events {
                let kind_s = get_str(e, "kind")?;
                recovery.push(RecoveryEvent {
                    kind: RecoveryKind::from_name(&kind_s)
                        .ok_or_else(|| format!("unknown recovery kind '{kind_s}'"))?,
                    stage: get_str(e, "stage")?,
                    round: get_u64_or(e, "round", 0) as u32,
                    detail: get_str(e, "detail")?,
                });
            }
        }
        Ok(QueryTrace {
            elapsed_us: get_u64(&root, "elapsed_us")?,
            metrics,
            cliques,
            stages,
            operators,
            recovery,
        })
    }

    /// Render just the per-clique fixpoint iteration tables — the piece
    /// `EXPLAIN ANALYZE` splices under its annotated plan.
    pub fn render_iterations(&self) -> String {
        let mut out = String::new();
        for c in &self.cliques {
            out.push_str(&format!(
                "\nFixpoint [{}] mode={} kernel={} rounds={}\n",
                c.views.join(", "),
                c.mode,
                c.kernel,
                c.fixpoint_rounds
            ));
            out.push_str(
                "  iter | delta_rows | total_rows | stages | shuffle_rows | shuffle_bytes | time_ms\n",
            );
            for it in &c.iterations {
                out.push_str(&format!(
                    "  {:>4} | {:>10} | {:>10} | {:>6} | {:>12} | {:>13} | {:>7.3}\n",
                    it.round,
                    it.delta_rows,
                    it.total_rows,
                    it.stages,
                    it.shuffle_rows,
                    it.shuffle_bytes,
                    it.elapsed_us as f64 / 1000.0
                ));
            }
        }
        out
    }

    /// Render the resource-governance section: spill volume, peak governed
    /// memory, and admission/cancellation counts. Empty string when the
    /// query ran ungoverned (no budget, no limits) and nothing spilled.
    pub fn render_governance(&self) -> String {
        let m = &self.metrics;
        if m.spilled_bytes + m.spill_files + m.cancellations + m.rejected == 0 {
            return String::new();
        }
        let mut out = String::new();
        out.push_str(&format!(
            "\nGovernance: spilled {} B in {} files, peak memory {} B",
            m.spilled_bytes, m.spill_files, m.peak_memory
        ));
        if m.cancellations + m.rejected > 0 {
            out.push_str(&format!(
                ", {} cancellations, {} rejected",
                m.cancellations, m.rejected
            ));
        }
        out.push('\n');
        out
    }

    /// Render the fault-tolerance section: a recovery summary line plus one
    /// line per event. Empty string when the run was fault-free.
    pub fn render_recovery(&self) -> String {
        let m = &self.metrics;
        if self.recovery.is_empty()
            && m.task_failures + m.task_retries + m.checkpoints + m.restores == 0
        {
            return String::new();
        }
        let mut out = String::new();
        out.push_str(&format!(
            "\nRecovery: {} failures, {} retries, {} blacklists, {} checkpoints ({} B), {} restores\n",
            m.task_failures,
            m.task_retries,
            m.worker_blacklists,
            m.checkpoints,
            m.checkpoint_bytes,
            m.restores
        ));
        for e in &self.recovery {
            if e.round > 0 {
                out.push_str(&format!(
                    "  [{}] round {} {}: {}\n",
                    e.kind.as_str(),
                    e.round,
                    e.stage,
                    e.detail
                ));
            } else {
                out.push_str(&format!(
                    "  [{}] {}: {}\n",
                    e.kind.as_str(),
                    e.stage,
                    e.detail
                ));
            }
        }
        out
    }

    /// Render as human-readable text: one table per clique (the per-iteration
    /// record), a stage-span summary grouped by label, recovery events, and
    /// the operator list.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "query: {:.3} ms, {} stages, {} tasks, {} iterations\n",
            self.elapsed_us as f64 / 1000.0,
            self.metrics.stages,
            self.metrics.tasks,
            self.metrics.iterations,
        ));
        if self.metrics.remote_fetches > 0 {
            out.push_str(&format!(
                "remote fetches: {} tasks off their home worker, {} B deep-copied\n",
                self.metrics.remote_fetches, self.metrics.remote_fetch_bytes
            ));
        }
        out.push_str(&self.render_iterations());
        if !self.stages.is_empty() {
            out.push_str("\nStage spans (aggregated by label):\n");
            // Aggregate consecutive-label-equal spans into per-label totals:
            // (stages, dispatch_us, run_us, barrier_us, total_us, tasks, attempts).
            type SpanTotals = (u64, u64, u64, u64, u64, u64, u64);
            let mut order: Vec<String> = Vec::new();
            let mut agg: std::collections::HashMap<String, SpanTotals> =
                std::collections::HashMap::new();
            for s in &self.stages {
                let e = agg.entry(s.label.clone()).or_insert_with(|| {
                    order.push(s.label.clone());
                    (0, 0, 0, 0, 0, 0, 0)
                });
                e.0 += 1;
                e.1 += s.dispatch_us;
                e.2 += s.run_us;
                e.3 += s.barrier_us;
                e.4 += s.total_us;
                e.5 += s.tasks;
                e.6 += s.attempts;
            }
            out.push_str(
                "  label                    | stages | retries | dispatch_ms | run_ms | barrier_ms | total_ms\n",
            );
            for label in order {
                let (n, d, r, b, t, tasks, attempts) = agg[&label];
                out.push_str(&format!(
                    "  {:<24} | {:>6} | {:>7} | {:>11.3} | {:>6.3} | {:>10.3} | {:>8.3}\n",
                    label,
                    n,
                    attempts - tasks,
                    d as f64 / 1000.0,
                    r as f64 / 1000.0,
                    b as f64 / 1000.0,
                    t as f64 / 1000.0
                ));
            }
        }
        out.push_str(&self.render_recovery());
        out.push_str(&self.render_governance());
        if !self.operators.is_empty() {
            out.push_str("\nOperators (final plan, inclusive):\n");
            for o in &self.operators {
                let depth = o.path.chars().filter(|&c| c == '.').count();
                out.push_str(&format!(
                    "  {}{} rows={} bytes={} time={:.3}ms\n",
                    "  ".repeat(depth),
                    o.label,
                    o.rows,
                    o.bytes,
                    o.elapsed_us as f64 / 1000.0
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryTrace {
        QueryTrace {
            elapsed_us: 1234,
            metrics: MetricsSnapshot {
                stages: 5,
                tasks: 20,
                shuffle_rows: 100,
                shuffle_bytes: 4096,
                remote_fetch_bytes: 0,
                broadcast_bytes: 512,
                join_output_rows: 77,
                iterations: 3,
                task_failures: 2,
                task_retries: 2,
                checkpoints: 1,
                checkpoint_bytes: 640,
                restores: 1,
                ..Default::default()
            },
            cliques: vec![CliqueTrace {
                views: vec!["tc".into()],
                mode: "semi_naive_combined".into(),
                kernel: "generic".into(),
                fixpoint_rounds: 3,
                iterations: vec![
                    IterationTrace {
                        round: 1,
                        delta_rows: 10,
                        total_rows: 10,
                        stages: 1,
                        shuffle_rows: 4,
                        shuffle_bytes: 160,
                        elapsed_us: 300,
                    },
                    IterationTrace {
                        round: 2,
                        delta_rows: 0,
                        total_rows: 14,
                        stages: 1,
                        shuffle_rows: 0,
                        shuffle_bytes: 0,
                        elapsed_us: 200,
                    },
                ],
            }],
            stages: vec![StageSpan {
                label: "fixpoint combined".into(),
                kind: StageKind::Combined,
                tasks: 4,
                attempts: 6,
                dispatch_us: 2000,
                run_us: 40,
                barrier_us: 12,
                total_us: 2052,
            }],
            operators: vec![OperatorTrace {
                path: "0.1".into(),
                label: "TableScan edge".into(),
                rows: 42,
                bytes: 1344,
                elapsed_us: 15,
            }],
            recovery: vec![
                RecoveryEvent {
                    kind: RecoveryKind::TaskRetry,
                    stage: "fixpoint combined".into(),
                    round: 0,
                    detail: "task 1 attempt 2 after injected kill on worker 0".into(),
                },
                RecoveryEvent {
                    kind: RecoveryKind::Restore,
                    stage: "tc".into(),
                    round: 2,
                    detail: "restored 4 partitions at round 2".into(),
                },
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let t = sample();
        let json = t.to_json();
        let back = QueryTrace::from_json(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v =
            JsonValue::parse(r#"{"a":[1,2.5,-3],"b":"x\n\"y\"","c":{"d":null,"e":true}}"#).unwrap();
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("x\n\"y\""));
        assert_eq!(
            v.get("a").and_then(JsonValue::as_arr).map(|a| a.len()),
            Some(3)
        );
        let rendered = v.render();
        assert_eq!(JsonValue::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn render_mentions_key_counters() {
        let text = sample().render();
        assert!(text.contains("delta_rows"), "{text}");
        assert!(text.contains("semi_naive_combined"), "{text}");
        assert!(text.contains("rows=42"), "{text}");
    }

    #[test]
    fn sink_collects_in_order() {
        let sink = TraceSink::new();
        sink.begin_clique(vec!["v".into()], "semi_naive");
        sink.record_iteration(IterationTrace {
            round: 1,
            delta_rows: 5,
            total_rows: 5,
            stages: 2,
            shuffle_rows: 0,
            shuffle_bytes: 0,
            elapsed_us: 10,
        });
        sink.end_clique(1);
        sink.record_operator("0".into(), "x".into(), 1, 8, Duration::from_micros(3));
        // Disabled by default: the operator above must NOT be recorded.
        sink.enable_operators(true);
        sink.record_operator("0".into(), "y".into(), 2, 16, Duration::from_micros(4));
        let t = sink.finish(Duration::from_millis(1), MetricsSnapshot::default());
        assert_eq!(t.cliques.len(), 1);
        assert_eq!(t.cliques[0].fixpoint_rounds, 1);
        assert_eq!(t.operators.len(), 1);
        assert_eq!(t.operators[0].label, "y");
    }

    #[test]
    fn stage_kind_string_round_trip() {
        for k in [
            StageKind::Generic,
            StageKind::Map,
            StageKind::Reduce,
            StageKind::Combined,
            StageKind::Decomposed,
            StageKind::Broadcast,
            StageKind::ShuffleWrite,
            StageKind::ShuffleRead,
            StageKind::Checkpoint,
        ] {
            assert_eq!(StageKind::from_name(k.as_str()), Some(k));
        }
        for k in [
            RecoveryKind::TaskRetry,
            RecoveryKind::Blacklist,
            RecoveryKind::Checkpoint,
            RecoveryKind::Restore,
            RecoveryKind::Spill,
        ] {
            assert_eq!(RecoveryKind::from_name(k.as_str()), Some(k));
        }
    }

    #[test]
    fn old_trace_json_without_recovery_fields_still_parses() {
        // Simulate a pre-fault-tolerance export: strip the new fields.
        let mut t = sample();
        t.recovery.clear();
        t.metrics = MetricsSnapshot {
            stages: 5,
            tasks: 20,
            shuffle_rows: 100,
            shuffle_bytes: 4096,
            broadcast_bytes: 512,
            join_output_rows: 77,
            iterations: 3,
            ..Default::default()
        };
        let json = t.to_json();
        // Drop the recovery array and new metric keys textually.
        let json = json
            .replace(",\"recovery\":[]", "")
            .replace(",\"remote_fetches\":0", "")
            .replace(",\"task_failures\":0", "")
            .replace(",\"task_retries\":0", "")
            .replace(",\"worker_blacklists\":0", "")
            .replace(",\"checkpoints\":0", "")
            .replace(",\"checkpoint_bytes\":0", "")
            .replace(",\"restores\":0", "")
            .replace(",\"combined_rows\":0", "")
            .replace(",\"spilled_bytes\":0", "")
            .replace(",\"spill_files\":0", "")
            .replace(",\"peak_memory\":0", "")
            .replace(",\"cancellations\":0", "")
            .replace(",\"admitted\":0", "")
            .replace(",\"rejected\":0", "")
            .replace(",\"kernel\":\"generic\"", "")
            .replace(",\"attempts\":6", "");
        let back = QueryTrace::from_json(&json).unwrap();
        assert_eq!(back.metrics.stages, 5);
        assert!(back.recovery.is_empty());
        // attempts defaults to tasks when absent.
        assert_eq!(back.stages[0].attempts, back.stages[0].tasks);
        // Pre-kernel exports all ran the interpreter.
        assert_eq!(back.cliques[0].kernel, "generic");
        assert_eq!(back.metrics.combined_rows, 0);
    }

    #[test]
    fn render_recovery_lists_events() {
        let text = sample().render();
        assert!(text.contains("Recovery:"), "{text}");
        assert!(text.contains("[task_retry]"), "{text}");
        assert!(text.contains("[restore] round 2"), "{text}");
        // Fault-free traces render no recovery section.
        let mut clean = sample();
        clean.recovery.clear();
        clean.metrics = MetricsSnapshot::default();
        assert!(!clean.render().contains("Recovery:"));
    }
}
