//! Typed execution errors.
//!
//! Before this module existed a panicking task tore down its worker thread
//! and the driver died on a closed result channel with no context. Stage
//! execution now returns [`ExecError`] through
//! [`crate::Cluster::run_stage_traced`] instead of unwinding across the
//! channel.

use std::fmt;

/// A stage-level execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A task body panicked. Genuine panics are not retried: the task may
    /// have partially mutated per-partition state, so re-running it is not
    /// safe — recovery (if any) is the fixpoint's checkpoint/restore.
    TaskPanicked {
        /// Stage label.
        stage: String,
        /// Task index within the stage.
        task: usize,
        /// Worker the task ran on.
        worker: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// An injected fault kept recurring until the retry budget ran out.
    RetriesExhausted {
        /// Stage label.
        stage: String,
        /// Task index within the stage.
        task: usize,
        /// Attempts made (1 + retries).
        attempts: u32,
        /// Name of the last injected fault (`kill` / `lost_output`).
        fault: String,
    },
    /// The query was cancelled through its governor handle (`\kill`).
    Cancelled {
        /// Query id assigned by the admission controller.
        query_id: u64,
    },
    /// The query ran past its configured deadline.
    DeadlineExceeded {
        /// Query id assigned by the admission controller.
        query_id: u64,
        /// The configured timeout, in milliseconds.
        timeout_ms: u64,
    },
    /// A single allocation could not fit in the memory budget even after
    /// spilling everything spillable.
    MemoryExceeded {
        /// Query id assigned by the admission controller.
        query_id: u64,
        /// Bytes the failed charge asked for.
        requested: u64,
        /// The configured budget, in bytes.
        budget: u64,
    },
    /// A spill file could not be written or read back.
    SpillIo {
        /// What the spill layer was doing when the I/O failed.
        detail: String,
    },
    /// A worker's job channel was closed while the pool was still
    /// dispatching — the worker thread is gone. Workers only exit when
    /// their sender drops, so this is a pool-teardown race surfaced as a
    /// typed error instead of a driver panic.
    WorkerUnavailable {
        /// Task index that could not be dispatched.
        task: usize,
        /// The worker whose channel was closed.
        worker: usize,
    },
    /// The admission queue was full and the query was rejected.
    AdmissionRejected {
        /// Queries currently running.
        running: usize,
        /// Queries already waiting in the admission queue.
        waiting: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::TaskPanicked {
                stage,
                task,
                worker,
                message,
            } => write!(
                f,
                "task {task} of stage '{stage}' panicked on worker {worker}: {message}"
            ),
            ExecError::RetriesExhausted {
                stage,
                task,
                attempts,
                fault,
            } => write!(
                f,
                "task {task} of stage '{stage}' failed {attempts} attempts \
                 (last injected fault: {fault}); retry budget exhausted"
            ),
            ExecError::Cancelled { query_id } => {
                write!(f, "query {query_id} cancelled")
            }
            ExecError::DeadlineExceeded {
                query_id,
                timeout_ms,
            } => write!(f, "query {query_id} exceeded its {timeout_ms} ms deadline"),
            ExecError::MemoryExceeded {
                query_id,
                requested,
                budget,
            } => write!(
                f,
                "query {query_id} exceeded its memory budget: \
                 a {requested} B allocation cannot fit in {budget} B even after spilling"
            ),
            ExecError::SpillIo { detail } => write!(f, "spill I/O failed: {detail}"),
            ExecError::WorkerUnavailable { task, worker } => write!(
                f,
                "cannot dispatch task {task}: worker {worker}'s job channel is closed"
            ),
            ExecError::AdmissionRejected { running, waiting } => write!(
                f,
                "admission queue full ({running} running, {waiting} waiting); query rejected"
            ),
        }
    }
}

impl std::error::Error for ExecError {}
