//! Typed execution errors.
//!
//! Before this module existed a panicking task tore down its worker thread
//! and the driver died on a closed result channel with no context. Stage
//! execution now returns [`ExecError`] through
//! [`crate::Cluster::run_stage_traced`] instead of unwinding across the
//! channel.

use std::fmt;

/// A stage-level execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A task body panicked. Genuine panics are not retried: the task may
    /// have partially mutated per-partition state, so re-running it is not
    /// safe — recovery (if any) is the fixpoint's checkpoint/restore.
    TaskPanicked {
        /// Stage label.
        stage: String,
        /// Task index within the stage.
        task: usize,
        /// Worker the task ran on.
        worker: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// An injected fault kept recurring until the retry budget ran out.
    RetriesExhausted {
        /// Stage label.
        stage: String,
        /// Task index within the stage.
        task: usize,
        /// Attempts made (1 + retries).
        attempts: u32,
        /// Name of the last injected fault (`kill` / `lost_output`).
        fault: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::TaskPanicked {
                stage,
                task,
                worker,
                message,
            } => write!(
                f,
                "task {task} of stage '{stage}' panicked on worker {worker}: {message}"
            ),
            ExecError::RetriesExhausted {
                stage,
                task,
                attempts,
                fault,
            } => write!(
                f,
                "task {task} of stage '{stage}' failed {attempts} attempts \
                 (last injected fault: {fault}); retry budget exhausted"
            ),
        }
    }
}

impl std::error::Error for ExecError {}
