#![warn(missing_docs)]

//! # rasql-client
//!
//! A small blocking client for `rasql-server`. It depends only on
//! [`rasql_api`] (the wire types and framed codec) and the standard
//! library — no engine crates — so anything that can open a TCP socket can
//! embed it.
//!
//! ```no_run
//! use rasql_client::Client;
//!
//! let mut client = Client::connect("127.0.0.1:7432").unwrap();
//! let results = client.query("SELECT count(*) FROM edge").unwrap();
//! println!("{} rows", results[0].rows.len());
//! client.close().unwrap();
//! ```
//!
//! One [`Client`] is one server session: views created and statements
//! prepared through it are invisible to other connections. Errors carry the
//! server's stable `RA####` codes ([`rasql_api::ErrorCode`]); transport
//! failures surface as [`ErrorCode::Io`] or [`ErrorCode::ConnectionClosed`].
//!
//! ## Reconnection
//!
//! A server restart (or a keepalive reap of an idle connection) kills the
//! TCP session but not the client's usefulness: the client remembers the
//! resolved address and transparently redials with bounded exponential
//! backoff ([`ReconnectPolicy`]) when a request hits a dead socket.
//!
//! Retries are scoped by what is safe to repeat:
//!
//! - **Idempotent reads** ([`Client::status`], [`Client::metrics`],
//!   [`Client::views`], [`Client::durability`], [`Client::kill`]) retry the
//!   whole round trip — re-reading costs nothing.
//! - **Everything else** ([`Client::query`], [`Client::execute`],
//!   [`Client::prepare`], [`Client::register`]) retries only while the
//!   request fails to *send*: a frame the server never received was never
//!   executed. Once the request is on the wire, a transport failure
//!   surfaces to the caller, which must decide whether re-running is safe.
//!
//! Note that a reconnect is a **new session**: server-side prepared
//! statements and session-local views do not survive it. After retries
//! exhaust, the last typed [`ApiError`] is returned.

use rasql_api::wire::{read_response, send_request, Request, Response, PROTOCOL_VERSION};
use rasql_api::{ApiError, DurabilityStatus, ErrorCode, QueryResult, Row, Schema, ServerStatus};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Bounded exponential backoff for transparent reconnects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Reconnect attempts per failed request; `0` disables reconnection.
    pub max_attempts: u32,
    /// Delay before the first reconnect attempt; doubles on each retry.
    pub base_delay: Duration,
    /// Ceiling on any single backoff delay.
    pub max_delay: Duration,
}

impl ReconnectPolicy {
    /// No reconnection: every transport failure surfaces immediately.
    pub fn disabled() -> Self {
        ReconnectPolicy {
            max_attempts: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The delay before reconnect attempt `attempt` (1-based): the base
    /// delay doubled per prior attempt, capped at `max_delay`.
    fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }
}

impl Default for ReconnectPolicy {
    /// Four attempts at 25 ms, 50 ms, 100 ms, 200 ms — enough to ride out a
    /// server restart, short enough that a truly dead server fails fast.
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
        }
    }
}

/// A connected `rasql-server` session.
pub struct Client {
    stream: TcpStream,
    /// The server's identifier from the handshake (e.g. `rasql-server/0.1.0`).
    server: String,
    /// Resolved dial addresses, retained for reconnects.
    addrs: Vec<SocketAddr>,
    reconnect: ReconnectPolicy,
}

impl Client {
    /// Connect and perform the version handshake, with the default
    /// [`ReconnectPolicy`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ApiError> {
        Self::connect_with(addr, ReconnectPolicy::default())
    }

    /// Connect with an explicit reconnect policy
    /// ([`ReconnectPolicy::disabled`] restores fail-fast behavior).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        reconnect: ReconnectPolicy,
    ) -> Result<Client, ApiError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| ApiError::io(&e))?
            .collect();
        let (stream, server) = Self::dial(&addrs)?;
        Ok(Client {
            stream,
            server,
            addrs,
            reconnect,
        })
    }

    /// Dial the first reachable address and perform the handshake.
    fn dial(addrs: &[SocketAddr]) -> Result<(TcpStream, String), ApiError> {
        let mut last: Option<ApiError> = None;
        for addr in addrs {
            let mut stream = match TcpStream::connect(addr) {
                Ok(s) => s,
                Err(e) => {
                    last = Some(ApiError::io(&e));
                    continue;
                }
            };
            let _ = stream.set_nodelay(true);
            let hello = Request::Hello {
                version: PROTOCOL_VERSION,
            };
            let outcome =
                send_request(&mut stream, &hello).and_then(|()| read_response(&mut stream));
            match outcome {
                Ok(Response::Hello { server, .. }) => return Ok((stream, server)),
                Ok(Response::Error { error }) => return Err(error),
                Ok(other) => return Err(unexpected("Hello", &other)),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            ApiError::new(ErrorCode::Io, "address resolved to no socket addresses")
        }))
    }

    /// The server identifier from the handshake.
    pub fn server(&self) -> &str {
        &self.server
    }

    /// Execute a `;`-separated SQL script; one [`QueryResult`] per
    /// statement, in order. Results stream: earlier statements' rows are in
    /// flight while later ones still execute server-side.
    pub fn query(&mut self, sql: &str) -> Result<Vec<QueryResult>, ApiError> {
        self.send_reconnecting(&Request::Query {
            sql: sql.to_string(),
        })?;
        self.collect_results()
    }

    /// Parse and analyze a script server-side under `name`; returns the
    /// statement count. Re-preparing a name replaces it.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<u64, ApiError> {
        self.send_reconnecting(&Request::Prepare {
            name: name.to_string(),
            sql: sql.to_string(),
        })?;
        match self.recv()? {
            Response::Prepared { statements } => Ok(statements),
            Response::Error { error } => Err(error),
            other => Err(unexpected("Prepared", &other)),
        }
    }

    /// Execute a previously prepared script.
    pub fn execute(&mut self, name: &str) -> Result<Vec<QueryResult>, ApiError> {
        self.send_reconnecting(&Request::Execute {
            name: name.to_string(),
        })?;
        self.collect_results()
    }

    /// Register (or replace) a base table in the server's shared catalog.
    /// Returns the row count the server accepted.
    pub fn register(
        &mut self,
        name: &str,
        schema: Schema,
        rows: Vec<Row>,
    ) -> Result<u64, ApiError> {
        self.send_reconnecting(&Request::Register {
            name: name.to_string(),
            schema,
            rows,
        })?;
        match self.recv()? {
            Response::Registered { rows } => Ok(rows),
            Response::Error { error } => Err(error),
            other => Err(unexpected("Registered", &other)),
        }
    }

    /// Cooperatively cancel a running query (any session's) by id. Returns
    /// whether the id matched an active query. Idempotent (cancelling twice
    /// is a no-op), so it reconnects and retries on transport failure.
    pub fn kill(&mut self, query_id: u64) -> Result<bool, ApiError> {
        match self.round_trip_idempotent(&Request::Kill { query_id })? {
            Response::Killed { found } => Ok(found),
            Response::Error { error } => Err(error),
            other => Err(unexpected("Killed", &other)),
        }
    }

    /// Cumulative engine metrics in Prometheus text exposition format.
    pub fn metrics(&mut self) -> Result<String, ApiError> {
        match self.round_trip_idempotent(&Request::Metrics)? {
            Response::MetricsText { text } => Ok(text),
            Response::Error { error } => Err(error),
            other => Err(unexpected("MetricsText", &other)),
        }
    }

    /// The server's registered materialized views: name, version,
    /// staleness, retained warm-state bytes, and last refresh mode.
    pub fn views(&mut self) -> Result<Vec<rasql_api::ViewInfo>, ApiError> {
        match self.round_trip_idempotent(&Request::ListViews)? {
            Response::Views { views } => Ok(views),
            Response::Error { error } => Err(error),
            other => Err(unexpected("Views", &other)),
        }
    }

    /// Point-in-time server status: active query ids, admission counts,
    /// open sessions, table names.
    pub fn status(&mut self) -> Result<ServerStatus, ApiError> {
        match self.round_trip_idempotent(&Request::Status)? {
            Response::Status { status } => Ok(status),
            Response::Error { error } => Err(error),
            other => Err(unexpected("Status", &other)),
        }
    }

    /// The server's durability status: WAL and snapshot counters when it
    /// runs with a data directory, `None` when it is in-memory.
    pub fn durability(&mut self) -> Result<Option<DurabilityStatus>, ApiError> {
        match self.round_trip_idempotent(&Request::Durability)? {
            Response::Durability { status } => Ok(status),
            Response::Error { error } => Err(error),
            other => Err(unexpected("Durability", &other)),
        }
    }

    /// Ask the server to drain and exit, then close this connection.
    pub fn shutdown(mut self) -> Result<(), ApiError> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::Goodbye => Ok(()),
            Response::Error { error } => Err(error),
            other => Err(unexpected("Goodbye", &other)),
        }
    }

    /// Close the session politely. Dropping the client without calling this
    /// also works — the server treats the EOF as a disconnect and cancels
    /// anything the session still had running.
    pub fn close(mut self) -> Result<(), ApiError> {
        self.send(&Request::Goodbye)?;
        match self.recv()? {
            Response::Goodbye => Ok(()),
            Response::Error { error } => Err(error),
            other => Err(unexpected("Goodbye", &other)),
        }
    }

    /// Reassemble streamed `ResultHeader`/`RowBatch`/`StatementDone` frames
    /// into per-statement results, ending at `QueryDone` or `Error`.
    fn collect_results(&mut self) -> Result<Vec<QueryResult>, ApiError> {
        let mut results = Vec::new();
        let mut current: Option<(Schema, Vec<Row>)> = None;
        loop {
            match self.recv()? {
                Response::ResultHeader { schema } => {
                    if current.is_some() {
                        return Err(ApiError::protocol(
                            "ResultHeader before previous statement finished",
                        ));
                    }
                    current = Some((schema, Vec::new()));
                }
                Response::RowBatch { rows } => match &mut current {
                    Some((_, acc)) => acc.extend(rows),
                    None => return Err(ApiError::protocol("RowBatch outside a statement")),
                },
                Response::StatementDone { stats } => match current.take() {
                    Some((schema, rows)) => results.push(QueryResult {
                        schema,
                        rows,
                        stats,
                    }),
                    None => return Err(ApiError::protocol("StatementDone outside a statement")),
                },
                Response::QueryDone => {
                    if current.is_some() {
                        return Err(ApiError::protocol("QueryDone mid-statement"));
                    }
                    return Ok(results);
                }
                Response::Error { error } => return Err(error),
                other => return Err(unexpected("result stream", &other)),
            }
        }
    }

    /// Whether an error means the transport died (as opposed to a server
    /// answer): only these justify redialing.
    fn transport_failure(e: &ApiError) -> bool {
        matches!(e.code, ErrorCode::Io | ErrorCode::ConnectionClosed)
    }

    /// Back off (attempt is 1-based) and redial. A failed redial leaves the
    /// dead stream in place: the caller's next send fails fast and either
    /// burns another attempt or surfaces the error.
    fn backoff_and_redial(&mut self, attempt: u32) {
        let delay = self.reconnect.delay(attempt);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        if let Ok((stream, server)) = Self::dial(&self.addrs) {
            self.stream = stream;
            self.server = server;
        }
    }

    /// Send a request whose execution must not be repeated. The send alone
    /// is retried across reconnects — a frame that never reached the server
    /// was never executed — but once sent, failures surface to the caller.
    fn send_reconnecting(&mut self, request: &Request) -> Result<(), ApiError> {
        let mut attempt = 0u32;
        loop {
            match self.send(request) {
                Err(e) if Self::transport_failure(&e) && attempt < self.reconnect.max_attempts => {
                    attempt += 1;
                    self.backoff_and_redial(attempt);
                }
                other => return other,
            }
        }
    }

    /// Full round trip with reconnect-and-retry; only for idempotent
    /// single-frame requests (pure reads and `Kill`), where repeating the
    /// request after an ambiguous failure is harmless.
    fn round_trip_idempotent(&mut self, request: &Request) -> Result<Response, ApiError> {
        let mut attempt = 0u32;
        loop {
            match self.send(request).and_then(|()| self.recv()) {
                Err(e) if Self::transport_failure(&e) && attempt < self.reconnect.max_attempts => {
                    attempt += 1;
                    self.backoff_and_redial(attempt);
                }
                other => return other,
            }
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), ApiError> {
        send_request(&mut self.stream, request)
    }

    fn recv(&mut self) -> Result<Response, ApiError> {
        read_response(&mut self.stream)
    }
}

fn unexpected(wanted: &str, got: &Response) -> ApiError {
    let tag = match got {
        Response::Hello { .. } => "Hello",
        Response::ResultHeader { .. } => "ResultHeader",
        Response::RowBatch { .. } => "RowBatch",
        Response::StatementDone { .. } => "StatementDone",
        Response::QueryDone => "QueryDone",
        Response::Error { .. } => "Error",
        Response::Registered { .. } => "Registered",
        Response::Prepared { .. } => "Prepared",
        Response::Killed { .. } => "Killed",
        Response::MetricsText { .. } => "MetricsText",
        Response::Status { .. } => "Status",
        Response::Views { .. } => "Views",
        Response::Goodbye => "Goodbye",
        Response::Durability { .. } => "Durability",
    };
    ApiError::new(
        ErrorCode::Protocol,
        format!("expected {wanted}, server sent {tag}"),
    )
}

/// Convenience re-export: everything a caller needs to interpret results.
pub use rasql_api as api;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = ReconnectPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_millis(150),
        };
        assert_eq!(p.delay(1), Duration::from_millis(25));
        assert_eq!(p.delay(2), Duration::from_millis(50));
        assert_eq!(p.delay(3), Duration::from_millis(100));
        assert_eq!(p.delay(4), Duration::from_millis(150), "capped");
        assert_eq!(p.delay(40), Duration::from_millis(150), "shift saturates");
    }

    #[test]
    fn disabled_policy_has_no_attempts() {
        assert_eq!(ReconnectPolicy::disabled().max_attempts, 0);
    }
}
