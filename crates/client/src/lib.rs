#![warn(missing_docs)]

//! # rasql-client
//!
//! A small blocking client for `rasql-server`. It depends only on
//! [`rasql_api`] (the wire types and framed codec) and the standard
//! library — no engine crates — so anything that can open a TCP socket can
//! embed it.
//!
//! ```no_run
//! use rasql_client::Client;
//!
//! let mut client = Client::connect("127.0.0.1:7432").unwrap();
//! let results = client.query("SELECT count(*) FROM edge").unwrap();
//! println!("{} rows", results[0].rows.len());
//! client.close().unwrap();
//! ```
//!
//! One [`Client`] is one server session: views created and statements
//! prepared through it are invisible to other connections. Errors carry the
//! server's stable `RA####` codes ([`rasql_api::ErrorCode`]); transport
//! failures surface as [`ErrorCode::Io`] or [`ErrorCode::ConnectionClosed`].

use rasql_api::wire::{read_response, send_request, Request, Response, PROTOCOL_VERSION};
use rasql_api::{ApiError, ErrorCode, QueryResult, Row, Schema, ServerStatus};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected `rasql-server` session.
pub struct Client {
    stream: TcpStream,
    /// The server's identifier from the handshake (e.g. `rasql-server/0.1.0`).
    server: String,
}

impl Client {
    /// Connect and perform the version handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ApiError> {
        let stream = TcpStream::connect(addr).map_err(|e| ApiError::io(&e))?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            server: String::new(),
        };
        client.send(&Request::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match client.recv()? {
            Response::Hello { server, .. } => {
                client.server = server;
                Ok(client)
            }
            Response::Error { error } => Err(error),
            other => Err(unexpected("Hello", &other)),
        }
    }

    /// The server identifier from the handshake.
    pub fn server(&self) -> &str {
        &self.server
    }

    /// Execute a `;`-separated SQL script; one [`QueryResult`] per
    /// statement, in order. Results stream: earlier statements' rows are in
    /// flight while later ones still execute server-side.
    pub fn query(&mut self, sql: &str) -> Result<Vec<QueryResult>, ApiError> {
        self.send(&Request::Query {
            sql: sql.to_string(),
        })?;
        self.collect_results()
    }

    /// Parse and analyze a script server-side under `name`; returns the
    /// statement count. Re-preparing a name replaces it.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<u64, ApiError> {
        self.send(&Request::Prepare {
            name: name.to_string(),
            sql: sql.to_string(),
        })?;
        match self.recv()? {
            Response::Prepared { statements } => Ok(statements),
            Response::Error { error } => Err(error),
            other => Err(unexpected("Prepared", &other)),
        }
    }

    /// Execute a previously prepared script.
    pub fn execute(&mut self, name: &str) -> Result<Vec<QueryResult>, ApiError> {
        self.send(&Request::Execute {
            name: name.to_string(),
        })?;
        self.collect_results()
    }

    /// Register (or replace) a base table in the server's shared catalog.
    /// Returns the row count the server accepted.
    pub fn register(
        &mut self,
        name: &str,
        schema: Schema,
        rows: Vec<Row>,
    ) -> Result<u64, ApiError> {
        self.send(&Request::Register {
            name: name.to_string(),
            schema,
            rows,
        })?;
        match self.recv()? {
            Response::Registered { rows } => Ok(rows),
            Response::Error { error } => Err(error),
            other => Err(unexpected("Registered", &other)),
        }
    }

    /// Cooperatively cancel a running query (any session's) by id. Returns
    /// whether the id matched an active query.
    pub fn kill(&mut self, query_id: u64) -> Result<bool, ApiError> {
        self.send(&Request::Kill { query_id })?;
        match self.recv()? {
            Response::Killed { found } => Ok(found),
            Response::Error { error } => Err(error),
            other => Err(unexpected("Killed", &other)),
        }
    }

    /// Cumulative engine metrics in Prometheus text exposition format.
    pub fn metrics(&mut self) -> Result<String, ApiError> {
        self.send(&Request::Metrics)?;
        match self.recv()? {
            Response::MetricsText { text } => Ok(text),
            Response::Error { error } => Err(error),
            other => Err(unexpected("MetricsText", &other)),
        }
    }

    /// The server's registered materialized views: name, version,
    /// staleness, retained warm-state bytes, and last refresh mode.
    pub fn views(&mut self) -> Result<Vec<rasql_api::ViewInfo>, ApiError> {
        self.send(&Request::ListViews)?;
        match self.recv()? {
            Response::Views { views } => Ok(views),
            Response::Error { error } => Err(error),
            other => Err(unexpected("Views", &other)),
        }
    }

    /// Point-in-time server status: active query ids, admission counts,
    /// open sessions, table names.
    pub fn status(&mut self) -> Result<ServerStatus, ApiError> {
        self.send(&Request::Status)?;
        match self.recv()? {
            Response::Status { status } => Ok(status),
            Response::Error { error } => Err(error),
            other => Err(unexpected("Status", &other)),
        }
    }

    /// Ask the server to drain and exit, then close this connection.
    pub fn shutdown(mut self) -> Result<(), ApiError> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::Goodbye => Ok(()),
            Response::Error { error } => Err(error),
            other => Err(unexpected("Goodbye", &other)),
        }
    }

    /// Close the session politely. Dropping the client without calling this
    /// also works — the server treats the EOF as a disconnect and cancels
    /// anything the session still had running.
    pub fn close(mut self) -> Result<(), ApiError> {
        self.send(&Request::Goodbye)?;
        match self.recv()? {
            Response::Goodbye => Ok(()),
            Response::Error { error } => Err(error),
            other => Err(unexpected("Goodbye", &other)),
        }
    }

    /// Reassemble streamed `ResultHeader`/`RowBatch`/`StatementDone` frames
    /// into per-statement results, ending at `QueryDone` or `Error`.
    fn collect_results(&mut self) -> Result<Vec<QueryResult>, ApiError> {
        let mut results = Vec::new();
        let mut current: Option<(Schema, Vec<Row>)> = None;
        loop {
            match self.recv()? {
                Response::ResultHeader { schema } => {
                    if current.is_some() {
                        return Err(ApiError::protocol(
                            "ResultHeader before previous statement finished",
                        ));
                    }
                    current = Some((schema, Vec::new()));
                }
                Response::RowBatch { rows } => match &mut current {
                    Some((_, acc)) => acc.extend(rows),
                    None => return Err(ApiError::protocol("RowBatch outside a statement")),
                },
                Response::StatementDone { stats } => match current.take() {
                    Some((schema, rows)) => results.push(QueryResult {
                        schema,
                        rows,
                        stats,
                    }),
                    None => return Err(ApiError::protocol("StatementDone outside a statement")),
                },
                Response::QueryDone => {
                    if current.is_some() {
                        return Err(ApiError::protocol("QueryDone mid-statement"));
                    }
                    return Ok(results);
                }
                Response::Error { error } => return Err(error),
                other => return Err(unexpected("result stream", &other)),
            }
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), ApiError> {
        send_request(&mut self.stream, request)
    }

    fn recv(&mut self) -> Result<Response, ApiError> {
        read_response(&mut self.stream)
    }
}

fn unexpected(wanted: &str, got: &Response) -> ApiError {
    let tag = match got {
        Response::Hello { .. } => "Hello",
        Response::ResultHeader { .. } => "ResultHeader",
        Response::RowBatch { .. } => "RowBatch",
        Response::StatementDone { .. } => "StatementDone",
        Response::QueryDone => "QueryDone",
        Response::Error { .. } => "Error",
        Response::Registered { .. } => "Registered",
        Response::Prepared { .. } => "Prepared",
        Response::Killed { .. } => "Killed",
        Response::MetricsText { .. } => "MetricsText",
        Response::Status { .. } => "Status",
        Response::Views { .. } => "Views",
        Response::Goodbye => "Goodbye",
    };
    ApiError::new(
        ErrorCode::Protocol,
        format!("expected {wanted}, server sent {tag}"),
    )
}

/// Convenience re-export: everything a caller needs to interpret results.
pub use rasql_api as api;
