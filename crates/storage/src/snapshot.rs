//! Checksummed whole-state snapshots for WAL compaction.
//!
//! A snapshot is the full durable state — every base table image, every
//! materialized-view image (warm blobs included), and the catalog version
//! floor — in one checksummed file. Publication is atomic (temp file →
//! `fsync` → rename over `snapshot.bin` → directory `fsync` → log
//! truncation) and lives on [`Wal::publish_snapshot`](crate::wal::Wal) so
//! the write path shares the appender lock and crashpoint instrumentation;
//! this module owns the encoding and the read side.
//!
//! ```text
//! snapshot := b"RQSN" | u8 format_version | body | crc32(body) as u32 LE
//! body     := varint version_floor
//!           | varint table_count | table images
//!           | varint view_count  | view images
//! ```
//!
//! A snapshot that fails its magic, version, or CRC check is a typed
//! [`StorageError::Corrupt`] — torn-tail tolerance is a WAL property; a
//! *published* snapshot was fsynced before its rename, so damage here can
//! never be explained by a crash and must not be silently skipped.

use std::fs;
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::codec::{read_varint, write_varint};
use crate::error::StorageError;
use crate::wal::{
    crc32, read_table_image, read_view_image, write_table_image, write_view_image, TableImage,
    ViewImage, SNAPSHOT_FILE, SNAPSHOT_TEMP_FILE,
};

const MAGIC: &[u8; 4] = b"RQSN";
const FORMAT_VERSION: u8 = 1;

/// Everything recovery needs: the catalog and view registry, verbatim.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DurableState {
    /// Floor for the catalog's global version counter (strictly above every
    /// version recorded in `tables`, so post-recovery mints cannot alias).
    pub version_floor: u64,
    /// Every base table, sorted by name.
    pub tables: Vec<TableImage>,
    /// Every materialized view, sorted by key.
    pub views: Vec<ViewImage>,
}

/// Encode a snapshot (magic, format version, body, trailing CRC).
#[must_use]
pub fn encode_state(state: &DurableState) -> Vec<u8> {
    let mut body = BytesMut::new();
    write_varint(&mut body, state.version_floor);
    write_varint(&mut body, state.tables.len() as u64);
    for t in &state.tables {
        write_table_image(&mut body, t);
    }
    write_varint(&mut body, state.views.len() as u64);
    for v in &state.views {
        write_view_image(&mut body, v);
    }
    let body = body.freeze();
    let body = body.as_ref();
    let mut out = BytesMut::with_capacity(body.len() + 9);
    out.put_slice(MAGIC);
    out.put_u8(FORMAT_VERSION);
    out.put_slice(body);
    out.put_slice(&crc32(body).to_le_bytes());
    out.freeze().as_ref().to_vec()
}

/// Decode a snapshot produced by [`encode_state`].
///
/// # Errors
/// [`StorageError::Corrupt`] (offset 0, the whole file is one record) on a
/// bad magic, unknown format version, CRC mismatch, or malformed body.
pub fn decode_state(bytes: &[u8]) -> Result<DurableState, StorageError> {
    let corrupt = |detail: String| StorageError::Corrupt { offset: 0, detail };
    if bytes.len() < MAGIC.len() + 5 {
        return Err(corrupt(format!(
            "snapshot too short ({} bytes)",
            bytes.len()
        )));
    }
    if &bytes[..4] != MAGIC {
        return Err(corrupt("bad snapshot magic".into()));
    }
    if bytes[4] != FORMAT_VERSION {
        return Err(corrupt(format!(
            "unknown snapshot format version {}",
            bytes[4]
        )));
    }
    let body = &bytes[5..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 crc bytes"));
    let computed = crc32(body);
    if computed != stored {
        return Err(corrupt(format!(
            "snapshot crc mismatch (stored {stored:#010x}, computed {computed:#010x})"
        )));
    }
    let mut buf = Bytes::from(body.to_vec());
    let state = (|| -> Result<DurableState, StorageError> {
        let version_floor = read_varint(&mut buf)?;
        let ntables = read_varint(&mut buf)? as usize;
        let mut tables = Vec::with_capacity(ntables.min(1 << 16));
        for _ in 0..ntables {
            tables.push(read_table_image(&mut buf)?);
        }
        let nviews = read_varint(&mut buf)? as usize;
        let mut views = Vec::with_capacity(nviews.min(1 << 16));
        for _ in 0..nviews {
            views.push(read_view_image(&mut buf)?);
        }
        if buf.has_remaining() {
            return Err(StorageError::Codec("trailing snapshot bytes".into()));
        }
        Ok(DurableState {
            version_floor,
            tables,
            views,
        })
    })()
    .map_err(|e| corrupt(format!("undecodable snapshot body: {e}")))?;
    Ok(state)
}

/// Read `dir/snapshot.bin`, if one has been published.
///
/// # Errors
/// [`StorageError::Corrupt`] on a damaged snapshot, [`StorageError::Io`] on
/// filesystem failure. A missing file is `Ok(None)` — a fresh directory.
pub fn read_snapshot(dir: &Path) -> Result<Option<DurableState>, StorageError> {
    match fs::read(dir.join(SNAPSHOT_FILE)) {
        Ok(bytes) => Ok(Some(decode_state(&bytes)?)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(StorageError::Io(e)),
    }
}

/// Remove a stray `snapshot.tmp` left by a publish that died before its
/// rename. Returns whether one was found (recovery logs it; the soak's
/// leak check asserts none remain *after* recovery).
///
/// # Errors
/// [`StorageError::Io`] if a stray file exists but cannot be removed.
pub fn sweep_stray_temp(dir: &Path) -> Result<bool, StorageError> {
    let tmp = dir.join(SNAPSHOT_TEMP_FILE);
    match fs::remove_file(&tmp) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(StorageError::Io(e)),
    }
}

/// Temp/stray files currently present in a data directory (the crash-soak
/// leak check: after recovery this must be empty).
#[must_use]
pub fn stray_temp_files(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".tmp"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::int_row;
    use crate::schema::{DataType, Schema};
    use crate::wal::ViewDep;

    fn sample_state() -> DurableState {
        DurableState {
            version_floor: 42,
            tables: vec![TableImage {
                name: "edge".into(),
                schema: Schema::new(vec![("src", DataType::Int), ("dst", DataType::Int)]),
                rows: vec![int_row(&[1, 2]), int_row(&[2, 3])],
                version: 7,
                rewrite_version: 3,
            }],
            views: vec![ViewImage {
                key: "paths".into(),
                sql: "CREATE MATERIALIZED VIEW paths AS SELECT 1;".into(),
                version: 2,
                eligible: false,
                ineligible_reason: Some("RA0920: non-monotonic aggregate".into()),
                last_refresh: "full".into(),
                retained_bytes: 0,
                deps: vec![ViewDep {
                    table: "edge".into(),
                    version: 7,
                    rewrite_version: 3,
                    len: 2,
                }],
                warm: vec![],
            }],
        }
    }

    #[test]
    fn state_round_trips() {
        let state = sample_state();
        assert_eq!(decode_state(&encode_state(&state)).expect("decode"), state);
        let empty = DurableState::default();
        assert_eq!(decode_state(&encode_state(&empty)).expect("decode"), empty);
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let bytes = encode_state(&sample_state());
        // Flip one bit at a sample of positions across the file (every 7th
        // byte keeps the test fast while covering magic, header, body, crc).
        for pos in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            assert!(
                matches!(decode_state(&bad), Err(StorageError::Corrupt { .. })),
                "bit flip at byte {pos} must be detected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_state(&sample_state());
        for keep in 0..bytes.len() {
            assert!(
                matches!(
                    decode_state(&bytes[..keep]),
                    Err(StorageError::Corrupt { .. })
                ),
                "truncation to {keep} bytes must be detected"
            );
        }
    }

    #[test]
    fn sweep_reports_and_removes_stray_temp() {
        let dir = std::env::temp_dir().join(format!(
            "rasql-snap-test-p{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("dir");
        assert!(!sweep_stray_temp(&dir).expect("sweep empty"));
        fs::write(dir.join(SNAPSHOT_TEMP_FILE), b"half").expect("stray");
        assert_eq!(stray_temp_files(&dir).len(), 1);
        assert!(sweep_stray_temp(&dir).expect("sweep"));
        assert!(stray_temp_files(&dir).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
