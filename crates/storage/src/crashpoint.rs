//! Deterministic crashpoint injection for the durability layer.
//!
//! The WAL and snapshot writers call [`CrashInjector::fire`] at every
//! write/fsync/rename boundary (a *crash site*). When the injector decides a
//! site fires, the writer abandons the operation mid-way — leaving the same
//! on-disk bytes a process death at that boundary would — and surfaces
//! [`StorageError::InjectedCrash`](crate::StorageError). The recovery soak
//! (`reproduce crash-soak`) then reopens the data directory and asserts the
//! recovered state is prefix-consistent.
//!
//! Two modes, mirroring `exec::fault`'s seeded discipline:
//!
//! * **Enumerated** (`at=K`): the K-th crash site hit during the workload
//!   fires, everything before it proceeds normally. Running K from 0 to the
//!   total site count (learned from a counting pass) kills at *every*
//!   boundary exactly once — exhaustive, deterministic, seed-free.
//! * **Probabilistic** (`prob=P,seed=S`): each site hit fires with
//!   probability P under a splitmix64 draw keyed by (site, hit index, seed) —
//!   the same pure-function construction `exec::fault` uses, so a failing
//!   soak reproduces from its printed spec alone.
//!
//! The injector is cheap and lock-free (one atomic counter); a disarmed
//! injector ([`CrashInjector::none`]) is a handful of relaxed loads.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Stable names of every crash site the durability layer enumerates, in the
/// order a write path visits them. The soak iterates this list to label its
/// kill legs; the injector itself treats sites as opaque strings.
pub const CRASH_SITES: &[&str] = &[
    "wal-append-pre",
    "wal-append-torn",
    "wal-append-post",
    "snapshot-temp-pre",
    "snapshot-temp-torn",
    "snapshot-temp-written",
    "snapshot-renamed",
    "snapshot-truncated",
];

/// Parsed crashpoint specification (`at=K` or `prob=P,seed=S`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashSpec {
    /// Fire exactly at this 0-based crash-site hit index.
    pub kill_at: Option<u64>,
    /// Per-site-hit firing probability (0 disables the probabilistic mode).
    pub prob: f64,
    /// Seed of the probabilistic draw.
    pub seed: u64,
}

impl CrashSpec {
    /// A spec that fires at the `k`-th crash-site hit.
    pub fn at(k: u64) -> Self {
        CrashSpec {
            kill_at: Some(k),
            prob: 0.0,
            seed: 0,
        }
    }

    /// Parse `key=value` pairs: `at=K`, `prob=P`, `seed=S`.
    ///
    /// # Errors
    /// A human-readable message on an unknown key or malformed number.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut spec = CrashSpec {
            kill_at: None,
            prob: 0.0,
            seed: 0,
        };
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("crash spec '{part}' is not key=value"))?;
            match key.trim() {
                "at" => {
                    spec.kill_at = Some(
                        value
                            .trim()
                            .parse()
                            .map_err(|e| format!("crash spec at={value}: {e}"))?,
                    );
                }
                "prob" => {
                    spec.prob = value
                        .trim()
                        .parse()
                        .map_err(|e| format!("crash spec prob={value}: {e}"))?;
                }
                "seed" => {
                    spec.seed = value
                        .trim()
                        .parse()
                        .map_err(|e| format!("crash spec seed={value}: {e}"))?;
                }
                other => return Err(format!("unknown crash spec key '{other}'")),
            }
        }
        Ok(spec)
    }
}

impl fmt::Display for CrashSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kill_at {
            Some(k) => write!(f, "at={k}"),
            None => write!(f, "prob={},seed={}", self.prob, self.seed),
        }
    }
}

/// The shared crashpoint decider; cloned handles observe one hit counter, so
/// the WAL and snapshot writers of a context enumerate one global sequence.
#[derive(Debug, Clone)]
pub struct CrashInjector {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    spec: Option<CrashSpec>,
    hits: AtomicU64,
}

impl CrashInjector {
    /// An armed injector.
    pub fn new(spec: CrashSpec) -> Self {
        CrashInjector {
            inner: Arc::new(Inner {
                spec: Some(spec),
                hits: AtomicU64::new(0),
            }),
        }
    }

    /// A disarmed injector: counts nothing, never fires.
    pub fn none() -> Self {
        CrashInjector {
            inner: Arc::new(Inner {
                spec: None,
                hits: AtomicU64::new(0),
            }),
        }
    }

    /// Whether the injector is armed at all (disarmed handles skip even the
    /// hit counting, so production writes stay branch-cheap).
    pub fn armed(&self) -> bool {
        self.inner.spec.is_some()
    }

    /// Record arrival at `site` and decide whether the simulated process
    /// death happens here. Pure in the enumerated mode; pure given
    /// (site, hit index, seed) in the probabilistic mode.
    pub fn fire(&self, site: &str) -> bool {
        let Some(spec) = &self.inner.spec else {
            return false;
        };
        let idx = self.inner.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(k) = spec.kill_at {
            return idx == k;
        }
        if spec.prob <= 0.0 {
            return false;
        }
        draw(site, idx, spec.seed) < spec.prob
    }

    /// Crash sites hit so far — after a disarm-free counting run, the total
    /// number of boundaries the workload visits (the enumeration bound the
    /// soak kills at one by one).
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }
}

/// The same splitmix64-finalized uniform draw `exec::fault` uses, keyed by
/// the site name's bytes instead of stage/task ids.
fn draw(site: &str, idx: u64, seed: u64) -> f64 {
    let mut salt = 0xcbf2_9ce4_8422_2325u64;
    for b in site.bytes() {
        salt = (salt ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
    }
    let mut h = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(salt | 1));
    h = splitmix(h ^ idx.wrapping_mul(0xd134_2543_de82_ef95));
    h = splitmix(h ^ salt);
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parse_round_trips() {
        for s in ["at=7", "prob=0.25,seed=11"] {
            let spec = CrashSpec::parse(s).expect(s);
            assert_eq!(spec.to_string(), s);
        }
        assert!(CrashSpec::parse("at=x").is_err());
        assert!(CrashSpec::parse("bogus=1").is_err());
        assert!(CrashSpec::parse("at").is_err());
    }

    #[test]
    fn enumerated_mode_fires_exactly_once() {
        let inj = CrashInjector::new(CrashSpec::at(2));
        let fired: Vec<bool> = (0..5).map(|_| inj.fire("wal-append-pre")).collect();
        assert_eq!(fired, vec![false, false, true, false, false]);
        assert_eq!(inj.hits(), 5);
    }

    #[test]
    fn counting_run_never_fires() {
        let inj = CrashInjector::new(CrashSpec {
            kill_at: None,
            prob: 0.0,
            seed: 0,
        });
        for site in CRASH_SITES {
            assert!(!inj.fire(site));
        }
        assert_eq!(inj.hits(), CRASH_SITES.len() as u64);
    }

    #[test]
    fn probabilistic_mode_is_deterministic_and_seed_sensitive() {
        let a: Vec<bool> = {
            let inj = CrashInjector::new(CrashSpec {
                kill_at: None,
                prob: 0.5,
                seed: 7,
            });
            (0..64).map(|_| inj.fire("wal-append-post")).collect()
        };
        let b: Vec<bool> = {
            let inj = CrashInjector::new(CrashSpec {
                kill_at: None,
                prob: 0.5,
                seed: 7,
            });
            (0..64).map(|_| inj.fire("wal-append-post")).collect()
        };
        assert_eq!(a, b, "same spec must reproduce the same kills");
        let c: Vec<bool> = {
            let inj = CrashInjector::new(CrashSpec {
                kill_at: None,
                prob: 0.5,
                seed: 8,
            });
            (0..64).map(|_| inj.fire("wal-append-post")).collect()
        };
        assert_ne!(a, c, "a different seed must change the schedule");
        let fired = a.iter().filter(|f| **f).count();
        assert!((10..=54).contains(&fired), "rate wildly off: {fired}/64");
    }

    #[test]
    fn disarmed_injector_counts_nothing() {
        let inj = CrashInjector::none();
        assert!(!inj.armed());
        assert!(!inj.fire("wal-append-pre"));
        assert_eq!(inj.hits(), 0);
    }
}
