//! Storage-layer errors.

use std::fmt;

/// Errors from the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// Row arity does not match relation schema.
    ArityMismatch {
        /// Arity the schema expects.
        expected: usize,
        /// Arity the row actually has.
        actual: usize,
    },
    /// Unknown table name in a catalog lookup.
    UnknownTable(String),
    /// A table with this name is already registered.
    DuplicateTable(String),
    /// Malformed input during CSV/text ingestion.
    Parse(String),
    /// Codec error (corrupt varint stream etc).
    Codec(String),
    /// Underlying IO error.
    Io(std::io::Error),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "row arity {actual} does not match schema arity {expected}"
                )
            }
            StorageError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            StorageError::DuplicateTable(t) => write!(f, "table '{t}' already exists"),
            StorageError::Parse(m) => write!(f, "parse error: {m}"),
            StorageError::Codec(m) => write!(f, "codec error: {m}"),
            StorageError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}
