//! Storage-layer errors.

use std::fmt;

/// Errors from the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// Row arity does not match relation schema.
    ArityMismatch {
        /// Arity the schema expects.
        expected: usize,
        /// Arity the row actually has.
        actual: usize,
    },
    /// Unknown table name in a catalog lookup.
    UnknownTable(String),
    /// A table with this name is already registered.
    DuplicateTable(String),
    /// Malformed input during CSV/text ingestion.
    Parse(String),
    /// Codec error (corrupt varint stream etc).
    Codec(String),
    /// A durability record (WAL frame or snapshot) failed its CRC or shape
    /// check at a position that cannot be explained by a torn tail write.
    Corrupt {
        /// Byte offset of the bad record within its file.
        offset: u64,
        /// What exactly failed (CRC mismatch, bad tag, truncated field...).
        detail: String,
    },
    /// A deterministic crashpoint fired: the durability layer simulated
    /// process death at the named write/fsync/rename boundary.
    InjectedCrash(String),
    /// Underlying IO error.
    Io(std::io::Error),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "row arity {actual} does not match schema arity {expected}"
                )
            }
            StorageError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            StorageError::DuplicateTable(t) => write!(f, "table '{t}' already exists"),
            StorageError::Parse(m) => write!(f, "parse error: {m}"),
            StorageError::Codec(m) => write!(f, "codec error: {m}"),
            StorageError::Corrupt { offset, detail } => {
                write!(f, "corrupt durability record at byte {offset}: {detail}")
            }
            StorageError::InjectedCrash(site) => write!(f, "injected crash at {site}"),
            StorageError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}
