//! In-memory relations: a schema plus a bag of rows, with text ingestion and
//! the small utility operations (sort, dedup, pretty-print) the test and bench
//! harnesses use everywhere.

use crate::error::StorageError;
use crate::hasher::FxHashSet;
use crate::row::Row;
use crate::schema::{DataType, Schema};
use crate::value::Value;
use std::fmt;
use std::path::Path;

/// A schema plus rows. Bag semantics: duplicates are allowed until an explicit
/// `dedup`, matching SQL.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Row>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: vec![],
        }
    }

    /// Build from schema and rows, validating arity.
    pub fn try_new(schema: Schema, rows: Vec<Row>) -> Result<Self, StorageError> {
        if let Some(bad) = rows.iter().find(|r| r.arity() != schema.arity()) {
            return Err(StorageError::ArityMismatch {
                expected: schema.arity(),
                actual: bad.arity(),
            });
        }
        Ok(Relation { schema, rows })
    }

    /// Build without validation (hot paths that construct rows internally).
    pub fn new_unchecked(schema: Schema, rows: Vec<Row>) -> Self {
        debug_assert!(rows.iter().all(|r| r.arity() == schema.arity()));
        Relation { schema, rows }
    }

    /// Integer edge list `(src, dst)` — the pervasive graph-workload shape.
    pub fn edges(pairs: &[(i64, i64)]) -> Self {
        let schema = Schema::new(vec![("src", DataType::Int), ("dst", DataType::Int)]);
        let rows = pairs
            .iter()
            .map(|&(s, d)| Row::new(vec![Value::Int(s), Value::Int(d)]))
            .collect();
        Relation { schema, rows }
    }

    /// Weighted integer edge list `(src, dst, cost)`.
    pub fn weighted_edges(triples: &[(i64, i64, f64)]) -> Self {
        let schema = Schema::new(vec![
            ("src", DataType::Int),
            ("dst", DataType::Int),
            ("cost", DataType::Double),
        ]);
        let rows = triples
            .iter()
            .map(|&(s, d, c)| Row::new(vec![Value::Int(s), Value::Int(d), Value::Double(c)]))
            .collect();
        Relation { schema, rows }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows slice.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row (arity checked in debug builds only).
    pub fn push(&mut self, row: Row) {
        debug_assert_eq!(row.arity(), self.schema.arity());
        self.rows.push(row);
    }

    /// Sort rows lexicographically — gives deterministic output for tests.
    pub fn sorted(mut self) -> Self {
        self.rows.sort_unstable();
        self
    }

    /// Remove duplicate rows (set semantics), preserving first occurrence.
    pub fn dedup(mut self) -> Self {
        let mut seen: FxHashSet<Row> = FxHashSet::default();
        self.rows.retain(|r| seen.insert(r.clone()));
        self
    }

    /// Total approximate size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.rows.iter().map(Row::size_bytes).sum()
    }

    /// Load a whitespace/comma-separated text file of typed columns
    /// (the format used for graph edge lists: one edge per line, `#` comments).
    pub fn load_text(path: &Path, schema: Schema) -> Result<Self, StorageError> {
        let content = std::fs::read_to_string(path)?;
        Self::parse_text(&content, schema)
    }

    /// Parse edge-list style text into a relation per the schema types.
    pub fn parse_text(content: &str, schema: Schema) -> Result<Self, StorageError> {
        let mut rows = Vec::new();
        for (lineno, line) in content.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line
                .split(|c: char| c == ',' || c.is_whitespace())
                .filter(|p| !p.is_empty())
                .collect();
            if parts.len() != schema.arity() {
                return Err(StorageError::Parse(format!(
                    "line {}: expected {} fields, got {}",
                    lineno + 1,
                    schema.arity(),
                    parts.len()
                )));
            }
            let mut values = Vec::with_capacity(parts.len());
            for (part, field) in parts.iter().zip(schema.fields()) {
                let v =
                    match field.data_type {
                        DataType::Int => Value::Int(part.parse::<i64>().map_err(|e| {
                            StorageError::Parse(format!("line {}: {e}", lineno + 1))
                        })?),
                        DataType::Double => Value::Double(part.parse::<f64>().map_err(|e| {
                            StorageError::Parse(format!("line {}: {e}", lineno + 1))
                        })?),
                        DataType::Bool => Value::Bool(part.eq_ignore_ascii_case("true")),
                        DataType::Str | DataType::Any => Value::from(*part),
                    };
                values.push(v);
            }
            rows.push(Row::new(values));
        }
        Ok(Relation { schema, rows })
    }

    /// Write as one-row-per-line text (inverse of [`Relation::parse_text`]).
    pub fn save_text(&self, path: &Path) -> Result<(), StorageError> {
        let mut out = String::new();
        for row in &self.rows {
            for (i, v) in row.values().iter().enumerate() {
                if i > 0 {
                    out.push('\t');
                }
                out.push_str(&v.to_string());
            }
            out.push('\n');
        }
        std::fs::write(path, out)?;
        Ok(())
    }

    /// Pretty table for the examples/README output.
    pub fn pretty(&self, max_rows: usize) -> String {
        let mut s = String::new();
        let names = self.schema.names();
        s.push_str(&names.join(" | "));
        s.push('\n');
        s.push_str(&"-".repeat(names.join(" | ").len().max(8)));
        s.push('\n');
        for row in self.rows.iter().take(max_rows) {
            let cells: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
            s.push_str(&cells.join(" | "));
            s.push('\n');
        }
        if self.rows.len() > max_rows {
            s.push_str(&format!("... ({} rows total)\n", self.rows.len()));
        }
        s
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty(20))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::int_row;

    #[test]
    fn build_and_validate() {
        let schema = Schema::new(vec![("a", DataType::Int)]);
        assert!(Relation::try_new(schema.clone(), vec![int_row(&[1])]).is_ok());
        assert!(matches!(
            Relation::try_new(schema, vec![int_row(&[1, 2])]),
            Err(StorageError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn dedup_preserves_first() {
        let r = Relation::edges(&[(1, 2), (1, 2), (2, 3)]).dedup();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn parse_text_formats() {
        let schema = Schema::new(vec![("s", DataType::Int), ("d", DataType::Int)]);
        let r = Relation::parse_text("# comment\n1 2\n3,4\n\n5\t6\n", schema).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.rows()[2], int_row(&[5, 6]));
    }

    #[test]
    fn parse_text_rejects_bad_arity() {
        let schema = Schema::new(vec![("s", DataType::Int)]);
        assert!(Relation::parse_text("1 2\n", schema).is_err());
    }

    #[test]
    fn text_round_trip() {
        let dir = std::env::temp_dir().join("rasql_storage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.txt");
        let r = Relation::weighted_edges(&[(1, 2, 0.5), (2, 3, 1.5)]);
        r.save_text(&path).unwrap();
        let schema = r.schema().clone();
        let r2 = Relation::load_text(&path, schema).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn pretty_truncates() {
        let r = Relation::edges(&[(1, 2), (2, 3), (3, 4)]);
        let p = r.pretty(2);
        assert!(p.contains("(3 rows total)"));
    }
}
