//! Broadcast compression codecs (paper §7.2).
//!
//! The paper's decomposed-plan optimization broadcasts the base relation to every
//! worker. Spark's default builds the hash table on the master and ships it
//! (2-3x larger than the raw data); RaSQL instead ships a *compressed* edge list
//! and lets each worker build its own hash table. We reproduce that with a
//! delta-encoded varint CSR codec for integer edge lists and a generic varint
//! row codec for everything else.

use crate::error::StorageError;
use crate::row::Row;
use crate::schema::{DataType, Schema};
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Write an unsigned LEB128 varint.
pub fn write_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint.
pub fn read_varint(buf: &mut impl Buf) -> Result<u64, StorageError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(StorageError::Codec("truncated varint".into()));
        }
        let byte = buf.get_u8();
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(StorageError::Codec("varint overflow".into()));
        }
    }
}

/// ZigZag-encode a signed integer so small magnitudes stay small.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A compressed, broadcast-ready encoding of a relation.
///
/// Integer-only relations are sorted and delta/zigzag/varint encoded (the CSR
/// analog); mixed-type relations fall back to a tagged varint row codec. Both
/// decompress to the original bag of rows (integer relations come back sorted —
/// order is immaterial for hash-table builds).
#[derive(Debug, Clone)]
pub struct CompressedRelation {
    schema: Schema,
    payload: Bytes,
    rows: usize,
    delta_encoded: bool,
}

impl CompressedRelation {
    /// Compress rows of `schema`.
    pub fn compress(schema: &Schema, rows: &[Row]) -> Self {
        let all_int = schema.fields().iter().all(|f| f.data_type == DataType::Int)
            && rows
                .iter()
                .all(|r| r.values().iter().all(|v| matches!(v, Value::Int(_))));
        let mut buf = BytesMut::new();
        if all_int && schema.arity() > 0 {
            // Sort rows, then delta-encode column 0 across rows and store the
            // remaining columns zigzag-varint raw. Sorted column 0 yields tiny
            // deltas for edge lists grouped by source.
            let mut sorted: Vec<&Row> = rows.iter().collect();
            sorted.sort_unstable();
            let mut prev0: i64 = 0;
            for row in sorted {
                let v0 = row.get(0).as_int().unwrap();
                write_varint(&mut buf, zigzag(v0 - prev0));
                prev0 = v0;
                for i in 1..row.arity() {
                    write_varint(&mut buf, zigzag(row.get(i).as_int().unwrap()));
                }
            }
            CompressedRelation {
                schema: schema.clone(),
                payload: buf.freeze(),
                rows: rows.len(),
                delta_encoded: true,
            }
        } else {
            for row in rows {
                for v in row.values() {
                    encode_value(&mut buf, v);
                }
            }
            CompressedRelation {
                schema: schema.clone(),
                payload: buf.freeze(),
                rows: rows.len(),
                delta_encoded: false,
            }
        }
    }

    /// Compressed payload size in bytes (what would cross the network).
    pub fn size_bytes(&self) -> usize {
        self.payload.len()
    }

    /// Number of encoded rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if no rows are encoded.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The schema of the encoded relation.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Decompress back to rows.
    pub fn decompress(&self) -> Result<Vec<Row>, StorageError> {
        let mut buf = self.payload.clone();
        let arity = self.schema.arity();
        let mut rows = Vec::with_capacity(self.rows);
        if self.delta_encoded {
            let mut prev0: i64 = 0;
            for _ in 0..self.rows {
                let mut values = Vec::with_capacity(arity);
                let v0 = prev0 + unzigzag(read_varint(&mut buf)?);
                prev0 = v0;
                values.push(Value::Int(v0));
                for _ in 1..arity {
                    values.push(Value::Int(unzigzag(read_varint(&mut buf)?)));
                }
                rows.push(Row::new(values));
            }
        } else {
            for _ in 0..self.rows {
                let mut values = Vec::with_capacity(arity);
                for _ in 0..arity {
                    values.push(decode_value(&mut buf)?);
                }
                rows.push(Row::new(values));
            }
        }
        if buf.has_remaining() {
            return Err(StorageError::Codec("trailing bytes".into()));
        }
        Ok(rows)
    }
}

/// Encode one [`Value`] with a 1-byte type tag (the row-codec building block,
/// also used by the exec crate's checkpoint encoding).
pub fn encode_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(2);
            write_varint(buf, zigzag(*i));
        }
        Value::Double(d) => {
            buf.put_u8(3);
            buf.put_u64_le(d.to_bits());
        }
        Value::Str(s) => {
            buf.put_u8(4);
            write_varint(buf, s.len() as u64);
            buf.put_slice(s.as_bytes());
        }
    }
}

/// Inverse of [`encode_value`].
pub fn decode_value(buf: &mut impl Buf) -> Result<Value, StorageError> {
    if !buf.has_remaining() {
        return Err(StorageError::Codec("truncated value".into()));
    }
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            if !buf.has_remaining() {
                return Err(StorageError::Codec("truncated bool".into()));
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        2 => Ok(Value::Int(unzigzag(read_varint(buf)?))),
        3 => {
            if buf.remaining() < 8 {
                return Err(StorageError::Codec("truncated double".into()));
            }
            Ok(Value::Double(f64::from_bits(buf.get_u64_le())))
        }
        4 => {
            let len = read_varint(buf)? as usize;
            if buf.remaining() < len {
                return Err(StorageError::Codec("truncated string".into()));
            }
            let mut bytes = vec![0u8; len];
            buf.copy_to_slice(&mut bytes);
            let s = String::from_utf8(bytes)
                .map_err(|e| StorageError::Codec(format!("invalid utf8: {e}")))?;
            Ok(Value::from(s))
        }
        t => Err(StorageError::Codec(format!("unknown value tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::int_row;

    #[test]
    fn varint_round_trip() {
        let mut buf = BytesMut::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            write_varint(&mut buf, v);
        }
        let mut b = buf.freeze();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            assert_eq!(read_varint(&mut b).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn int_relation_round_trip_and_compresses() {
        let schema = Schema::new(vec![("s", DataType::Int), ("d", DataType::Int)]);
        let rows: Vec<Row> = (0..1000).map(|i| int_row(&[i / 10, i % 10])).collect();
        let raw_size: usize = rows.iter().map(Row::size_bytes).sum();
        let c = CompressedRelation::compress(&schema, &rows);
        assert!(
            c.size_bytes() * 4 < raw_size,
            "compressed {} vs raw {raw_size}",
            c.size_bytes()
        );
        let mut back = c.decompress().unwrap();
        back.sort_unstable();
        let mut orig = rows;
        orig.sort_unstable();
        assert_eq!(back, orig);
    }

    #[test]
    fn mixed_relation_round_trip() {
        let schema = Schema::new(vec![("m", DataType::Str), ("p", DataType::Double)]);
        let rows = vec![
            Row::new(vec![Value::from("alice"), Value::Double(1.5)]),
            Row::new(vec![Value::Null, Value::Double(-0.25)]),
            Row::new(vec![Value::from(""), Value::Double(f64::INFINITY)]),
        ];
        let c = CompressedRelation::compress(&schema, &rows);
        assert_eq!(c.decompress().unwrap(), rows);
    }

    #[test]
    fn corrupt_payload_is_an_error() {
        let schema = Schema::new(vec![("s", DataType::Str)]);
        let rows = vec![Row::new(vec![Value::from("hello")])];
        let c = CompressedRelation::compress(&schema, &rows);
        let truncated = CompressedRelation {
            schema: c.schema.clone(),
            payload: c.payload.slice(0..c.payload.len() - 2),
            rows: c.rows,
            delta_encoded: c.delta_encoded,
        };
        assert!(truncated.decompress().is_err());
    }
}
