//! Checksummed write-ahead log for crash-consistent durability.
//!
//! When a context is opened with a data directory, every catalog mutation
//! (CREATE/INSERT/DELETE under the existing `version`/`rewrite_version` bump
//! discipline) and every materialized-view lifecycle event (create/publish/
//! drop, warm state included) appends one record here *before* the operation
//! is acknowledged. On restart, replaying the latest snapshot plus this log's
//! tail reconstructs the exact pre-crash catalog and view registry — same
//! rows, same version counters, same warm fixpoint blobs.
//!
//! ## On-disk format
//!
//! The log is a sequence of self-delimiting frames:
//!
//! ```text
//! frame   := varint payload_len | payload | crc32(payload) as u32 LE
//! payload := u8 record_tag | record fields (varint/tagged-value codec)
//! ```
//!
//! Appends are serialized under [`LockRank::DurabilityLog`] — journaling
//! happens *inside* the catalog's `tables` write section, so log order is
//! exactly apply order — and each append is `fsync`ed before it returns.
//!
//! ## Torn tails vs corruption
//!
//! A process death can tear at most the **last** frame, so replay draws a
//! sharp line: a frame that fails to parse and *touches end-of-file* is a
//! torn tail — the file is truncated at the frame start and recovery
//! continues with everything before it; a CRC/shape failure on a frame with
//! more bytes after it cannot be explained by a crash and surfaces as
//! [`StorageError::Corrupt`] with the offending byte range, never as a
//! silently wrong catalog.
//!
//! Snapshot publication (encode → temp file → `fsync` → atomic rename →
//! directory `fsync` → log truncation) also lives on this type so every
//! durable write in the crate goes through the two fsync-disciplined modules
//! the `RL0005` lint allows. Each boundary consults the [`CrashInjector`]
//! first, which is how the `reproduce crash-soak` gate simulates death at
//! every enumerated point.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::codec::{decode_value, encode_value, read_varint, write_varint};
use crate::crashpoint::CrashInjector;
use crate::error::StorageError;
use crate::row::Row;
use crate::schema::{DataType, Field, Schema};
use crate::sync::{LockRank, RankedMutex};

/// WAL file name inside a data directory.
pub const WAL_FILE: &str = "wal.log";
/// Published snapshot file name inside a data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// In-flight snapshot temp file name (stray copies mean a crashed publish).
pub const SNAPSHOT_TEMP_FILE: &str = "snapshot.tmp";

// --------------------------------------------------------------------
// CRC32 (IEEE), table-driven; no external crate in the offline build.
// --------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `bytes` (the per-frame and whole-snapshot checksum).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// --------------------------------------------------------------------
// Record types
// --------------------------------------------------------------------

/// Full image of one base table: schema, rows, and the exact version pair it
/// carried when recorded, so recovery reproduces versions bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct TableImage {
    /// Lower-cased table name (the catalog key).
    pub name: String,
    /// Column schema.
    pub schema: Schema,
    /// Every row, in storage order.
    pub rows: Vec<Row>,
    /// The table's `version` counter at record time.
    pub version: u64,
    /// The table's `rewrite_version` counter at record time.
    pub rewrite_version: u64,
}

/// One dependency edge of a materialized view (mirrors `core::matview`'s
/// `DepRecord`; duplicated here so storage stays dependency-light).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDep {
    /// Base-table name the view reads.
    pub table: String,
    /// `version` observed when the view was (re)built.
    pub version: u64,
    /// `rewrite_version` observed when the view was (re)built.
    pub rewrite_version: u64,
    /// Row count observed (the append-delta low-water mark).
    pub len: u64,
}

/// Full image of one materialized view's registry entry plus its warm
/// fixpoint blobs. The defining SQL is stored as the complete source script
/// it arrived in; recovery re-parses and re-analyzes it against the restored
/// catalog (the AST has no renderer, and re-analysis also restores planner
/// state like `CREATE VIEW` definitions the statement depends on).
#[derive(Debug, Clone, PartialEq)]
pub struct ViewImage {
    /// Lower-cased view name (registry key).
    pub key: String,
    /// The full source script containing the defining statement.
    pub sql: String,
    /// Registry version (bumped per refresh).
    pub version: u64,
    /// Whether the view is incremental-maintenance eligible.
    pub eligible: bool,
    /// Why not, when ineligible.
    pub ineligible_reason: Option<String>,
    /// Human-readable last-refresh mode ("none", "incremental", ...).
    pub last_refresh: String,
    /// Warm-state bytes retained for this view.
    pub retained_bytes: u64,
    /// Base-table versions the current contents were computed from.
    pub deps: Vec<ViewDep>,
    /// Warm fixpoint blobs, `(warmstore key, canonical encoded rows)`.
    pub warm: Vec<(String, Vec<u8>)>,
}

/// One durability log record. Every variant carries the versions minted when
/// the operation originally ran, so replay is idempotent (a record whose
/// version the in-memory state already reached is a no-op — the window where
/// a snapshot is renamed but the log not yet truncated replays harmlessly).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `CREATE TABLE` (or recovery re-registration): full table image.
    Register(TableImage),
    /// `INSERT`: appended rows and the version the append minted.
    Insert {
        /// Lower-cased table name.
        name: String,
        /// The appended rows (the delta, not the whole table).
        rows: Vec<Row>,
        /// `version` after the append (`rewrite_version` is unchanged).
        version: u64,
    },
    /// Whole-table rewrite (`DELETE`, replace, view publish): full image.
    Replace(TableImage),
    /// Table dropped.
    Drop {
        /// Lower-cased table name.
        name: String,
    },
    /// Materialized-view create or refresh publish: full registry image.
    ViewPut(ViewImage),
    /// Materialized view dropped.
    ViewDrop {
        /// Lower-cased view name.
        key: String,
    },
}

// --------------------------------------------------------------------
// Payload codec
// --------------------------------------------------------------------

fn write_string(buf: &mut BytesMut, s: &str) {
    write_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn read_string(buf: &mut impl Buf) -> Result<String, StorageError> {
    let len = read_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(StorageError::Codec("truncated string".into()));
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|e| StorageError::Codec(format!("invalid utf8: {e}")))
}

fn write_bytes(buf: &mut BytesMut, b: &[u8]) {
    write_varint(buf, b.len() as u64);
    buf.put_slice(b);
}

fn read_bytes(buf: &mut impl Buf) -> Result<Vec<u8>, StorageError> {
    let len = read_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(StorageError::Codec("truncated blob".into()));
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    Ok(bytes)
}

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Int => 0,
        DataType::Double => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
        DataType::Any => 4,
    }
}

fn dtype_from_tag(t: u8) -> Result<DataType, StorageError> {
    match t {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Double),
        2 => Ok(DataType::Str),
        3 => Ok(DataType::Bool),
        4 => Ok(DataType::Any),
        other => Err(StorageError::Codec(format!(
            "unknown data type tag {other}"
        ))),
    }
}

fn write_schema(buf: &mut BytesMut, schema: &Schema) {
    write_varint(buf, schema.arity() as u64);
    for f in schema.fields() {
        write_string(buf, &f.name);
        buf.put_u8(dtype_tag(f.data_type));
    }
}

fn read_schema(buf: &mut impl Buf) -> Result<Schema, StorageError> {
    let n = read_varint(buf)? as usize;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let name = read_string(buf)?;
        if !buf.has_remaining() {
            return Err(StorageError::Codec("truncated schema".into()));
        }
        fields.push(Field::new(name, dtype_from_tag(buf.get_u8())?));
    }
    Ok(Schema::from_fields(fields))
}

fn write_rows(buf: &mut BytesMut, rows: &[Row]) {
    write_varint(buf, rows.len() as u64);
    for row in rows {
        write_varint(buf, row.arity() as u64);
        for v in row.values() {
            encode_value(buf, v);
        }
    }
}

fn read_rows(buf: &mut impl Buf) -> Result<Vec<Row>, StorageError> {
    let n = read_varint(buf)? as usize;
    let mut rows = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let arity = read_varint(buf)? as usize;
        let mut values = Vec::with_capacity(arity.min(1 << 10));
        for _ in 0..arity {
            values.push(decode_value(buf)?);
        }
        rows.push(Row::new(values));
    }
    Ok(rows)
}

pub(crate) fn write_table_image(buf: &mut BytesMut, img: &TableImage) {
    write_string(buf, &img.name);
    write_schema(buf, &img.schema);
    write_varint(buf, img.version);
    write_varint(buf, img.rewrite_version);
    write_rows(buf, &img.rows);
}

pub(crate) fn read_table_image(buf: &mut impl Buf) -> Result<TableImage, StorageError> {
    Ok(TableImage {
        name: read_string(buf)?,
        schema: read_schema(buf)?,
        version: read_varint(buf)?,
        rewrite_version: read_varint(buf)?,
        rows: read_rows(buf)?,
    })
}

pub(crate) fn write_view_image(buf: &mut BytesMut, img: &ViewImage) {
    write_string(buf, &img.key);
    write_string(buf, &img.sql);
    write_varint(buf, img.version);
    buf.put_u8(u8::from(img.eligible));
    match &img.ineligible_reason {
        Some(r) => {
            buf.put_u8(1);
            write_string(buf, r);
        }
        None => buf.put_u8(0),
    }
    write_string(buf, &img.last_refresh);
    write_varint(buf, img.retained_bytes);
    write_varint(buf, img.deps.len() as u64);
    for d in &img.deps {
        write_string(buf, &d.table);
        write_varint(buf, d.version);
        write_varint(buf, d.rewrite_version);
        write_varint(buf, d.len);
    }
    write_varint(buf, img.warm.len() as u64);
    for (key, blob) in &img.warm {
        write_string(buf, key);
        write_bytes(buf, blob);
    }
}

pub(crate) fn read_view_image(buf: &mut impl Buf) -> Result<ViewImage, StorageError> {
    let key = read_string(buf)?;
    let sql = read_string(buf)?;
    let version = read_varint(buf)?;
    if buf.remaining() < 2 {
        return Err(StorageError::Codec("truncated view image".into()));
    }
    let eligible = buf.get_u8() != 0;
    let ineligible_reason = match buf.get_u8() {
        0 => None,
        _ => Some(read_string(buf)?),
    };
    let last_refresh = read_string(buf)?;
    let retained_bytes = read_varint(buf)?;
    let ndeps = read_varint(buf)? as usize;
    let mut deps = Vec::with_capacity(ndeps.min(1 << 10));
    for _ in 0..ndeps {
        deps.push(ViewDep {
            table: read_string(buf)?,
            version: read_varint(buf)?,
            rewrite_version: read_varint(buf)?,
            len: read_varint(buf)?,
        });
    }
    let nwarm = read_varint(buf)? as usize;
    let mut warm = Vec::with_capacity(nwarm.min(1 << 10));
    for _ in 0..nwarm {
        warm.push((read_string(buf)?, read_bytes(buf)?));
    }
    Ok(ViewImage {
        key,
        sql,
        version,
        eligible,
        ineligible_reason,
        last_refresh,
        retained_bytes,
        deps,
        warm,
    })
}

impl WalRecord {
    /// Encode the record payload (tag + fields, no frame).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        match self {
            WalRecord::Register(img) => {
                buf.put_u8(1);
                write_table_image(&mut buf, img);
            }
            WalRecord::Insert {
                name,
                rows,
                version,
            } => {
                buf.put_u8(2);
                write_string(&mut buf, name);
                write_varint(&mut buf, *version);
                write_rows(&mut buf, rows);
            }
            WalRecord::Replace(img) => {
                buf.put_u8(3);
                write_table_image(&mut buf, img);
            }
            WalRecord::Drop { name } => {
                buf.put_u8(4);
                write_string(&mut buf, name);
            }
            WalRecord::ViewPut(img) => {
                buf.put_u8(5);
                write_view_image(&mut buf, img);
            }
            WalRecord::ViewDrop { key } => {
                buf.put_u8(6);
                write_string(&mut buf, key);
            }
        }
        buf.freeze().as_ref().to_vec()
    }

    /// Decode a payload produced by [`WalRecord::encode`], rejecting
    /// trailing bytes.
    ///
    /// # Errors
    /// [`StorageError::Codec`] on a truncated or malformed payload.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, StorageError> {
        let mut buf = Bytes::from(payload.to_vec());
        if !buf.has_remaining() {
            return Err(StorageError::Codec("empty wal record".into()));
        }
        let rec = match buf.get_u8() {
            1 => WalRecord::Register(read_table_image(&mut buf)?),
            2 => {
                let name = read_string(&mut buf)?;
                let version = read_varint(&mut buf)?;
                let rows = read_rows(&mut buf)?;
                WalRecord::Insert {
                    name,
                    rows,
                    version,
                }
            }
            3 => WalRecord::Replace(read_table_image(&mut buf)?),
            4 => WalRecord::Drop {
                name: read_string(&mut buf)?,
            },
            5 => WalRecord::ViewPut(read_view_image(&mut buf)?),
            6 => WalRecord::ViewDrop {
                key: read_string(&mut buf)?,
            },
            t => return Err(StorageError::Codec(format!("unknown wal record tag {t}"))),
        };
        if buf.has_remaining() {
            return Err(StorageError::Codec("trailing wal record bytes".into()));
        }
        Ok(rec)
    }

    /// Frame the record for the log: `varint len | payload | crc32`.
    #[must_use]
    pub fn frame(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut buf = BytesMut::with_capacity(payload.len() + 9);
        write_varint(&mut buf, payload.len() as u64);
        buf.put_slice(&payload);
        buf.put_slice(&crc32(&payload).to_le_bytes());
        buf.freeze().as_ref().to_vec()
    }
}

// --------------------------------------------------------------------
// Replay
// --------------------------------------------------------------------

/// What replaying a log produced: the decoded records plus whether a torn
/// tail was cut off (byte offset the file was truncated at).
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Records in append order.
    pub records: Vec<WalRecord>,
    /// Offset a torn tail was truncated at, if one was found.
    pub truncated_at: Option<u64>,
    /// Valid log bytes (the file length after any tail truncation).
    pub bytes: u64,
}

/// Parse an LEB128 varint at `pos` in `bytes`, returning `(value, width)`
/// or `None` if it runs off the end or overflows (the offline `bytes` shim
/// implements `Buf` only for owned buffers, so replay parses from the raw
/// slice).
fn read_varint_at(bytes: &[u8], pos: usize) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (i, &b) in bytes[pos..].iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
    }
    None
}

/// Replay the log at `path` (missing file = empty log). A frame that fails
/// to parse and touches end-of-file is treated as a torn tail: the file is
/// truncated at the frame start and the records before it are returned. A
/// bad frame with bytes *after* it is real corruption.
///
/// # Errors
/// [`StorageError::Corrupt`] for a mid-log CRC/shape failure (with the
/// offending byte range), [`StorageError::Io`] on filesystem failure.
pub fn replay(path: &Path) -> Result<ReplayOutcome, StorageError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(ReplayOutcome {
                records: Vec::new(),
                truncated_at: None,
                bytes: 0,
            })
        }
        Err(e) => return Err(StorageError::Io(e)),
    };
    let total = bytes.len();
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut torn: Option<u64> = None;
    while pos < total {
        let frame_start = pos;
        let Some((payload_len, header_len)) = read_varint_at(&bytes, pos) else {
            // A length varint that runs off the end of the file can only be
            // a torn final frame (valid frames never start with an overlong
            // varint — lengths are bounded by the file size).
            torn = Some(frame_start as u64);
            break;
        };
        let payload_len = payload_len as usize;
        let frame_end = frame_start + header_len + payload_len + 4;
        if frame_end > total || payload_len > total {
            torn = Some(frame_start as u64);
            break;
        }
        let payload = &bytes[frame_start + header_len..frame_start + header_len + payload_len];
        let stored = u32::from_le_bytes(
            bytes[frame_end - 4..frame_end]
                .try_into()
                .expect("4 crc bytes"),
        );
        if crc32(payload) != stored {
            if frame_end == total {
                torn = Some(frame_start as u64);
                break;
            }
            return Err(StorageError::Corrupt {
                offset: frame_start as u64,
                detail: format!(
                    "crc mismatch in wal frame at bytes {frame_start}..{frame_end} \
                     (stored {stored:#010x}, computed {:#010x})",
                    crc32(payload)
                ),
            });
        }
        match WalRecord::decode(payload) {
            Ok(rec) => records.push(rec),
            // The payload passed its CRC, so a decode failure is structural
            // corruption regardless of position — a torn write cannot
            // produce a checksummed-but-malformed record.
            Err(e) => {
                return Err(StorageError::Corrupt {
                    offset: frame_start as u64,
                    detail: format!(
                        "undecodable wal frame at bytes {frame_start}..{frame_end}: {e}"
                    ),
                })
            }
        }
        pos = frame_end;
    }
    if let Some(at) = torn {
        let f = fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(at)?;
        f.sync_data()?;
    }
    // When a tail was torn, the loop broke with `pos` still at the frame
    // start, which is exactly where the file was truncated.
    Ok(ReplayOutcome {
        records,
        truncated_at: torn,
        bytes: pos as u64,
    })
}

// --------------------------------------------------------------------
// The appender
// --------------------------------------------------------------------

/// Counters snapshotted for `\durability` / the status API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since the last snapshot (current log tail).
    pub records: u64,
    /// Bytes in the current log tail.
    pub bytes: u64,
    /// Snapshots published over this appender's lifetime.
    pub snapshots: u64,
    /// Size of the most recently published snapshot.
    pub last_snapshot_bytes: u64,
}

/// The fsync-disciplined appender owning a data directory's `wal.log` and
/// snapshot publication. One instance per open context; catalog and view
/// registry journal through it from inside their own critical sections
/// ([`LockRank::CatalogTables`] < [`LockRank::DurabilityLog`], so the
/// nesting is legal under the rank checker).
pub struct Wal {
    inner: RankedMutex<WalFile>,
    dir: PathBuf,
    records: AtomicU64,
    bytes: AtomicU64,
    snapshots: AtomicU64,
    last_snapshot_bytes: AtomicU64,
    injector: CrashInjector,
}

struct WalFile {
    file: fs::File,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("records", &self.records.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// Open (creating if needed) `dir/wal.log` for appending. Counters
    /// start from the file's current state: recovery truncates the log
    /// before attaching an appender, so they normally start at zero.
    ///
    /// # Errors
    /// [`StorageError::Io`] if the directory or file cannot be created.
    pub fn open(dir: &Path, injector: CrashInjector) -> Result<Wal, StorageError> {
        fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        let len = file.metadata()?.len();
        Ok(Wal {
            inner: RankedMutex::new(LockRank::DurabilityLog, WalFile { file }),
            dir: dir.to_path_buf(),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(len),
            snapshots: AtomicU64::new(0),
            last_snapshot_bytes: AtomicU64::new(0),
            injector,
        })
    }

    /// The data directory this appender owns.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records appended since the last snapshot (the compaction trigger and
    /// the counter the snapshot race check compares).
    pub fn record_count(&self) -> u64 {
        self.records.load(Ordering::SeqCst)
    }

    /// Current counters for status surfaces.
    pub fn stats(&self) -> WalStats {
        WalStats {
            records: self.records.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            last_snapshot_bytes: self.last_snapshot_bytes.load(Ordering::Relaxed),
        }
    }

    /// Append one record: frame, write, `fsync`. Returns only after the
    /// record is durable (or a crashpoint simulated death at one of the
    /// three boundaries — before the write, mid-write leaving a torn frame,
    /// or after the fsync).
    ///
    /// # Errors
    /// [`StorageError::InjectedCrash`] when an armed crashpoint fires,
    /// [`StorageError::Io`] on real filesystem failure.
    pub fn append(&self, record: &WalRecord) -> Result<(), StorageError> {
        let frame = record.frame();
        let mut inner = self.inner.lock();
        if self.injector.fire("wal-append-pre") {
            return Err(StorageError::InjectedCrash("wal-append-pre".into()));
        }
        if self.injector.fire("wal-append-torn") {
            // Simulate death mid-write: half a frame reaches the file.
            inner.file.write_all(&frame[..frame.len() / 2])?;
            inner.file.sync_data()?;
            return Err(StorageError::InjectedCrash("wal-append-torn".into()));
        }
        inner.file.write_all(&frame)?;
        inner.file.sync_data()?;
        self.records.fetch_add(1, Ordering::SeqCst);
        self.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        if self.injector.fire("wal-append-post") {
            return Err(StorageError::InjectedCrash("wal-append-post".into()));
        }
        Ok(())
    }

    /// Force pending log bytes to disk (appends already fsync; this is the
    /// drain hook for shutdown paths and is a no-op on a quiet log).
    ///
    /// # Errors
    /// [`StorageError::Io`] on filesystem failure.
    pub fn flush(&self) -> Result<(), StorageError> {
        self.inner.lock().file.sync_data()?;
        Ok(())
    }

    /// Publish a snapshot: write `encoded` to `snapshot.tmp`, `fsync`,
    /// rename over `snapshot.bin`, `fsync` the directory, then truncate the
    /// log. The whole sequence holds the appender lock, and it runs only if
    /// the record count still equals `expected_records` — the caller
    /// collected its state *without* this lock (catalog locks rank below
    /// it), so a count mismatch means a mutation landed in between and the
    /// collected state may be stale; the caller re-collects and retries.
    ///
    /// Returns whether the snapshot was published.
    ///
    /// # Errors
    /// [`StorageError::InjectedCrash`] when an armed crashpoint fires at one
    /// of the five write/rename/truncate boundaries, [`StorageError::Io`] on
    /// real filesystem failure.
    pub fn publish_snapshot(
        &self,
        encoded: &[u8],
        expected_records: u64,
    ) -> Result<bool, StorageError> {
        let inner = self.inner.lock();
        if self.records.load(Ordering::SeqCst) != expected_records {
            return Ok(false);
        }
        let tmp = self.dir.join(SNAPSHOT_TEMP_FILE);
        let published = self.dir.join(SNAPSHOT_FILE);
        if self.injector.fire("snapshot-temp-pre") {
            return Err(StorageError::InjectedCrash("snapshot-temp-pre".into()));
        }
        if self.injector.fire("snapshot-temp-torn") {
            // Death mid-write: a stray half-written temp file remains for
            // recovery to sweep up (the leak check asserts it does).
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&encoded[..encoded.len() / 2])?;
            f.sync_data()?;
            return Err(StorageError::InjectedCrash("snapshot-temp-torn".into()));
        }
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(encoded)?;
            f.sync_data()?;
        }
        if self.injector.fire("snapshot-temp-written") {
            return Err(StorageError::InjectedCrash("snapshot-temp-written".into()));
        }
        fs::rename(&tmp, &published)?;
        sync_dir(&self.dir)?;
        if self.injector.fire("snapshot-renamed") {
            // Snapshot is live but the log still holds the same operations;
            // replay is version-guarded, so recovering from here is exact.
            return Err(StorageError::InjectedCrash("snapshot-renamed".into()));
        }
        inner.file.set_len(0)?;
        inner.file.sync_data()?;
        self.records.store(0, Ordering::SeqCst);
        self.bytes.store(0, Ordering::Relaxed);
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        self.last_snapshot_bytes
            .store(encoded.len() as u64, Ordering::Relaxed);
        if self.injector.fire("snapshot-truncated") {
            return Err(StorageError::InjectedCrash("snapshot-truncated".into()));
        }
        Ok(true)
    }
}

/// `fsync` a directory so a rename within it is durable (best effort on
/// platforms where directories cannot be opened for sync).
fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    match fs::File::open(dir) {
        Ok(f) => {
            f.sync_all().ok();
            Ok(())
        }
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crashpoint::CrashSpec;
    use crate::row::int_row;
    use crate::value::Value;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rasql-wal-test-{tag}-p{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("test dir");
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Register(TableImage {
                name: "edge".into(),
                schema: Schema::new(vec![("src", DataType::Int), ("dst", DataType::Int)]),
                rows: vec![int_row(&[1, 2]), int_row(&[2, 3])],
                version: 1,
                rewrite_version: 1,
            }),
            WalRecord::Insert {
                name: "edge".into(),
                rows: vec![int_row(&[3, 4])],
                version: 2,
            },
            WalRecord::ViewPut(ViewImage {
                key: "paths".into(),
                sql: "CREATE MATERIALIZED VIEW paths AS SELECT 1;".into(),
                version: 3,
                eligible: true,
                ineligible_reason: None,
                last_refresh: "incremental".into(),
                retained_bytes: 17,
                deps: vec![ViewDep {
                    table: "edge".into(),
                    version: 2,
                    rewrite_version: 1,
                    len: 3,
                }],
                warm: vec![("mv/paths/0".into(), vec![0, 1, 2, 255])],
            }),
            WalRecord::Replace(TableImage {
                name: "mixed".into(),
                schema: Schema::new(vec![("s", DataType::Str), ("d", DataType::Double)]),
                rows: vec![Row::new(vec![Value::from("a"), Value::Double(0.5)])],
                version: 4,
                rewrite_version: 4,
            }),
            WalRecord::Drop {
                name: "edge".into(),
            },
            WalRecord::ViewDrop {
                key: "paths".into(),
            },
        ]
    }

    #[test]
    fn records_round_trip_through_payload_codec() {
        for rec in sample_records() {
            let back = WalRecord::decode(&rec.encode()).expect("decode");
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn append_and_replay_round_trips() {
        let dir = tmp_dir("roundtrip");
        let wal = Wal::open(&dir, CrashInjector::none()).expect("open");
        for rec in sample_records() {
            wal.append(&rec).expect("append");
        }
        assert_eq!(wal.record_count(), sample_records().len() as u64);
        let outcome = replay(&dir.join(WAL_FILE)).expect("replay");
        assert_eq!(outcome.records, sample_records());
        assert!(outcome.truncated_at.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncates_and_keeps_prefix() {
        let dir = tmp_dir("torn");
        let wal = Wal::open(&dir, CrashInjector::none()).expect("open");
        let recs = sample_records();
        for rec in &recs {
            wal.append(rec).expect("append");
        }
        drop(wal);
        let path = dir.join(WAL_FILE);
        let full = fs::read(&path).expect("read");
        // Chop three bytes off the final frame: a torn tail.
        let f = fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("open");
        f.set_len(full.len() as u64 - 3).expect("truncate");
        drop(f);
        let outcome = replay(&path).expect("replay");
        assert_eq!(outcome.records, recs[..recs.len() - 1]);
        assert!(outcome.truncated_at.is_some());
        // The file was physically truncated at the frame start; a second
        // replay is clean.
        let again = replay(&path).expect("replay again");
        assert_eq!(again.records, recs[..recs.len() - 1]);
        assert!(again.truncated_at.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_is_a_typed_spanned_error() {
        let dir = tmp_dir("corrupt");
        let wal = Wal::open(&dir, CrashInjector::none()).expect("open");
        for rec in sample_records() {
            wal.append(&rec).expect("append");
        }
        drop(wal);
        let path = dir.join(WAL_FILE);
        let mut bytes = fs::read(&path).expect("read");
        // Flip a payload bit in the FIRST frame (well before EOF).
        bytes[3] ^= 0x40;
        fs::write(&path, &bytes).expect("write");
        let err = replay(&path).expect_err("must be corrupt");
        match err {
            StorageError::Corrupt { offset, detail } => {
                assert_eq!(offset, 0, "first frame starts at 0");
                assert!(detail.contains("crc mismatch"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_append_crashpoint_leaves_recoverable_log() {
        let dir = tmp_dir("crash-torn");
        {
            let wal = Wal::open(&dir, CrashInjector::none()).expect("open");
            wal.append(&sample_records()[0]).expect("append");
        }
        // Arm the injector so the very next boundary (wal-append-pre of the
        // second append) survives and the torn site fires on hit index 1.
        let wal = Wal::open(&dir, CrashInjector::new(CrashSpec::at(1))).expect("open");
        let err = wal.append(&sample_records()[1]).expect_err("torn crash");
        assert!(matches!(err, StorageError::InjectedCrash(ref s) if s == "wal-append-torn"));
        drop(wal);
        let outcome = replay(&dir.join(WAL_FILE)).expect("replay");
        assert_eq!(outcome.records, sample_records()[..1]);
        assert!(outcome.truncated_at.is_some(), "half frame must be cut");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn publish_snapshot_truncates_log_and_respects_race_guard() {
        let dir = tmp_dir("snapshot");
        let wal = Wal::open(&dir, CrashInjector::none()).expect("open");
        wal.append(&sample_records()[0]).expect("append");
        let count = wal.record_count();
        // Stale expectation: refused.
        assert!(!wal
            .publish_snapshot(b"payload", count + 1)
            .expect("guarded publish"));
        // Current expectation: published, log truncated, counters reset.
        assert!(wal.publish_snapshot(b"payload", count).expect("publish"));
        assert_eq!(wal.record_count(), 0);
        assert_eq!(
            fs::read(dir.join(SNAPSHOT_FILE)).expect("snapshot"),
            b"payload"
        );
        assert_eq!(fs::read(dir.join(WAL_FILE)).expect("wal").len(), 0);
        assert!(!dir.join(SNAPSHOT_TEMP_FILE).exists(), "temp must be gone");
        assert_eq!(wal.stats().snapshots, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }
}
