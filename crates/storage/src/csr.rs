//! CSR (compressed sparse row) edge encoding with dense vertex-id remapping.
//!
//! The specialized fixpoint kernels (paper §7.2/§7.3) broadcast the static
//! edge relation once per query as the "compressed base relation" and then
//! scan deltas against its adjacency lists without materializing intermediate
//! rows. [`CsrGraph`] is that broadcast payload: original (arbitrary) `Int`
//! vertex ids are remapped to dense `u32` ids so aggregate state can live in
//! flat `Vec` slabs, and each vertex's hash partition is precomputed with the
//! same [`hash_partition`] function the generic path uses — the kernel and
//! interpreter therefore route every contribution to the same partition.
//!
//! The build is *fallible by design*: any value that is not the exact type
//! the caller declared (a `Str` vertex id, a `Double` weight in an `Int`
//! column) aborts construction and the engine falls back to the generic
//! interpreter, preserving bit-identical semantics.

use crate::hasher::FxHashMap;
use crate::partition::hash_partition;
use crate::row::Row;
use crate::value::Value;

/// How edge weights are extracted while building a [`CsrGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrWeight {
    /// The kernel needs no weight column (reachability, connected
    /// components, hop counting with a constant increment).
    None,
    /// `i64` weights read from the given edge column; any non-`Int` value
    /// aborts the build.
    Int {
        /// Edge-relation column holding the weight.
        col: usize,
    },
    /// `f64` weights read from the given edge column. When `promote_int` is
    /// true, `Int` values are widened with `as f64` — exactly the promotion
    /// [`Value::add`] performs — otherwise any non-`Double` value aborts the
    /// build (required for `least`-style combiners where the generic path
    /// would return the un-promoted `Int`).
    Float {
        /// Edge-relation column holding the weight.
        col: usize,
        /// Allow `Int` weights, widening them to `f64`.
        promote_int: bool,
    },
}

/// A static edge relation in CSR form with dense vertex ids.
///
/// Adjacency for dense vertex `v` is `targets[offsets[v]..offsets[v + 1]]`,
/// with the parallel weight slab (when present) indexed identically. All
/// fields are public so the monomorphized kernels can index them directly in
/// their inner loops.
#[derive(Debug, Clone, Default)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` bounds vertex `v`'s adjacency slice.
    pub offsets: Vec<usize>,
    /// Dense destination ids, grouped by source.
    pub targets: Vec<u32>,
    /// `i64` edge weights parallel to `targets` (empty unless built with
    /// [`CsrWeight::Int`]).
    pub weights_i: Vec<i64>,
    /// `f64` edge weights parallel to `targets` (empty unless built with
    /// [`CsrWeight::Float`]).
    pub weights_f: Vec<f64>,
    /// Original `Int` id for each dense vertex id.
    pub orig: Vec<i64>,
    /// Precomputed hash partition of each vertex's *original* id — identical
    /// to what the generic path computes for a single-column `Int` key.
    pub part_of: Vec<u32>,
    remap: FxHashMap<i64, u32>,
}

impl CsrGraph {
    /// Build a CSR graph from edge rows plus extra seed vertices (base-case
    /// keys that may have no outgoing edges). Returns `None` if any vertex
    /// id is not `Value::Int` or a weight violates `weight` — the caller
    /// falls back to the generic interpreter.
    pub fn build(
        edges: &[Row],
        src_col: usize,
        dst_col: usize,
        weight: CsrWeight,
        extra_vertices: impl IntoIterator<Item = i64>,
        partitions: usize,
    ) -> Option<CsrGraph> {
        let mut remap: FxHashMap<i64, u32> = FxHashMap::default();
        let mut orig: Vec<i64> = Vec::new();
        let mut intern = |id: i64, orig: &mut Vec<i64>| -> Option<u32> {
            if let Some(&d) = remap.get(&id) {
                return Some(d);
            }
            let d = u32::try_from(orig.len()).ok()?;
            remap.insert(id, d);
            orig.push(id);
            Some(d)
        };

        // Intern every endpoint (and seed vertex) first so ids are stable,
        // extracting typed (src, dst, weight) triples as we go.
        let mut tri_i: Vec<(u32, u32, i64)> = Vec::new();
        let mut tri_f: Vec<(u32, u32, f64)> = Vec::new();
        let mut tri: Vec<(u32, u32)> = Vec::new();
        for row in edges {
            let (Value::Int(s), Value::Int(d)) = (row.get(src_col), row.get(dst_col)) else {
                return None;
            };
            let s = intern(*s, &mut orig)?;
            let d = intern(*d, &mut orig)?;
            match weight {
                CsrWeight::None => tri.push((s, d)),
                CsrWeight::Int { col } => match row.get(col) {
                    Value::Int(w) => tri_i.push((s, d, *w)),
                    _ => return None,
                },
                CsrWeight::Float { col, promote_int } => match row.get(col) {
                    Value::Double(w) => tri_f.push((s, d, *w)),
                    #[allow(clippy::cast_precision_loss)]
                    Value::Int(w) if promote_int => tri_f.push((s, d, *w as f64)),
                    _ => return None,
                },
            }
        }
        for id in extra_vertices {
            intern(id, &mut orig)?;
        }

        let n = orig.len();
        let mut offsets = vec![0usize; n + 1];
        let srcs = |i: usize| -> u32 {
            match weight {
                CsrWeight::None => tri[i].0,
                CsrWeight::Int { .. } => tri_i[i].0,
                CsrWeight::Float { .. } => tri_f[i].0,
            }
        };
        let m = edges.len();
        for i in 0..m {
            offsets[srcs(i) as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; m];
        let mut weights_i = Vec::new();
        let mut weights_f = Vec::new();
        match weight {
            CsrWeight::None => {
                for &(s, d) in &tri {
                    let at = cursor[s as usize];
                    targets[at] = d;
                    cursor[s as usize] += 1;
                }
            }
            CsrWeight::Int { .. } => {
                weights_i = vec![0i64; m];
                for &(s, d, w) in &tri_i {
                    let at = cursor[s as usize];
                    targets[at] = d;
                    weights_i[at] = w;
                    cursor[s as usize] += 1;
                }
            }
            CsrWeight::Float { .. } => {
                weights_f = vec![0f64; m];
                for &(s, d, w) in &tri_f {
                    let at = cursor[s as usize];
                    targets[at] = d;
                    weights_f[at] = w;
                    cursor[s as usize] += 1;
                }
            }
        }

        let parts = partitions.max(1);
        let part_of = orig
            .iter()
            .map(|&id| {
                #[allow(clippy::cast_possible_truncation)]
                let p = hash_partition(&[&Value::Int(id)], parts) as u32;
                p
            })
            .collect();

        Some(CsrGraph {
            offsets,
            targets,
            weights_i,
            weights_f,
            orig,
            part_of,
            remap,
        })
    }

    /// Number of (dense) vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.orig.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Dense id of an original vertex id, if the vertex is known.
    #[inline]
    pub fn dense_id(&self, orig_id: i64) -> Option<u32> {
        self.remap.get(&orig_id).copied()
    }

    /// Original id of a dense vertex id.
    #[inline]
    pub fn orig_id(&self, dense: u32) -> i64 {
        self.orig[dense as usize]
    }

    /// Adjacency slice bounds for dense vertex `v`.
    #[inline]
    pub fn adjacency(&self, v: u32) -> std::ops::Range<usize> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// Approximate in-memory footprint, charged as the broadcast payload.
    pub fn size_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * 4
            + self.weights_i.len() * 8
            + self.weights_f.len() * 8
            + self.orig.len() * 8
            + self.part_of.len() * 4
            + self.remap.len() * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::int_row;

    fn edge_rows(edges: &[(i64, i64, i64)]) -> Vec<Row> {
        edges.iter().map(|&(s, d, w)| int_row(&[s, d, w])).collect()
    }

    #[test]
    fn builds_adjacency_and_remap() {
        let rows = edge_rows(&[(10, 20, 1), (10, 30, 2), (30, 20, 3)]);
        let g = CsrGraph::build(&rows, 0, 1, CsrWeight::Int { col: 2 }, [], 4).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        let v10 = g.dense_id(10).unwrap();
        let adj = g.adjacency(v10);
        assert_eq!(adj.len(), 2);
        let mut out: Vec<(i64, i64)> = adj
            .map(|i| (g.orig_id(g.targets[i]), g.weights_i[i]))
            .collect();
        out.sort_unstable();
        assert_eq!(out, vec![(20, 1), (30, 2)]);
        assert!(g.dense_id(99).is_none());
    }

    #[test]
    fn seeds_isolated_vertices() {
        let rows = edge_rows(&[(1, 2, 0)]);
        let g = CsrGraph::build(&rows, 0, 1, CsrWeight::None, [7, 1], 2).unwrap();
        assert_eq!(g.vertex_count(), 3);
        let v7 = g.dense_id(7).unwrap();
        assert!(g.adjacency(v7).is_empty());
    }

    #[test]
    fn partition_matches_generic_hash() {
        let rows = edge_rows(&[(5, 6, 0), (6, 7, 0)]);
        let g = CsrGraph::build(&rows, 0, 1, CsrWeight::None, [], 8).unwrap();
        for (dense, &id) in g.orig.iter().enumerate() {
            let expect = hash_partition(&[&Value::Int(id)], 8);
            assert_eq!(g.part_of[dense] as usize, expect);
        }
    }

    #[test]
    fn rejects_type_violations() {
        let mut rows = edge_rows(&[(1, 2, 3)]);
        rows.push(Row::new(vec![
            Value::str("x"),
            Value::Int(2),
            Value::Int(1),
        ]));
        assert!(CsrGraph::build(&rows, 0, 1, CsrWeight::None, [], 2).is_none());

        let rows = vec![Row::new(vec![
            Value::Int(1),
            Value::Int(2),
            Value::Double(1.5),
        ])];
        assert!(CsrGraph::build(&rows, 0, 1, CsrWeight::Int { col: 2 }, [], 2).is_none());
        // Float weight accepts Double, and Int only when promotion is on.
        assert!(CsrGraph::build(
            &rows,
            0,
            1,
            CsrWeight::Float {
                col: 2,
                promote_int: false
            },
            [],
            2
        )
        .is_some());
        let int_w = edge_rows(&[(1, 2, 3)]);
        assert!(CsrGraph::build(
            &int_w,
            0,
            1,
            CsrWeight::Float {
                col: 2,
                promote_int: false
            },
            [],
            2
        )
        .is_none());
        assert!(CsrGraph::build(
            &int_w,
            0,
            1,
            CsrWeight::Float {
                col: 2,
                promote_int: true
            },
            [],
            2
        )
        .is_some());
    }
}
