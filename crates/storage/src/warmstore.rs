//! Warm-state store: retained converged fixpoint state for materialized
//! views.
//!
//! The incremental view-maintenance subsystem (`core::matview`) keeps the
//! converged recursive-view rows of every materialized view resident so a
//! refresh can resume semi-naive evaluation from them instead of
//! recomputing from scratch. This store holds that state as compact
//! encoded-row blobs keyed by `"view-name/clique-view"` and accounts for
//! the total retained bytes (surfaced as a metrics gauge and charged
//! against the memory governor during refresh).

use crate::codec::{decode_value, encode_value, read_varint, write_varint};
use crate::error::StorageError;
use crate::row::Row;
use crate::sync::{LockRank, RankedRwLock};
use bytes::{Buf, Bytes, BytesMut};
use std::collections::BTreeMap;

/// Encode rows into a compact self-delimiting blob (varint row count and
/// arity, then tagged values).
pub fn encode_warm_rows(rows: &[Row]) -> Bytes {
    let mut buf = BytesMut::new();
    write_varint(&mut buf, rows.len() as u64);
    write_varint(&mut buf, rows.first().map_or(0, Row::arity) as u64);
    for row in rows {
        for v in row.values() {
            encode_value(&mut buf, v);
        }
    }
    buf.freeze()
}

/// Inverse of [`encode_warm_rows`].
pub fn decode_warm_rows(blob: &Bytes) -> Result<Vec<Row>, StorageError> {
    let mut buf = blob.clone();
    let n = read_varint(&mut buf)? as usize;
    let arity = read_varint(&mut buf)? as usize;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(decode_value(&mut buf)?);
        }
        rows.push(Row::new(values));
    }
    if buf.has_remaining() {
        return Err(StorageError::Codec("trailing warm-state bytes".into()));
    }
    Ok(rows)
}

/// A thread-safe store of encoded warm-state blobs with byte accounting.
pub struct WarmStore {
    blobs: RankedRwLock<BTreeMap<String, Bytes>>,
}

impl Default for WarmStore {
    fn default() -> Self {
        Self::new()
    }
}

impl WarmStore {
    /// An empty store.
    pub fn new() -> Self {
        WarmStore {
            blobs: RankedRwLock::new(LockRank::WarmStore, BTreeMap::new()),
        }
    }

    /// Store a blob under `key`, replacing any previous one. Returns the
    /// blob's size in bytes.
    pub fn put(&self, key: &str, blob: Bytes) -> usize {
        let len = blob.len();
        self.blobs.write().insert(key.to_string(), blob);
        len
    }

    /// Fetch a blob (cheap clone of the shared buffer).
    pub fn get(&self, key: &str) -> Option<Bytes> {
        self.blobs.read().get(key).cloned()
    }

    /// Remove every blob whose key starts with `prefix` (all state of one
    /// view). Returns the number of bytes released.
    pub fn remove_prefix(&self, prefix: &str) -> usize {
        let mut blobs = self.blobs.write();
        let doomed: Vec<String> = blobs
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect();
        doomed
            .iter()
            .filter_map(|k| blobs.remove(k))
            .map(|b| b.len())
            .sum()
    }

    /// Total bytes currently retained across all blobs.
    pub fn retained_bytes(&self) -> u64 {
        self.blobs.read().values().map(|b| b.len() as u64).sum()
    }

    /// Bytes retained under one key prefix (one view's state).
    pub fn retained_bytes_prefix(&self, prefix: &str) -> u64 {
        self.blobs
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, b)| b.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::int_row;
    use crate::value::Value;

    #[test]
    fn rows_round_trip() {
        let rows = vec![
            Row::new(vec![Value::Int(1), Value::from("a"), Value::Double(0.5)]),
            Row::new(vec![Value::Int(-7), Value::Null, Value::Double(2.0)]),
        ];
        let blob = encode_warm_rows(&rows);
        assert_eq!(decode_warm_rows(&blob).unwrap(), rows);
        assert!(decode_warm_rows(&encode_warm_rows(&[])).unwrap().is_empty());
    }

    #[test]
    fn store_accounts_bytes() {
        let s = WarmStore::new();
        assert_eq!(s.retained_bytes(), 0);
        let rows: Vec<Row> = (0..10).map(|i| int_row(&[i, i + 1])).collect();
        s.put("mv/a/v0", encode_warm_rows(&rows));
        s.put("mv/b/v0", encode_warm_rows(&rows[..2]));
        assert!(s.retained_bytes() > 0);
        assert!(s.retained_bytes_prefix("mv/a/") > s.retained_bytes_prefix("mv/b/"));
        assert!(s.get("mv/a/v0").is_some());
        let freed = s.remove_prefix("mv/a/");
        assert!(freed > 0);
        assert!(s.get("mv/a/v0").is_none());
        assert_eq!(s.retained_bytes(), s.retained_bytes_prefix("mv/b/"));
    }

    #[test]
    fn truncated_blob_is_an_error() {
        let rows = vec![int_row(&[1, 2])];
        let blob = encode_warm_rows(&rows);
        let truncated = blob.slice(0..blob.len() - 1);
        assert!(decode_warm_rows(&truncated).is_err());
    }
}
