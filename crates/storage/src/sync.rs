//! Rank-checked synchronization: the engine's one lock-ordering discipline.
//!
//! Every long-lived lock in the engine is a [`RankedMutex`] /
//! [`RankedRwLock`] carrying a [`LockRank`] from the single global table
//! below. In debug and test builds each thread keeps a stack of the locks it
//! currently holds; acquiring a lock whose rank is *not strictly greater*
//! than every held lock's rank panics immediately with both acquisition
//! sites (and, with `RUST_BACKTRACE=1`, both capture backtraces). Release
//! builds compile the wrappers down to the underlying `parking_lot`
//! primitives — no thread-local, no branch, no capture.
//!
//! The point is the same as the query verifier's (`RA####`) static checks:
//! turn a whole bug class — lock-order deadlocks between the shared-context
//! server paths — into something that fails deterministically in any test
//! that merely *executes* both acquisition sites, instead of requiring the
//! unlucky interleaving. The `rasql-lint` source linter (`RL0001`) closes
//! the loop by rejecting raw `Mutex`/`RwLock` construction outside this
//! module, so new locks cannot silently opt out.
//!
//! # The global lock-rank table
//!
//! Ranks are acquired in ascending numeric order: a thread holding a lock of
//! rank *r* may only acquire locks of rank strictly greater than *r* (equal
//! rank is allowed only for ranks marked *sharded*, which are per-partition
//! cells never nested in practice). The ordering is the **audited** actual
//! acquisition order of the engine (see DESIGN.md "Concurrency discipline"):
//!
//! | rank | lock | where |
//! |---|---|---|
//! | [`LockRank::ViewSerialization`] | per-matview CREATE/REFRESH/DROP guard | `core::context` |
//! | [`LockRank::ServerConnections`] | live-connection registry | `server` |
//! | [`LockRank::SessionViews`] | session private-view overlay | `core::session` |
//! | [`LockRank::SessionPrepared`] | session prepared statements | `core::session` |
//! | [`LockRank::PlannerCatalog`] | shared planner view catalog | `core::context` |
//! | [`LockRank::MatViewRegistry`] | materialized-view registry | `core::context` |
//! | [`LockRank::ViewLockMap`] | map of per-view guards | `core::context` |
//! | [`LockRank::AdmissionState`] | admission running/waiting counters | `exec::governor` |
//! | [`LockRank::ActiveQueries`] | kill-registry of cancel tokens | `core::context` |
//! | [`LockRank::WarmBuilds`] | retained build-side hash tables | `core::context` |
//! | [`LockRank::CatalogTables`] | base-table map + versions | `storage::catalog` |
//! | [`LockRank::WarmStore`] | retained warm fixpoint state | `storage::warmstore` |
//! | [`LockRank::DurabilityLog`] | WAL appender + snapshot publisher | `storage::wal` |
//! | [`LockRank::ResultCache`] | version-keyed result cache | `core::cache` |
//! | [`LockRank::CsrCache`] | built CSR kernel graphs | `core::cache` |
//! | [`LockRank::CheckpointStore`] | in-memory checkpoint blobs | `exec::checkpoint` |
//! | [`LockRank::ClusterHealth`] | worker failure/blacklist table | `exec::cluster` |
//! | [`LockRank::FixpointState`] | per-partition view state / kernel slabs (sharded) | `core::fixpoint` |
//! | [`LockRank::GovernorSpill`] | lazily-created spill directory slot | `exec::governor` |
//! | [`LockRank::TraceSink`] | per-query trace recorder | `exec::trace` |
//!
//! Two orderings in the table are load-bearing and worth calling out:
//! `MatViewRegistry` ranks *before* `CatalogTables` because staleness checks
//! read catalog versions while holding the registry (`view_infos`,
//! `refresh_if_stale`), and `ViewSerialization` is the global outermost rank
//! because a view guard is held across an entire refresh — admission,
//! execution, warm-state publish and all.
//!
//! # Adding a new lock
//!
//! 1. Pick the point in the acquisition order where the lock is taken and
//!    add a variant to [`LockRank`] (renumbering neighbors is fine; ranks
//!    are an ordering, not a wire format).
//! 2. Construct it with [`RankedMutex::new`] / [`RankedRwLock::new`] — raw
//!    construction outside this module fails `reproduce lint-src` (RL0001).
//! 3. Run the test suite: any path that acquires against the declared order
//!    panics with both acquisition sites.

use parking_lot as pl;
use std::fmt;

/// The global lock-rank table. Variants are declared in ascending
/// acquisition order; the discriminant *is* the rank.
///
/// See the [module docs](self) for what each rank protects and for the two
/// load-bearing ordering decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum LockRank {
    /// Per-materialized-view serialization guard (outermost: held across an
    /// entire CREATE/REFRESH/DROP, including admission and execution).
    ViewSerialization = 0,
    /// The server's live-connection registry (held while firing session
    /// interrupts at shutdown, which must not re-enter engine locks).
    ServerConnections = 10,
    /// A session's private view overlay.
    SessionViews = 20,
    /// A session's prepared-statement map.
    SessionPrepared = 30,
    /// The shared planner view catalog (held during statement analysis).
    PlannerCatalog = 40,
    /// The materialized-view registry. Ranks before [`LockRank::CatalogTables`]:
    /// staleness checks read catalog versions under this lock.
    MatViewRegistry = 50,
    /// The map handing out per-view serialization guards.
    ViewLockMap = 60,
    /// Admission-controller counters (paired with its condvar; the rank entry
    /// stays on the held stack across a wait, which is sound because a
    /// blocked thread acquires nothing).
    AdmissionState = 70,
    /// The kill registry of active-query cancellation tokens.
    ActiveQueries = 80,
    /// Retained build-side hash tables for delta-seeded refresh.
    WarmBuilds = 90,
    /// The base-table catalog (tables map + version counters).
    CatalogTables = 100,
    /// The warm-state blob store.
    WarmStore = 110,
    /// The write-ahead-log appender and snapshot publisher. Ranks after
    /// [`LockRank::CatalogTables`]: catalog mutations journal from inside
    /// the tables write lock so WAL order equals apply order, and snapshot
    /// collection reads warm state before taking this lock.
    DurabilityLog = 115,
    /// The version-keyed ad-hoc result cache.
    ResultCache = 120,
    /// The built-CSR-graph cache.
    CsrCache = 130,
    /// The in-memory checkpoint blob store.
    CheckpointStore = 140,
    /// Worker failure counts and blacklist flags.
    ClusterHealth = 150,
    /// Per-partition fixpoint state cells and dense kernel slabs. *Sharded*:
    /// same-rank acquisition is permitted (cells are locked one partition at
    /// a time, concurrently by different workers, never nested by one
    /// thread in conflicting orders).
    FixpointState = 160,
    /// The governor's lazily-created spill-directory slot.
    GovernorSpill = 170,
    /// The per-query trace recorder (innermost: recorded from everywhere).
    TraceSink = 180,
}

impl LockRank {
    /// The canonical name used in rank-violation panics.
    pub fn name(self) -> &'static str {
        match self {
            LockRank::ViewSerialization => "ViewSerialization",
            LockRank::ServerConnections => "ServerConnections",
            LockRank::SessionViews => "SessionViews",
            LockRank::SessionPrepared => "SessionPrepared",
            LockRank::PlannerCatalog => "PlannerCatalog",
            LockRank::MatViewRegistry => "MatViewRegistry",
            LockRank::ViewLockMap => "ViewLockMap",
            LockRank::AdmissionState => "AdmissionState",
            LockRank::ActiveQueries => "ActiveQueries",
            LockRank::WarmBuilds => "WarmBuilds",
            LockRank::CatalogTables => "CatalogTables",
            LockRank::WarmStore => "WarmStore",
            LockRank::DurabilityLog => "DurabilityLog",
            LockRank::ResultCache => "ResultCache",
            LockRank::CsrCache => "CsrCache",
            LockRank::CheckpointStore => "CheckpointStore",
            LockRank::ClusterHealth => "ClusterHealth",
            LockRank::FixpointState => "FixpointState",
            LockRank::GovernorSpill => "GovernorSpill",
            LockRank::TraceSink => "TraceSink",
        }
    }

    /// Whether same-rank acquisition is permitted (per-partition sharded
    /// cells that are never nested by one thread).
    pub fn is_sharded(self) -> bool {
        matches!(self, LockRank::FixpointState)
    }

    fn rank(self) -> u16 {
        self as u16
    }
}

impl fmt::Display for LockRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(rank {})", self.name(), self.rank())
    }
}

// --------------------------------------------------------------------
// Debug-build held-lock bookkeeping
// --------------------------------------------------------------------

#[cfg(debug_assertions)]
mod held {
    use super::LockRank;
    use std::backtrace::Backtrace;
    use std::cell::RefCell;
    use std::panic::Location;

    struct Held {
        rank: LockRank,
        acquired_at: &'static Location<'static>,
        backtrace: Backtrace,
        id: u64,
    }

    thread_local! {
        static STACK: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static NEXT_ID: RefCell<u64> = const { RefCell::new(0) };
    }

    /// Validate and record an acquisition; returns the token to release.
    /// Panics with both acquisition sites on a rank inversion.
    pub(super) fn acquire(rank: LockRank, at: &'static Location<'static>) -> u64 {
        STACK.with(|stack| {
            let stack = stack.borrow();
            for h in stack.iter() {
                let inverted = h.rank > rank || (h.rank == rank && !rank.is_sharded());
                if inverted {
                    // `Backtrace::capture` honors RUST_BACKTRACE: the panic
                    // always names both acquisition sites, and carries full
                    // backtraces when the environment asks for them.
                    let here = Backtrace::capture();
                    panic!(
                        "lock-rank inversion: acquiring {} at {}:{}:{} while holding {} \
                         (acquired at {}:{}:{})\n\
                         --- backtrace of the held {} acquisition ---\n{}\n\
                         --- backtrace of the offending {} acquisition ---\n{}",
                        rank,
                        at.file(),
                        at.line(),
                        at.column(),
                        h.rank,
                        h.acquired_at.file(),
                        h.acquired_at.line(),
                        h.acquired_at.column(),
                        h.rank,
                        h.backtrace,
                        rank,
                        here,
                    );
                }
            }
            drop(stack);
            let id = NEXT_ID.with(|n| {
                let mut n = n.borrow_mut();
                *n += 1;
                *n
            });
            STACK.with(|stack| {
                stack.borrow_mut().push(Held {
                    rank,
                    acquired_at: at,
                    backtrace: Backtrace::capture(),
                    id,
                });
            });
            id
        })
    }

    /// Remove the acquisition recorded under `id` (guards may be dropped out
    /// of acquisition order, so this is a search, not a pop).
    pub(super) fn release(id: u64) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|h| h.id == id) {
                stack.remove(pos);
            }
        });
    }

    /// Ranked locks currently held by this thread (test introspection).
    pub fn held_ranks() -> Vec<LockRank> {
        STACK.with(|stack| stack.borrow().iter().map(|h| h.rank).collect())
    }
}

/// Ranked locks currently held by the calling thread, in acquisition order.
/// Always empty in release builds (the bookkeeping does not exist there).
pub fn held_ranks() -> Vec<LockRank> {
    #[cfg(debug_assertions)]
    {
        held::held_ranks()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// The debug-build bookkeeping token carried by every guard (zero-sized in
/// release builds).
#[derive(Debug)]
struct HeldToken {
    #[cfg(debug_assertions)]
    id: u64,
}

impl HeldToken {
    #[track_caller]
    fn acquire(rank: LockRank) -> Self {
        #[cfg(debug_assertions)]
        {
            let at = std::panic::Location::caller();
            HeldToken {
                id: held::acquire(rank, at),
            }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = rank;
            HeldToken {}
        }
    }
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        held::release(self.id);
    }
}

// --------------------------------------------------------------------
// RankedMutex
// --------------------------------------------------------------------

/// A mutex carrying a [`LockRank`]; see the [module docs](self) for the
/// discipline it enforces in debug builds.
#[derive(Debug)]
pub struct RankedMutex<T: ?Sized> {
    rank: LockRank,
    inner: pl::Mutex<T>,
}

/// RAII guard returned by [`RankedMutex::lock`].
#[derive(Debug)]
pub struct RankedMutexGuard<'a, T: ?Sized> {
    // Declared before `inner` so the held-stack entry is removed only after
    // the lock itself is released? No — drop order is declaration order, and
    // removing the bookkeeping entry first is the conservative choice: the
    // thread can no longer pass a rank check on the strength of a lock it is
    // in the middle of releasing.
    _token: HeldToken,
    inner: pl::MutexGuard<'a, T>,
}

impl<T> RankedMutex<T> {
    /// A mutex at `rank` holding `value`.
    pub const fn new(rank: LockRank, value: T) -> Self {
        RankedMutex {
            rank,
            inner: pl::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RankedMutex<T> {
    /// The rank this lock was constructed at.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquire the lock, panicking on a rank inversion in debug builds.
    #[track_caller]
    pub fn lock(&self) -> RankedMutexGuard<'_, T> {
        let _token = HeldToken::acquire(self.rank);
        RankedMutexGuard {
            _token,
            inner: self.inner.lock(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> std::ops::Deref for RankedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RankedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// --------------------------------------------------------------------
// RankedRwLock
// --------------------------------------------------------------------

/// A reader-writer lock carrying a [`LockRank`]; both `read` and `write`
/// participate in the rank discipline.
#[derive(Debug)]
pub struct RankedRwLock<T: ?Sized> {
    rank: LockRank,
    inner: pl::RwLock<T>,
}

/// RAII shared guard returned by [`RankedRwLock::read`].
#[derive(Debug)]
pub struct RankedReadGuard<'a, T: ?Sized> {
    _token: HeldToken,
    inner: pl::RwLockReadGuard<'a, T>,
}

/// RAII exclusive guard returned by [`RankedRwLock::write`].
#[derive(Debug)]
pub struct RankedWriteGuard<'a, T: ?Sized> {
    _token: HeldToken,
    inner: pl::RwLockWriteGuard<'a, T>,
}

impl<T> RankedRwLock<T> {
    /// A lock at `rank` holding `value`.
    pub const fn new(rank: LockRank, value: T) -> Self {
        RankedRwLock {
            rank,
            inner: pl::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RankedRwLock<T> {
    /// The rank this lock was constructed at.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquire a shared read guard.
    #[track_caller]
    pub fn read(&self) -> RankedReadGuard<'_, T> {
        let _token = HeldToken::acquire(self.rank);
        RankedReadGuard {
            _token,
            inner: self.inner.read(),
        }
    }

    /// Acquire an exclusive write guard.
    #[track_caller]
    pub fn write(&self) -> RankedWriteGuard<'_, T> {
        let _token = HeldToken::acquire(self.rank);
        RankedWriteGuard {
            _token,
            inner: self.inner.write(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> std::ops::Deref for RankedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RankedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RankedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// --------------------------------------------------------------------
// RankedCondvarMutex
// --------------------------------------------------------------------

/// A ranked mutex paired with a condition variable (the `parking_lot` shim
/// has none, so this wraps `std::sync`). The admission controller's
/// wait-queue state lives behind one of these.
///
/// The rank entry stays on the held stack for the duration of a
/// [`RankedCondvarMutex::wait`]: a waiting thread holds no *other* locks and
/// acquires nothing while blocked, so keeping the entry is sound and keeps
/// the bookkeeping simple. Poisoning is deliberately swallowed — a panicking
/// holder must not wedge every later waiter.
#[derive(Debug)]
pub struct RankedCondvarMutex<T> {
    rank: LockRank,
    inner: std::sync::Mutex<T>,
    cond: std::sync::Condvar,
}

/// RAII guard returned by [`RankedCondvarMutex::lock`]; pass it back to
/// [`RankedCondvarMutex::wait`] to block on the paired condvar.
#[derive(Debug)]
pub struct RankedCondvarGuard<'a, T> {
    token: HeldToken,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> RankedCondvarMutex<T> {
    /// A condvar-paired mutex at `rank` holding `value`.
    pub const fn new(rank: LockRank, value: T) -> Self {
        RankedCondvarMutex {
            rank,
            inner: std::sync::Mutex::new(value),
            cond: std::sync::Condvar::new(),
        }
    }

    /// Acquire the lock (poison-free, rank-checked).
    #[track_caller]
    pub fn lock(&self) -> RankedCondvarGuard<'_, T> {
        let token = HeldToken::acquire(self.rank);
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        RankedCondvarGuard {
            token,
            inner: Some(guard),
        }
    }

    /// Atomically release the lock, block on the condvar, and re-acquire.
    pub fn wait<'a>(&'a self, mut guard: RankedCondvarGuard<'a, T>) -> RankedCondvarGuard<'a, T> {
        let inner = guard.inner.take().expect("guard not mid-wait");
        let inner = self
            .cond
            .wait(inner)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.inner = Some(inner);
        guard
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.cond.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.cond.notify_all();
    }
}

impl<T> std::ops::Deref for RankedCondvarGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not mid-wait")
    }
}

impl<T> std::ops::DerefMut for RankedCondvarGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not mid-wait")
    }
}

impl<T> Drop for RankedCondvarGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std guard before the HeldToken field drop runs is not
        // expressible directly; dropping `inner` here makes the order
        // explicit: lock first, bookkeeping entry second.
        self.inner = None;
        let _ = &self.token;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_acquisition_is_silent() {
        let a = RankedMutex::new(LockRank::MatViewRegistry, 1);
        let b = RankedRwLock::new(LockRank::CatalogTables, 2);
        let ga = a.lock();
        let gb = b.read();
        assert_eq!(*ga + *gb, 3);
        assert_eq!(
            held_ranks(),
            vec![LockRank::MatViewRegistry, LockRank::CatalogTables]
        );
        drop(gb);
        drop(ga);
        assert!(held_ranks().is_empty());
    }

    #[test]
    fn out_of_order_release_unwinds_correctly() {
        let a = RankedMutex::new(LockRank::PlannerCatalog, ());
        let b = RankedMutex::new(LockRank::WarmBuilds, ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // released before the later acquisition
        assert_eq!(held_ranks(), vec![LockRank::WarmBuilds]);
        drop(gb);
        assert!(held_ranks().is_empty());
        // The earlier rank is acquirable again.
        let _ = a.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn rank_inversion_panics_with_both_sites() {
        let outer = RankedMutex::new(LockRank::CatalogTables, ());
        let inner = RankedMutex::new(LockRank::MatViewRegistry, ());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = outer.lock();
            let _h = inner.lock(); // MatViewRegistry after CatalogTables: inversion
        }))
        .expect_err("inversion must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("lock-rank inversion"), "{msg}");
        assert!(msg.contains("MatViewRegistry"), "{msg}");
        assert!(msg.contains("CatalogTables"), "{msg}");
        // Both acquisition sites are in this file.
        assert!(msg.matches("sync.rs").count() >= 2, "{msg}");
        assert!(held_ranks().is_empty(), "stack must unwind cleanly");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn same_rank_reacquisition_panics_unless_sharded() {
        let a = RankedMutex::new(LockRank::ResultCache, ());
        let b = RankedMutex::new(LockRank::ResultCache, ());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = a.lock();
            let _h = b.lock();
        }))
        .expect_err("same-rank non-sharded must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(String::new);
        assert!(msg.contains("ResultCache"), "{msg}");

        // Sharded ranks allow same-rank (per-partition cells).
        let s1 = RankedMutex::new(LockRank::FixpointState, ());
        let s2 = RankedMutex::new(LockRank::FixpointState, ());
        let _g1 = s1.lock();
        let _g2 = s2.lock();
    }

    #[test]
    fn rwlock_write_then_higher_rank_ok() {
        let cat = RankedRwLock::new(LockRank::CatalogTables, 0u64);
        let warm = RankedRwLock::new(LockRank::WarmStore, 0u64);
        let mut w = cat.write();
        *w += 1;
        let r = warm.read();
        assert_eq!(*w, 1);
        assert_eq!(*r, 0);
    }

    #[test]
    fn condvar_mutex_handoff() {
        use std::sync::Arc;
        let m = Arc::new(RankedCondvarMutex::new(LockRank::AdmissionState, 0usize));
        let m2 = Arc::clone(&m);
        let waiter = std::thread::spawn(move || {
            let mut g = m2.lock();
            while *g == 0 {
                g = m2.wait(g);
            }
            *g
        });
        // Let the waiter reach the wait, then publish and wake.
        std::thread::sleep(std::time::Duration::from_millis(10));
        {
            let mut g = m.lock();
            *g = 7;
        }
        m.notify_one();
        assert_eq!(waiter.join().expect("waiter"), 7);
        assert!(held_ranks().is_empty());
    }

    #[test]
    fn rank_table_is_strictly_ascending() {
        let ranks = [
            LockRank::ViewSerialization,
            LockRank::ServerConnections,
            LockRank::SessionViews,
            LockRank::SessionPrepared,
            LockRank::PlannerCatalog,
            LockRank::MatViewRegistry,
            LockRank::ViewLockMap,
            LockRank::AdmissionState,
            LockRank::ActiveQueries,
            LockRank::WarmBuilds,
            LockRank::CatalogTables,
            LockRank::WarmStore,
            LockRank::DurabilityLog,
            LockRank::ResultCache,
            LockRank::CsrCache,
            LockRank::CheckpointStore,
            LockRank::ClusterHealth,
            LockRank::FixpointState,
            LockRank::GovernorSpill,
            LockRank::TraceSink,
        ];
        for pair in ranks.windows(2) {
            assert!(pair[0] < pair[1], "{} !< {}", pair[0], pair[1]);
        }
        assert_eq!(LockRank::ViewSerialization.rank(), 0);
        assert!(LockRank::FixpointState.is_sharded());
        assert!(!LockRank::CatalogTables.is_sharded());
    }
}
