//! Catalog: the named base tables visible to a query session.
//!
//! Every table carries a pair of version counters so higher layers can do
//! cheap change detection (the incremental view-maintenance subsystem keys
//! its staleness checks and caches on them):
//!
//! * `version` — bumped on *every* mutation (insert, replace, re-register).
//! * `rewrite_version` — bumped only on non-append mutations (replace,
//!   delete, drop+re-register). While `rewrite_version` is unchanged the
//!   relation has only grown by appends, so `rows[old_len..]` is exactly
//!   the delta since any earlier observation of length `old_len`.
//!
//! Version numbers are drawn from one catalog-global counter, so a dropped
//! and re-created table can never alias an older version of itself.

use crate::error::StorageError;
use crate::relation::Relation;
use crate::sync::{LockRank, RankedRwLock};
use crate::wal::{TableImage, Wal, WalRecord};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The version pair tracked per table (see the module docs for the
/// append-only invariant `rewrite_version` encodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableVersion {
    /// Bumped on every mutation.
    pub version: u64,
    /// Bumped only on non-append mutations (replace / re-register).
    pub rewrite_version: u64,
}

struct Entry {
    rel: Arc<Relation>,
    version: u64,
    rewrite_version: u64,
}

/// A thread-safe registry of base relations, shared between the engine's
/// planner and the executor's workers. Names are case-insensitive (SQL).
pub struct Catalog {
    tables: RankedRwLock<BTreeMap<String, Entry>>,
    next_version: AtomicU64,
    /// Durability journal, attached once after recovery. Mutators append
    /// from *inside* the `tables` write section (rank `CatalogTables` <
    /// `DurabilityLog`), so log order is exactly apply order.
    journal: OnceLock<Arc<Wal>>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog {
            tables: RankedRwLock::new(LockRank::CatalogTables, BTreeMap::new()),
            next_version: AtomicU64::new(0),
            journal: OnceLock::new(),
        }
    }

    /// Attach the write-ahead journal. Recovery attaches only after replay
    /// has finished, so replayed operations are never re-journaled; a
    /// second attach is ignored.
    pub fn attach_journal(&self, wal: Arc<Wal>) {
        let _ = self.journal.set(wal);
    }

    /// Whether a journal is attached (i.e. this catalog is durable).
    pub fn is_journaled(&self) -> bool {
        self.journal.get().is_some()
    }

    fn journal_append(&self, record: &WalRecord) -> Result<(), StorageError> {
        match self.journal.get() {
            Some(wal) => wal.append(record),
            None => Ok(()),
        }
    }

    fn image(key: &str, entry: &Entry) -> TableImage {
        TableImage {
            name: key.to_string(),
            schema: entry.rel.schema().clone(),
            rows: entry.rel.rows().to_vec(),
            version: entry.version,
            rewrite_version: entry.rewrite_version,
        }
    }

    /// Draw the next catalog-global version. Callers must hold the `tables`
    /// write lock: drawing inside the critical section is what keeps every
    /// individual table's version sequence monotonic (two mutations of one
    /// table serialize on the lock and draw in that same order).
    fn fresh_version(&self) -> u64 {
        self.next_version.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Register a table, failing if the name is taken.
    pub fn register(&self, name: &str, rel: Relation) -> Result<(), StorageError> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        let v = self.fresh_version();
        let entry = Entry {
            rel: Arc::new(rel),
            version: v,
            rewrite_version: v,
        };
        self.journal_append(&WalRecord::Register(Self::image(&key, &entry)))?;
        tables.insert(key, entry);
        Ok(())
    }

    /// Register or replace a table. Counts as a rewrite: both version
    /// counters are bumped.
    ///
    /// # Errors
    /// Only when a durability journal is attached and the append fails.
    pub fn register_or_replace(&self, name: &str, rel: Relation) -> Result<(), StorageError> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        let v = self.fresh_version();
        let entry = Entry {
            rel: Arc::new(rel),
            version: v,
            rewrite_version: v,
        };
        self.journal_append(&WalRecord::Replace(Self::image(&key, &entry)))?;
        tables.insert(key, entry);
        Ok(())
    }

    /// Register or replace a table from an already-shared relation, without
    /// cloning its rows (used for overlay catalogs during delta-seeded
    /// refresh). Counts as a rewrite: both version counters are bumped.
    ///
    /// # Errors
    /// Only when a durability journal is attached and the append fails.
    pub fn register_shared(&self, name: &str, rel: Arc<Relation>) -> Result<(), StorageError> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        let v = self.fresh_version();
        let entry = Entry {
            rel,
            version: v,
            rewrite_version: v,
        };
        self.journal_append(&WalRecord::Replace(Self::image(&key, &entry)))?;
        tables.insert(key, entry);
        Ok(())
    }

    /// Append rows to an existing table (copy-on-write). Bumps `version`
    /// but not `rewrite_version`, and returns the table's row count from
    /// *before* the append — the suffix `rows[old_len..]` of the new
    /// relation is exactly the inserted delta.
    pub fn insert_rows(
        &self,
        name: &str,
        rows: Vec<crate::row::Row>,
    ) -> Result<usize, StorageError> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        let entry = tables
            .get_mut(&key)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        let arity = entry.rel.schema().arity();
        if let Some(bad) = rows.iter().find(|r| r.arity() != arity) {
            return Err(StorageError::ArityMismatch {
                expected: arity,
                actual: bad.arity(),
            });
        }
        let old_len = entry.rel.len();
        let v = self.fresh_version();
        if self.journal.get().is_some() {
            self.journal_append(&WalRecord::Insert {
                name: key.clone(),
                rows: rows.clone(),
                version: v,
            })?;
        }
        let mut grown = (*entry.rel).clone();
        for row in rows {
            grown.push(row);
        }
        entry.rel = Arc::new(grown);
        entry.version = v;
        Ok(old_len)
    }

    /// Replace a table's contents in place (e.g. after a `DELETE`). Counts
    /// as a rewrite: both version counters are bumped. Fails if the table
    /// does not exist.
    pub fn replace_rows(&self, name: &str, rel: Relation) -> Result<(), StorageError> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        let entry = tables
            .get_mut(&key)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        let v = self.fresh_version();
        entry.rel = Arc::new(rel);
        entry.version = v;
        entry.rewrite_version = v;
        self.journal_append(&WalRecord::Replace(Self::image(&key, entry)))?;
        Ok(())
    }

    /// Replace a table's contents only if its `version` still equals
    /// `expected` — the publish step of an optimistic read-evaluate-replace
    /// cycle (e.g. `DELETE` evaluates its keep-predicate against a version
    /// snapshot and must not clobber rows inserted concurrently). Returns
    /// whether the replacement was applied; when it is, it counts as a
    /// rewrite and both version counters are bumped. Fails if the table
    /// does not exist.
    pub fn replace_rows_if(
        &self,
        name: &str,
        rel: Relation,
        expected: u64,
    ) -> Result<bool, StorageError> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        let entry = tables
            .get_mut(&key)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        if entry.version != expected {
            return Ok(false);
        }
        let v = self.fresh_version();
        entry.rel = Arc::new(rel);
        entry.version = v;
        entry.rewrite_version = v;
        self.journal_append(&WalRecord::Replace(Self::image(&key, entry)))?;
        Ok(true)
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Result<Arc<Relation>, StorageError> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .map(|e| Arc::clone(&e.rel))
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Look up a table together with its version pair and current length,
    /// atomically (a consistent snapshot for dependency tracking).
    pub fn get_versioned(&self, name: &str) -> Result<(Arc<Relation>, TableVersion), StorageError> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .map(|e| {
                (
                    Arc::clone(&e.rel),
                    TableVersion {
                        version: e.version,
                        rewrite_version: e.rewrite_version,
                    },
                )
            })
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// The version pair of a table, if it exists.
    pub fn version_of(&self, name: &str) -> Option<TableVersion> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .map(|e| TableVersion {
                version: e.version,
                rewrite_version: e.rewrite_version,
            })
    }

    /// True if the table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Remove a table; returns it if present.
    ///
    /// # Errors
    /// Only when a durability journal is attached and the append fails.
    pub fn drop_table(&self, name: &str) -> Result<Option<Arc<Relation>>, StorageError> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        match tables.remove(&key) {
            Some(e) => {
                self.journal_append(&WalRecord::Drop { name: key })?;
                Ok(Some(e.rel))
            }
            None => Ok(None),
        }
    }

    /// Sorted table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    // ----------------------------------------------------------------
    // Recovery and snapshot support
    // ----------------------------------------------------------------

    /// Install a table image if it is newer than what the catalog holds
    /// (replay path — never journals). Version-guarded so replaying a log
    /// whose operations a snapshot already covers is a no-op, which is what
    /// makes the snapshot-renamed-but-log-not-yet-truncated crash window
    /// safe.
    ///
    /// # Errors
    /// [`StorageError::ArityMismatch`] if the image's rows do not match its
    /// own schema (only possible for a hand-forged image).
    pub fn apply_image(&self, img: TableImage) -> Result<(), StorageError> {
        let TableImage {
            name,
            schema,
            rows,
            version,
            rewrite_version,
        } = img;
        let key = name.to_ascii_lowercase();
        let rel = Relation::try_new(schema, rows)?;
        let mut tables = self.tables.write();
        if tables.get(&key).is_some_and(|e| e.version >= version) {
            return Ok(());
        }
        tables.insert(
            key,
            Entry {
                rel: Arc::new(rel),
                version,
                rewrite_version,
            },
        );
        self.bump_version_floor(version.max(rewrite_version));
        Ok(())
    }

    /// Replay an `INSERT` record: append `rows` and set the table's version
    /// to the recorded one, unless the table already reached it.
    ///
    /// # Errors
    /// [`StorageError::UnknownTable`] if the table is missing (a log that
    /// inserts into a never-registered table is corrupt upstream).
    pub fn apply_insert(
        &self,
        name: &str,
        rows: Vec<crate::row::Row>,
        version: u64,
    ) -> Result<(), StorageError> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        let entry = tables
            .get_mut(&key)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        if entry.version >= version {
            return Ok(());
        }
        let mut grown = (*entry.rel).clone();
        for row in rows {
            grown.push(row);
        }
        entry.rel = Arc::new(grown);
        entry.version = version;
        self.bump_version_floor(version);
        Ok(())
    }

    /// Replay a `Drop` record (no-op if already absent, never journals).
    pub fn apply_drop(&self, name: &str) {
        self.tables.write().remove(&name.to_ascii_lowercase());
    }

    /// Full images of every table, for snapshot collection.
    pub fn export_tables(&self) -> Vec<TableImage> {
        self.tables
            .read()
            .iter()
            .map(|(k, e)| Self::image(k, e))
            .collect()
    }

    /// The highest version this catalog has minted (snapshots persist it as
    /// the recovery floor).
    pub fn version_ceiling(&self) -> u64 {
        self.next_version.load(Ordering::Relaxed)
    }

    /// Raise the version counter to at least `floor`, so post-recovery
    /// mints can never alias a recovered version.
    pub fn bump_version_floor(&self, floor: u64) {
        self.next_version.fetch_max(floor, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::int_row;

    #[test]
    fn register_lookup_case_insensitive() {
        let c = Catalog::new();
        c.register("Edge", Relation::edges(&[(1, 2)])).unwrap();
        assert!(c.contains("edge"));
        assert_eq!(c.get("EDGE").unwrap().len(), 1);
    }

    #[test]
    fn duplicate_rejected_replace_allowed() {
        let c = Catalog::new();
        c.register("t", Relation::edges(&[])).unwrap();
        assert!(c.register("T", Relation::edges(&[])).is_err());
        c.register_or_replace("t", Relation::edges(&[(1, 2)]))
            .unwrap();
        assert_eq!(c.get("t").unwrap().len(), 1);
    }

    #[test]
    fn drop_and_names() {
        let c = Catalog::new();
        c.register("b", Relation::edges(&[])).unwrap();
        c.register("a", Relation::edges(&[])).unwrap();
        assert_eq!(c.table_names(), vec!["a", "b"]);
        assert!(c.drop_table("a").unwrap().is_some());
        assert!(c.get("a").is_err());
    }

    #[test]
    fn insert_bumps_version_not_rewrite() {
        let c = Catalog::new();
        c.register("t", Relation::edges(&[(1, 2)])).unwrap();
        let v0 = c.version_of("t").unwrap();
        let old_len = c.insert_rows("t", vec![int_row(&[3, 4])]).unwrap();
        assert_eq!(old_len, 1);
        let v1 = c.version_of("t").unwrap();
        assert!(v1.version > v0.version);
        assert_eq!(v1.rewrite_version, v0.rewrite_version);
        // The suffix past old_len is exactly the delta.
        assert_eq!(c.get("t").unwrap().rows()[old_len..], [int_row(&[3, 4])]);
    }

    #[test]
    fn replace_bumps_rewrite() {
        let c = Catalog::new();
        c.register("t", Relation::edges(&[(1, 2)])).unwrap();
        let v0 = c.version_of("t").unwrap();
        c.replace_rows("t", Relation::edges(&[])).unwrap();
        let v1 = c.version_of("t").unwrap();
        assert!(v1.rewrite_version > v0.rewrite_version);
        // Re-registering after a drop can't alias the old versions.
        c.drop_table("t").unwrap().unwrap();
        c.register("t", Relation::edges(&[])).unwrap();
        let v2 = c.version_of("t").unwrap();
        assert!(v2.version > v1.version);
    }

    #[test]
    fn replace_rows_if_guards_version() {
        let c = Catalog::new();
        c.register("t", Relation::edges(&[(1, 2)])).unwrap();
        let v0 = c.version_of("t").unwrap();
        // Stale expectation (a concurrent insert moved the version): refused.
        c.insert_rows("t", vec![int_row(&[3, 4])]).unwrap();
        assert!(!c
            .replace_rows_if("t", Relation::edges(&[]), v0.version)
            .unwrap());
        assert_eq!(c.get("t").unwrap().len(), 2);
        // Current expectation: applied, counted as a rewrite.
        let v1 = c.version_of("t").unwrap();
        assert!(c
            .replace_rows_if("t", Relation::edges(&[(9, 9)]), v1.version)
            .unwrap());
        let v2 = c.version_of("t").unwrap();
        assert!(v2.rewrite_version > v1.rewrite_version);
        assert_eq!(c.get("t").unwrap().len(), 1);
        assert!(c
            .replace_rows_if("missing", Relation::edges(&[]), 0)
            .is_err());
    }

    #[test]
    fn versions_monotonic_under_concurrent_mutation() {
        // Versions are drawn inside the tables write lock, so one table's
        // version sequence can never run backwards even when many threads
        // mutate it at once.
        let c = Arc::new(Catalog::new());
        c.register("t", Relation::edges(&[])).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..50 {
                        c.insert_rows("t", vec![int_row(&[1, 2])]).unwrap();
                        let v = c.version_of("t").unwrap().version;
                        assert!(v > last, "version went backwards: {last} -> {v}");
                        last = v;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn insert_validates_arity() {
        let c = Catalog::new();
        c.register("t", Relation::edges(&[])).unwrap();
        assert!(c.insert_rows("t", vec![int_row(&[1])]).is_err());
        assert!(c.insert_rows("missing", vec![]).is_err());
    }

    #[test]
    fn journaled_mutations_replay_to_an_identical_catalog() {
        use crate::crashpoint::CrashInjector;
        use crate::wal;

        let dir = std::env::temp_dir().join(format!(
            "rasql-catalog-journal-p{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let c = Catalog::new();
        c.attach_journal(Arc::new(
            wal::Wal::open(&dir, CrashInjector::none()).unwrap(),
        ));
        assert!(c.is_journaled());
        c.register("edge", Relation::edges(&[(1, 2)])).unwrap();
        c.insert_rows("edge", vec![int_row(&[2, 3])]).unwrap();
        c.register("gone", Relation::edges(&[])).unwrap();
        c.replace_rows("edge", Relation::edges(&[(5, 6)])).unwrap();
        c.drop_table("gone").unwrap().unwrap();

        let recovered = Catalog::new();
        for rec in wal::replay(&dir.join(wal::WAL_FILE)).unwrap().records {
            match rec {
                wal::WalRecord::Register(img) | wal::WalRecord::Replace(img) => {
                    recovered.apply_image(img).unwrap();
                }
                wal::WalRecord::Insert {
                    name,
                    rows,
                    version,
                } => recovered.apply_insert(&name, rows, version).unwrap(),
                wal::WalRecord::Drop { name } => recovered.apply_drop(&name),
                other => panic!("unexpected view record {other:?}"),
            }
        }
        assert_eq!(recovered.export_tables(), c.export_tables());
        assert_eq!(recovered.version_of("edge"), c.version_of("edge"));
        // The floor guarantees fresh mints stay above every recovered version.
        recovered.register("next", Relation::edges(&[])).unwrap();
        assert!(
            recovered.version_of("next").unwrap().version > c.version_of("edge").unwrap().version
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
