//! Catalog: the named base tables visible to a query session.
//!
//! Every table carries a pair of version counters so higher layers can do
//! cheap change detection (the incremental view-maintenance subsystem keys
//! its staleness checks and caches on them):
//!
//! * `version` — bumped on *every* mutation (insert, replace, re-register).
//! * `rewrite_version` — bumped only on non-append mutations (replace,
//!   delete, drop+re-register). While `rewrite_version` is unchanged the
//!   relation has only grown by appends, so `rows[old_len..]` is exactly
//!   the delta since any earlier observation of length `old_len`.
//!
//! Version numbers are drawn from one catalog-global counter, so a dropped
//! and re-created table can never alias an older version of itself.

use crate::error::StorageError;
use crate::relation::Relation;
use crate::sync::{LockRank, RankedRwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The version pair tracked per table (see the module docs for the
/// append-only invariant `rewrite_version` encodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableVersion {
    /// Bumped on every mutation.
    pub version: u64,
    /// Bumped only on non-append mutations (replace / re-register).
    pub rewrite_version: u64,
}

struct Entry {
    rel: Arc<Relation>,
    version: u64,
    rewrite_version: u64,
}

/// A thread-safe registry of base relations, shared between the engine's
/// planner and the executor's workers. Names are case-insensitive (SQL).
pub struct Catalog {
    tables: RankedRwLock<BTreeMap<String, Entry>>,
    next_version: AtomicU64,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog {
            tables: RankedRwLock::new(LockRank::CatalogTables, BTreeMap::new()),
            next_version: AtomicU64::new(0),
        }
    }

    /// Draw the next catalog-global version. Callers must hold the `tables`
    /// write lock: drawing inside the critical section is what keeps every
    /// individual table's version sequence monotonic (two mutations of one
    /// table serialize on the lock and draw in that same order).
    fn fresh_version(&self) -> u64 {
        self.next_version.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Register a table, failing if the name is taken.
    pub fn register(&self, name: &str, rel: Relation) -> Result<(), StorageError> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        let v = self.fresh_version();
        tables.insert(
            key,
            Entry {
                rel: Arc::new(rel),
                version: v,
                rewrite_version: v,
            },
        );
        Ok(())
    }

    /// Register or replace a table. Counts as a rewrite: both version
    /// counters are bumped.
    pub fn register_or_replace(&self, name: &str, rel: Relation) {
        let mut tables = self.tables.write();
        let v = self.fresh_version();
        tables.insert(
            name.to_ascii_lowercase(),
            Entry {
                rel: Arc::new(rel),
                version: v,
                rewrite_version: v,
            },
        );
    }

    /// Register or replace a table from an already-shared relation, without
    /// cloning its rows (used for overlay catalogs during delta-seeded
    /// refresh). Counts as a rewrite: both version counters are bumped.
    pub fn register_shared(&self, name: &str, rel: Arc<Relation>) {
        let mut tables = self.tables.write();
        let v = self.fresh_version();
        tables.insert(
            name.to_ascii_lowercase(),
            Entry {
                rel,
                version: v,
                rewrite_version: v,
            },
        );
    }

    /// Append rows to an existing table (copy-on-write). Bumps `version`
    /// but not `rewrite_version`, and returns the table's row count from
    /// *before* the append — the suffix `rows[old_len..]` of the new
    /// relation is exactly the inserted delta.
    pub fn insert_rows(
        &self,
        name: &str,
        rows: Vec<crate::row::Row>,
    ) -> Result<usize, StorageError> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        let entry = tables
            .get_mut(&key)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        let arity = entry.rel.schema().arity();
        if let Some(bad) = rows.iter().find(|r| r.arity() != arity) {
            return Err(StorageError::ArityMismatch {
                expected: arity,
                actual: bad.arity(),
            });
        }
        let old_len = entry.rel.len();
        let mut grown = (*entry.rel).clone();
        for row in rows {
            grown.push(row);
        }
        entry.rel = Arc::new(grown);
        entry.version = self.fresh_version();
        Ok(old_len)
    }

    /// Replace a table's contents in place (e.g. after a `DELETE`). Counts
    /// as a rewrite: both version counters are bumped. Fails if the table
    /// does not exist.
    pub fn replace_rows(&self, name: &str, rel: Relation) -> Result<(), StorageError> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        let entry = tables
            .get_mut(&key)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        let v = self.fresh_version();
        entry.rel = Arc::new(rel);
        entry.version = v;
        entry.rewrite_version = v;
        Ok(())
    }

    /// Replace a table's contents only if its `version` still equals
    /// `expected` — the publish step of an optimistic read-evaluate-replace
    /// cycle (e.g. `DELETE` evaluates its keep-predicate against a version
    /// snapshot and must not clobber rows inserted concurrently). Returns
    /// whether the replacement was applied; when it is, it counts as a
    /// rewrite and both version counters are bumped. Fails if the table
    /// does not exist.
    pub fn replace_rows_if(
        &self,
        name: &str,
        rel: Relation,
        expected: u64,
    ) -> Result<bool, StorageError> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        let entry = tables
            .get_mut(&key)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        if entry.version != expected {
            return Ok(false);
        }
        let v = self.fresh_version();
        entry.rel = Arc::new(rel);
        entry.version = v;
        entry.rewrite_version = v;
        Ok(true)
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Result<Arc<Relation>, StorageError> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .map(|e| Arc::clone(&e.rel))
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Look up a table together with its version pair and current length,
    /// atomically (a consistent snapshot for dependency tracking).
    pub fn get_versioned(&self, name: &str) -> Result<(Arc<Relation>, TableVersion), StorageError> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .map(|e| {
                (
                    Arc::clone(&e.rel),
                    TableVersion {
                        version: e.version,
                        rewrite_version: e.rewrite_version,
                    },
                )
            })
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// The version pair of a table, if it exists.
    pub fn version_of(&self, name: &str) -> Option<TableVersion> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .map(|e| TableVersion {
                version: e.version,
                rewrite_version: e.rewrite_version,
            })
    }

    /// True if the table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Remove a table; returns it if present.
    pub fn drop_table(&self, name: &str) -> Option<Arc<Relation>> {
        self.tables
            .write()
            .remove(&name.to_ascii_lowercase())
            .map(|e| e.rel)
    }

    /// Sorted table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::int_row;

    #[test]
    fn register_lookup_case_insensitive() {
        let c = Catalog::new();
        c.register("Edge", Relation::edges(&[(1, 2)])).unwrap();
        assert!(c.contains("edge"));
        assert_eq!(c.get("EDGE").unwrap().len(), 1);
    }

    #[test]
    fn duplicate_rejected_replace_allowed() {
        let c = Catalog::new();
        c.register("t", Relation::edges(&[])).unwrap();
        assert!(c.register("T", Relation::edges(&[])).is_err());
        c.register_or_replace("t", Relation::edges(&[(1, 2)]));
        assert_eq!(c.get("t").unwrap().len(), 1);
    }

    #[test]
    fn drop_and_names() {
        let c = Catalog::new();
        c.register("b", Relation::edges(&[])).unwrap();
        c.register("a", Relation::edges(&[])).unwrap();
        assert_eq!(c.table_names(), vec!["a", "b"]);
        assert!(c.drop_table("a").is_some());
        assert!(c.get("a").is_err());
    }

    #[test]
    fn insert_bumps_version_not_rewrite() {
        let c = Catalog::new();
        c.register("t", Relation::edges(&[(1, 2)])).unwrap();
        let v0 = c.version_of("t").unwrap();
        let old_len = c.insert_rows("t", vec![int_row(&[3, 4])]).unwrap();
        assert_eq!(old_len, 1);
        let v1 = c.version_of("t").unwrap();
        assert!(v1.version > v0.version);
        assert_eq!(v1.rewrite_version, v0.rewrite_version);
        // The suffix past old_len is exactly the delta.
        assert_eq!(c.get("t").unwrap().rows()[old_len..], [int_row(&[3, 4])]);
    }

    #[test]
    fn replace_bumps_rewrite() {
        let c = Catalog::new();
        c.register("t", Relation::edges(&[(1, 2)])).unwrap();
        let v0 = c.version_of("t").unwrap();
        c.replace_rows("t", Relation::edges(&[])).unwrap();
        let v1 = c.version_of("t").unwrap();
        assert!(v1.rewrite_version > v0.rewrite_version);
        // Re-registering after a drop can't alias the old versions.
        c.drop_table("t").unwrap();
        c.register("t", Relation::edges(&[])).unwrap();
        let v2 = c.version_of("t").unwrap();
        assert!(v2.version > v1.version);
    }

    #[test]
    fn replace_rows_if_guards_version() {
        let c = Catalog::new();
        c.register("t", Relation::edges(&[(1, 2)])).unwrap();
        let v0 = c.version_of("t").unwrap();
        // Stale expectation (a concurrent insert moved the version): refused.
        c.insert_rows("t", vec![int_row(&[3, 4])]).unwrap();
        assert!(!c
            .replace_rows_if("t", Relation::edges(&[]), v0.version)
            .unwrap());
        assert_eq!(c.get("t").unwrap().len(), 2);
        // Current expectation: applied, counted as a rewrite.
        let v1 = c.version_of("t").unwrap();
        assert!(c
            .replace_rows_if("t", Relation::edges(&[(9, 9)]), v1.version)
            .unwrap());
        let v2 = c.version_of("t").unwrap();
        assert!(v2.rewrite_version > v1.rewrite_version);
        assert_eq!(c.get("t").unwrap().len(), 1);
        assert!(c
            .replace_rows_if("missing", Relation::edges(&[]), 0)
            .is_err());
    }

    #[test]
    fn versions_monotonic_under_concurrent_mutation() {
        // Versions are drawn inside the tables write lock, so one table's
        // version sequence can never run backwards even when many threads
        // mutate it at once.
        let c = Arc::new(Catalog::new());
        c.register("t", Relation::edges(&[])).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..50 {
                        c.insert_rows("t", vec![int_row(&[1, 2])]).unwrap();
                        let v = c.version_of("t").unwrap().version;
                        assert!(v > last, "version went backwards: {last} -> {v}");
                        last = v;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn insert_validates_arity() {
        let c = Catalog::new();
        c.register("t", Relation::edges(&[])).unwrap();
        assert!(c.insert_rows("t", vec![int_row(&[1])]).is_err());
        assert!(c.insert_rows("missing", vec![]).is_err());
    }
}
