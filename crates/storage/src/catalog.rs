//! Catalog: the named base tables visible to a query session.

use crate::error::StorageError;
use crate::relation::Relation;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A thread-safe registry of base relations, shared between the engine's
/// planner and the executor's workers. Names are case-insensitive (SQL).
#[derive(Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, Arc<Relation>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table, failing if the name is taken.
    pub fn register(&self, name: &str, rel: Relation) -> Result<(), StorageError> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(StorageError::DuplicateTable(name.to_string()));
        }
        tables.insert(key, Arc::new(rel));
        Ok(())
    }

    /// Register or replace a table.
    pub fn register_or_replace(&self, name: &str, rel: Relation) {
        self.tables
            .write()
            .insert(name.to_ascii_lowercase(), Arc::new(rel));
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Result<Arc<Relation>, StorageError> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// True if the table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Remove a table; returns it if present.
    pub fn drop_table(&self, name: &str) -> Option<Arc<Relation>> {
        self.tables.write().remove(&name.to_ascii_lowercase())
    }

    /// Sorted table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_case_insensitive() {
        let c = Catalog::new();
        c.register("Edge", Relation::edges(&[(1, 2)])).unwrap();
        assert!(c.contains("edge"));
        assert_eq!(c.get("EDGE").unwrap().len(), 1);
    }

    #[test]
    fn duplicate_rejected_replace_allowed() {
        let c = Catalog::new();
        c.register("t", Relation::edges(&[])).unwrap();
        assert!(c.register("T", Relation::edges(&[])).is_err());
        c.register_or_replace("t", Relation::edges(&[(1, 2)]));
        assert_eq!(c.get("t").unwrap().len(), 1);
    }

    #[test]
    fn drop_and_names() {
        let c = Catalog::new();
        c.register("b", Relation::edges(&[])).unwrap();
        c.register("a", Relation::edges(&[])).unwrap();
        assert_eq!(c.table_names(), vec!["a", "b"]);
        assert!(c.drop_table("a").is_some());
        assert!(c.get("a").is_err());
    }
}
