//! FxHash: the fast non-cryptographic hasher used by rustc, bundled here so the
//! engine's hash-heavy inner loops (set-difference, aggregate maps, hash joins)
//! do not pay SipHash's per-byte cost. See the Rust Performance Book's "Hashing"
//! chapter for the rationale; the algorithm is the public-domain Firefox hash.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the original FxHash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low bits are well mixed for power-of-two maps.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with FxHash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with FxHash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn h<T: Hash + ?Sized>(t: &T) -> u64 {
        let mut hasher = FxHasher::default();
        t.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(h(&42u64), h(&42u64));
        assert_eq!(h(&"hello"), h(&"hello"));
    }

    #[test]
    fn discriminates() {
        assert_ne!(h(&1u64), h(&2u64));
        assert_ne!(h(&"a"), h(&"b"));
        // Length-tagged tail: a prefix must not collide with its extension.
        assert_ne!(h(&[1u8, 2, 3][..]), h(&[1u8, 2, 3, 0][..]));
    }

    #[test]
    fn low_bits_spread() {
        // 1024 consecutive keys must not all land in a handful of low-bit
        // buckets (guards the finish() avalanche).
        let mut buckets = [0u32; 16];
        for i in 0..1024u64 {
            buckets[(h(&i) & 15) as usize] += 1;
        }
        assert!(buckets.iter().all(|&c| c > 16), "skewed: {buckets:?}");
    }
}
