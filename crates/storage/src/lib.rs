#![warn(missing_docs)]

//! # rasql-storage
//!
//! The storage substrate of the RaSQL reproduction: in-memory relations,
//! hash partitioning, a fast non-cryptographic hasher, and the varint/delta
//! codecs used for compressed broadcast of base relations (paper §7.2).
//!
//! The dynamically-typed value, row, and schema types live in the
//! dependency-light `rasql-api` crate (they are part of the engine's stable
//! wire surface) and are re-exported here at their historical paths, so
//! everything above this crate (parser, planner, executor, fixpoint
//! operator) keeps manipulating data through `rasql_storage::{Value, Row,
//! Schema}` — which *are* the wire types, no conversion needed.
//!
//! ## Quick tour
//!
//! ```
//! use rasql_storage::{Relation, Schema, DataType, Value, Row};
//!
//! let schema = Schema::new(vec![
//!     ("src", DataType::Int),
//!     ("dst", DataType::Int),
//! ]);
//! let mut rel = Relation::empty(schema);
//! rel.push(Row::from(vec![Value::Int(1), Value::Int(2)]));
//! rel.push(Row::from(vec![Value::Int(2), Value::Int(3)]));
//! assert_eq!(rel.len(), 2);
//! ```

pub mod catalog;
pub mod codec;
pub mod crashpoint;
pub mod csr;
pub mod error;
pub mod hasher;
pub mod partition;
pub mod relation;
pub mod snapshot;
pub mod sync;
pub mod wal;
pub mod warmstore;

/// Re-export of the wire-facing row type (now defined in `rasql-api`, kept
/// at its historical path here).
pub mod row {
    pub use rasql_api::row::*;
}

/// Re-export of the wire-facing schema types (now defined in `rasql-api`).
pub mod schema {
    pub use rasql_api::schema::*;
}

/// Re-export of the wire-facing value type (now defined in `rasql-api`).
pub mod value {
    pub use rasql_api::value::*;
}

pub use catalog::{Catalog, TableVersion};
pub use crashpoint::{CrashInjector, CrashSpec, CRASH_SITES};
pub use csr::{CsrGraph, CsrWeight};
pub use error::StorageError;
pub use hasher::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use partition::{hash_partition, partition_rows, Partitioning};
pub use relation::Relation;
pub use row::Row;
pub use schema::{DataType, Field, Schema};
pub use snapshot::DurableState;
pub use sync::{LockRank, RankedCondvarMutex, RankedMutex, RankedRwLock};
pub use value::Value;
pub use wal::{TableImage, ViewDep, ViewImage, Wal, WalRecord, WalStats};
pub use warmstore::{decode_warm_rows, encode_warm_rows, WarmStore};
