#![warn(missing_docs)]

//! # rasql-storage
//!
//! The storage substrate of the RaSQL reproduction: dynamically-typed values,
//! rows, schemas, in-memory relations, hash partitioning, a fast non-cryptographic
//! hasher, and the varint/delta codecs used for compressed broadcast of base
//! relations (paper §7.2).
//!
//! Everything above this crate (parser, planner, executor, fixpoint operator)
//! manipulates data exclusively through the types defined here.
//!
//! ## Quick tour
//!
//! ```
//! use rasql_storage::{Relation, Schema, DataType, Value, Row};
//!
//! let schema = Schema::new(vec![
//!     ("src", DataType::Int),
//!     ("dst", DataType::Int),
//! ]);
//! let mut rel = Relation::empty(schema);
//! rel.push(Row::from(vec![Value::Int(1), Value::Int(2)]));
//! rel.push(Row::from(vec![Value::Int(2), Value::Int(3)]));
//! assert_eq!(rel.len(), 2);
//! ```

pub mod catalog;
pub mod codec;
pub mod csr;
pub mod error;
pub mod hasher;
pub mod partition;
pub mod relation;
pub mod row;
pub mod schema;
pub mod value;

pub use catalog::Catalog;
pub use csr::{CsrGraph, CsrWeight};
pub use error::StorageError;
pub use hasher::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use partition::{hash_partition, partition_rows, Partitioning};
pub use relation::Relation;
pub use row::Row;
pub use schema::{DataType, Field, Schema};
pub use value::Value;
