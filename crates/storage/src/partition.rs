//! Hash partitioning of relational datasets (paper Appendix A).
//!
//! A partition function `h` over a partition key `C ⊆ attrs(R)` maps each tuple
//! to a partition id in `{0, …, n-1}`. The fixpoint operator requires the delta,
//! base and all relations to be *co-partitioned* on the join/group key, which is
//! what makes partition-aware scheduling and stage combination possible.

use crate::hasher::FxHasher;
use crate::row::Row;
use crate::value::Value;
use std::hash::{Hash, Hasher};

/// How a dataset is partitioned across workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partitioning {
    /// No known partitioning (e.g. freshly loaded data).
    Unknown {
        /// Number of physical partitions.
        partitions: usize,
    },
    /// Hash-partitioned on the given column indices.
    Hash {
        /// Key column indices.
        key: Vec<usize>,
        /// Number of physical partitions.
        partitions: usize,
    },
    /// A single partition (scalar results, tiny tables).
    Single,
    /// Replicated to every worker (broadcast relations).
    Broadcast {
        /// Number of workers holding a full copy.
        copies: usize,
    },
}

impl Partitioning {
    /// Number of physical partitions.
    pub fn partitions(&self) -> usize {
        match self {
            Partitioning::Unknown { partitions } => *partitions,
            Partitioning::Hash { partitions, .. } => *partitions,
            Partitioning::Single => 1,
            Partitioning::Broadcast { copies } => *copies,
        }
    }

    /// True if this partitioning satisfies "hash on `key` into `n` parts"
    /// (the co-partitioning requirement of Algorithm 4 line 7/12).
    pub fn satisfies_hash(&self, key: &[usize], n: usize) -> bool {
        matches!(self, Partitioning::Hash { key: k, partitions } if k == key && *partitions == n)
    }
}

/// Hash a key (projected values of a row) to a partition id.
#[inline]
pub fn hash_partition(values: &[&Value], partitions: usize) -> usize {
    debug_assert!(partitions > 0);
    let mut h = FxHasher::default();
    for v in values {
        v.hash(&mut h);
    }
    (h.finish() % partitions as u64) as usize
}

/// Partition id for `row` under hash partitioning on `key` columns.
#[inline]
pub fn row_partition(row: &Row, key: &[usize], partitions: usize) -> usize {
    let mut h = FxHasher::default();
    for &c in key {
        row.get(c).hash(&mut h);
    }
    (h.finish() % partitions as u64) as usize
}

/// Split rows into `partitions` buckets by hash of `key` columns.
pub fn partition_rows(rows: Vec<Row>, key: &[usize], partitions: usize) -> Vec<Vec<Row>> {
    let mut buckets: Vec<Vec<Row>> = (0..partitions).map(|_| Vec::new()).collect();
    for row in rows {
        let p = row_partition(&row, key, partitions);
        buckets[p].push(row);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::int_row;

    #[test]
    fn partitioning_is_deterministic() {
        let r = int_row(&[7, 9]);
        let p1 = row_partition(&r, &[0], 8);
        let p2 = row_partition(&r, &[0], 8);
        assert_eq!(p1, p2);
        assert!(p1 < 8);
    }

    #[test]
    fn same_key_same_partition() {
        let a = int_row(&[5, 1]);
        let b = int_row(&[5, 99]);
        assert_eq!(row_partition(&a, &[0], 16), row_partition(&b, &[0], 16));
    }

    #[test]
    fn partition_rows_covers_all() {
        let rows: Vec<Row> = (0..100).map(|i| int_row(&[i, i + 1])).collect();
        let buckets = partition_rows(rows, &[0], 4);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 100);
        // No pathological skew on sequential keys.
        assert!(
            buckets.iter().all(|b| b.len() > 5),
            "{:?}",
            buckets.iter().map(Vec::len).collect::<Vec<_>>()
        );
    }

    #[test]
    fn satisfies_hash() {
        let p = Partitioning::Hash {
            key: vec![0],
            partitions: 4,
        };
        assert!(p.satisfies_hash(&[0], 4));
        assert!(!p.satisfies_hash(&[1], 4));
        assert!(!p.satisfies_hash(&[0], 8));
        assert!(!Partitioning::Single.satisfies_hash(&[0], 1));
    }
}
