//! Property tests for the WAL frame codec and `replay`'s corruption
//! handling. Three invariants, matched to the recovery contract in
//! `storage::wal`:
//!
//! 1. **Round-trip**: any record sequence appended through [`Wal`] replays
//!    bit-identically (and the payload codec alone round-trips).
//! 2. **Truncation heals**: cutting the log at *any* byte offset replays as
//!    the longest complete-frame prefix, truncates the file there, and a
//!    second replay is clean — a torn tail never surfaces as an error.
//! 3. **Bit flips never fabricate**: flipping any single bit yields either
//!    that same prefix heal (when the damage reads as a torn tail) or a
//!    typed [`StorageError::Corrupt`] at the damaged frame's offset — never
//!    a mutated, extra, or reordered record.
//!
//! Truncation-at-every-offset and flip-every-bit are naturally exhaustive,
//! so those loops run inside each generated case rather than relying on the
//! RNG to land on interesting offsets.

use proptest::prelude::*;
use rasql_storage::crashpoint::CrashInjector;
use rasql_storage::wal::{replay, WAL_FILE};
use rasql_storage::{
    DataType, Row, Schema, StorageError, TableImage, Value, ViewDep, ViewImage, Wal, WalRecord,
};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static SEQ: AtomicU64 = AtomicU64::new(0);

/// Fresh empty scratch directory, unique across the concurrent test threads.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rasql-wal-prop-{tag}-p{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn rows() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec((any::<i64>(), any::<i64>()), 0..4).prop_map(|ps| {
        ps.into_iter()
            .map(|(s, d)| Row::new(vec![Value::Int(s), Value::Int(d)]))
            .collect()
    })
}

fn table_image() -> impl Strategy<Value = TableImage> {
    ("[a-z]{1,6}", rows(), 0u64..1000, 0u64..8).prop_map(
        |(name, rows, version, rewrite_version)| TableImage {
            name,
            schema: Schema::new(vec![("src", DataType::Int), ("dst", DataType::Int)]),
            rows,
            version,
            rewrite_version,
        },
    )
}

fn view_image() -> impl Strategy<Value = ViewImage> {
    (
        ("[a-z]{1,6}", "[a-z]{0,12}", 0u64..64, any::<bool>()),
        prop::collection::vec(("[a-z]{1,4}", 0u64..32, 0u64..4, 0u64..64), 0..3),
        prop::collection::vec(("[a-z]{1,4}", prop::collection::vec(0u64..256, 0..8)), 0..2),
    )
        .prop_map(|((key, sql, version, eligible), deps, warm)| ViewImage {
            key,
            sql,
            version,
            eligible,
            ineligible_reason: if eligible {
                None
            } else {
                Some("mutual recursion".into())
            },
            last_refresh: "incremental".into(),
            retained_bytes: warm
                .iter()
                .map(|(_, b): &(_, Vec<u64>)| b.len() as u64)
                .sum(),
            deps: deps
                .into_iter()
                .map(|(table, version, rewrite_version, len)| ViewDep {
                    table,
                    version,
                    rewrite_version,
                    len,
                })
                .collect(),
            warm: warm
                .into_iter()
                .map(|(k, bytes)| (k, bytes.into_iter().map(|b| b as u8).collect()))
                .collect(),
        })
}

fn record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        table_image().prop_map(WalRecord::Register),
        ("[a-z]{1,6}", rows(), 0u64..1000).prop_map(|(name, rows, version)| WalRecord::Insert {
            name,
            rows,
            version
        }),
        table_image().prop_map(WalRecord::Replace),
        "[a-z]{1,6}".prop_map(|name| WalRecord::Drop { name }),
        view_image().prop_map(WalRecord::ViewPut),
        "[a-z]{1,6}".prop_map(|key| WalRecord::ViewDrop { key }),
    ]
}

/// Serialize `recs` as a valid log image, returning the bytes plus the frame
/// boundary offsets (`bounds[i]` = byte offset where frame `i` starts;
/// `bounds[recs.len()]` = total length).
fn log_image(recs: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut log = Vec::new();
    let mut bounds = vec![0usize];
    for r in recs {
        log.extend_from_slice(&r.frame());
        bounds.push(log.len());
    }
    (log, bounds)
}

/// Index of the frame containing byte `byte` (caller guarantees in range).
fn frame_of(bounds: &[usize], byte: usize) -> usize {
    bounds.iter().filter(|&&b| b <= byte).count() - 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wal_payload_codec_round_trips(rec in record()) {
        let payload = rec.encode();
        match WalRecord::decode(&payload) {
            Ok(back) => prop_assert_eq!(back, rec),
            Err(e) => prop_assert!(false, "decode of a fresh encode failed: {e}"),
        }
    }

    #[test]
    fn wal_append_then_replay_is_identity(recs in prop::collection::vec(record(), 0..6)) {
        let dir = scratch_dir("roundtrip");
        {
            let wal = Wal::open(&dir, CrashInjector::none()).expect("open");
            for r in &recs {
                wal.append(r).expect("append");
            }
            wal.flush().expect("flush");
        }
        let out = replay(&dir.join(WAL_FILE)).expect("replay");
        prop_assert_eq!(&out.records[..], &recs[..]);
        prop_assert_eq!(out.truncated_at, None);
        let _ = fs::remove_dir_all(&dir);
    }
}

proptest! {
    // Each case runs an exhaustive inner loop (every offset / a sampled
    // bit per case plus the exhaustive #[test] below), so fewer cases
    // suffice — the loop, not the RNG, provides the coverage.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn truncation_at_any_offset_heals_to_a_frame_prefix(
        recs in prop::collection::vec(record(), 1..4),
    ) {
        let (log, bounds) = log_image(&recs);
        let dir = scratch_dir("trunc");
        let path = dir.join(WAL_FILE);
        for cut in 0..=log.len() {
            fs::write(&path, &log[..cut]).expect("write cut log");
            let out = match replay(&path) {
                Ok(out) => out,
                Err(e) => return Err(TestCaseError::Fail(format!("cut at {cut}: {e}"))),
            };
            // The longest whole-frame prefix that fits under the cut.
            let whole = bounds.iter().filter(|&&b| b <= cut).count() - 1;
            prop_assert_eq!(&out.records[..], &recs[..whole], "cut at {}", cut);
            prop_assert_eq!(out.bytes, bounds[whole] as u64, "cut at {}", cut);
            if cut == bounds[whole] {
                prop_assert_eq!(out.truncated_at, None, "clean boundary at {}", cut);
            } else {
                prop_assert_eq!(out.truncated_at, Some(bounds[whole] as u64), "cut at {}", cut);
            }
            // The heal is durable: the file now ends at the frame boundary
            // and a second replay is clean.
            let healed = fs::metadata(&path).expect("metadata").len();
            prop_assert_eq!(healed, bounds[whole] as u64);
            let again = match replay(&path) {
                Ok(out) => out,
                Err(e) => return Err(TestCaseError::Fail(format!("re-replay at {cut}: {e}"))),
            };
            prop_assert_eq!(&again.records[..], &recs[..whole]);
            prop_assert_eq!(again.truncated_at, None, "second replay must be clean");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_single_bit_flip_never_fabricates_a_record(
        recs in prop::collection::vec(record(), 1..4),
        seed in any::<u64>(),
    ) {
        let (log, bounds) = log_image(&recs);
        let bits = log.len() * 8;
        let flip = (seed % bits as u64) as usize;
        let byte = flip / 8;
        let fi = frame_of(&bounds, byte);
        let mut corrupt = log;
        corrupt[byte] ^= 1 << (flip % 8);

        let dir = scratch_dir("flip");
        let path = dir.join(WAL_FILE);
        fs::write(&path, &corrupt).expect("write corrupt log");
        match replay(&path) {
            Ok(out) => {
                // Damage read as a torn tail: strictly the intact prefix,
                // truncated at the damaged frame — never past it.
                prop_assert_eq!(&out.records[..], &recs[..fi], "flip bit {} (frame {})", flip, fi);
                prop_assert_eq!(out.truncated_at, Some(bounds[fi] as u64));
            }
            Err(StorageError::Corrupt { offset, .. }) => {
                prop_assert_eq!(offset, bounds[fi] as u64, "flip bit {} (frame {})", flip, fi);
            }
            Err(e) => return Err(TestCaseError::Fail(format!("unexpected error kind: {e}"))),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Exhaustive companion to the sampled proptest above: flip **every** bit of
/// a small three-record log and pin the torn-tail / typed-corruption split.
#[test]
fn every_single_bit_flip_of_a_small_log_is_detected() {
    let schema = Schema::new(vec![("src", DataType::Int), ("dst", DataType::Int)]);
    let recs = vec![
        WalRecord::Register(TableImage {
            name: "edge".into(),
            schema,
            rows: vec![Row::new(vec![Value::Int(1), Value::Int(2)])],
            version: 1,
            rewrite_version: 0,
        }),
        WalRecord::Insert {
            name: "edge".into(),
            rows: vec![Row::new(vec![Value::Int(2), Value::Int(3)])],
            version: 2,
        },
        WalRecord::Drop {
            name: "edge".into(),
        },
    ];
    let (log, bounds) = log_image(&recs);
    let dir = scratch_dir("flip-all");
    let path = dir.join(WAL_FILE);
    let (mut healed, mut typed) = (0u32, 0u32);
    for flip in 0..log.len() * 8 {
        let byte = flip / 8;
        let fi = frame_of(&bounds, byte);
        let mut corrupt = log.clone();
        corrupt[byte] ^= 1 << (flip % 8);
        fs::write(&path, &corrupt).expect("write corrupt log");
        match replay(&path) {
            Ok(out) => {
                assert_eq!(&out.records[..], &recs[..fi], "flip bit {flip}");
                assert_eq!(out.truncated_at, Some(bounds[fi] as u64), "flip bit {flip}");
                healed += 1;
            }
            Err(StorageError::Corrupt { offset, .. }) => {
                assert_eq!(offset, bounds[fi] as u64, "flip bit {flip}");
                typed += 1;
            }
            Err(e) => panic!("flip bit {flip}: unexpected error kind: {e}"),
        }
    }
    // Both failure modes must actually occur: mid-log flips report typed
    // corruption, last-frame / length-inflating flips heal as torn tails.
    assert!(typed > 0, "no flip reported typed corruption");
    assert!(healed > 0, "no flip healed as a torn tail");
    let _ = fs::remove_dir_all(&dir);
}
