//! Property-based tests for the storage substrate: total ordering of values,
//! hash/equality consistency, codec round-trips, partitioning stability.

use proptest::prelude::*;
use rasql_storage::codec::CompressedRelation;
use rasql_storage::partition::row_partition;
use rasql_storage::{DataType, FxHasher, Relation, Row, Schema, Value};
use std::hash::{Hash, Hasher};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite doubles only: NaN has no meaningful SQL ordering anyway and
        // the engine never produces it.
        (-1e15f64..1e15).prop_map(Value::Double),
        "[a-z]{0,8}".prop_map(|s| Value::from(s.as_str())),
    ]
}

fn hash_of(v: &Value) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn value_ordering_is_total_and_antisymmetric(a in value_strategy(), b in value_strategy()) {
        use std::cmp::Ordering;
        let ab = a.cmp(&b);
        let ba = b.cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            prop_assert_eq!(hash_of(&a), hash_of(&b), "equal values must hash equal");
        }
    }

    #[test]
    fn value_ordering_is_transitive(
        a in value_strategy(),
        b in value_strategy(),
        c in value_strategy(),
    ) {
        let mut vs = [a, b, c];
        vs.sort();
        prop_assert!(vs[0] <= vs[1] && vs[1] <= vs[2] && vs[0] <= vs[2]);
    }

    #[test]
    fn arithmetic_identities(x in -1_000_000i64..1_000_000) {
        let v = Value::Int(x);
        prop_assert_eq!(v.add(&Value::Int(0)), Value::Int(x));
        prop_assert_eq!(v.mul(&Value::Int(1)), Value::Int(x));
        prop_assert_eq!(v.sub(&v.clone()), Value::Int(0));
        // add is commutative
        let w = Value::Int(x / 3 + 7);
        prop_assert_eq!(v.add(&w), w.add(&v));
    }

    #[test]
    fn codec_round_trips_mixed_rows(
        vals in prop::collection::vec(
            prop::collection::vec(value_strategy(), 3..4), 0..40)
    ) {
        let schema = Schema::new(vec![
            ("a", DataType::Any),
            ("b", DataType::Any),
            ("c", DataType::Any),
        ]);
        let rows: Vec<Row> = vals.into_iter().map(Row::new).collect();
        let c = CompressedRelation::compress(&schema, &rows);
        prop_assert_eq!(c.len(), rows.len());
        let mut back = c.decompress().unwrap();
        let mut orig = rows;
        back.sort();
        orig.sort();
        prop_assert_eq!(back, orig);
    }

    #[test]
    fn partitioning_depends_only_on_key_columns(
        key in any::<i64>(),
        payload1 in any::<i64>(),
        payload2 in any::<i64>(),
        parts in 1usize..32,
    ) {
        let a = Row::new(vec![Value::Int(key), Value::Int(payload1)]);
        let b = Row::new(vec![Value::Int(key), Value::Int(payload2)]);
        prop_assert_eq!(row_partition(&a, &[0], parts), row_partition(&b, &[0], parts));
        prop_assert!(row_partition(&a, &[0], parts) < parts);
    }

    #[test]
    fn relation_dedup_is_idempotent(pairs in prop::collection::vec((0i64..20, 0i64..20), 0..60)) {
        let r = Relation::edges(&pairs);
        let d1 = r.dedup();
        let d2 = d1.clone().dedup();
        prop_assert_eq!(&d1, &d2);
        // deduped size equals the set size
        let set: std::collections::HashSet<_> = pairs.iter().collect();
        prop_assert_eq!(d1.len(), set.len());
    }

    #[test]
    fn row_project_concat_laws(xs in prop::collection::vec(any::<i64>(), 1..6)) {
        let row = Row::new(xs.iter().map(|&v| Value::Int(v)).collect());
        // identity projection
        let all: Vec<usize> = (0..row.arity()).collect();
        prop_assert_eq!(&row.project(&all), &row);
        // concat arity
        let c = row.concat(&row);
        prop_assert_eq!(c.arity(), row.arity() * 2);
    }
}
